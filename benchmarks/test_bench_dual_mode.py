"""Problem-statement dual mode: minimal ε meeting a quality requirement.

Section III-B defines two optimization problems; Fig. 4 plots the first
(quality at fixed ε).  This bench regenerates the second: the smallest
pattern-level budget each mechanism needs to keep MRE within the data
consumers' requirement — the dual reading of the same curves.
"""


from benchmarks.conftest import BENCH_SYNTHETIC, emit
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.dual import compare_budget_needs
from repro.utils.tables import ResultTable

MAX_MRE = 0.30
MECHANISMS = ["uniform", "adaptive", "bd", "ba", "landmark"]


def run_dual():
    workload = synthesize_dataset(BENCH_SYNTHETIC, rng=2023)
    return workload, compare_budget_needs(
        workload,
        MECHANISMS,
        max_mre=MAX_MRE,
        n_trials=3,
        precision=0.25,
        epsilon_high=30.0,
        rng=7,
    )


def test_dual_mode(benchmark, results_dir):
    _workload, results = benchmark.pedantic(run_dual, rounds=1, iterations=1)

    table = ResultTable(
        ["mechanism", "max_mre", "min_epsilon", "achieved_mre", "feasible"],
        title=f"dual mode: min pattern-level epsilon for MRE <= {MAX_MRE}",
    )
    for result in results:
        table.add_row(
            mechanism=result.mechanism,
            max_mre=result.max_mre,
            min_epsilon=result.epsilon,
            achieved_mre=result.achieved_mre,
            feasible=result.feasible,
        )
    emit(table, results_dir, "dual_mode")

    by_name = {r.mechanism: r for r in results}
    # The pattern-level PPMs meet the requirement...
    assert by_name["uniform"].feasible
    assert by_name["adaptive"].feasible
    # ...and adaptive never needs more budget than uniform.
    assert by_name["adaptive"].epsilon <= by_name["uniform"].epsilon + 0.25
    # Every feasible baseline needs more budget than the uniform PPM.
    for kind in ("bd", "ba", "landmark"):
        if by_name[kind].feasible:
            assert by_name[kind].epsilon > by_name["uniform"].epsilon

    benchmark.extra_info["epsilon_uniform"] = by_name["uniform"].epsilon
    benchmark.extra_info["epsilon_adaptive"] = by_name["adaptive"].epsilon
