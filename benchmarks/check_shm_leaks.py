#!/usr/bin/env python
"""Fail if any ``repro_shm_*`` shared-memory segment is still mapped.

The zero-copy shard transport (``repro/runtime/shm.py``) guarantees
that the parent process unlinks every segment it creates on every exit
path — success, a worker raising mid-shard, or early pool shutdown.  A
segment left under ``/dev/shm`` after the benchmarks (or the test
suite) have exited is therefore a lifecycle bug, and one that silently
eats host memory until reboot.

CI runs this right after the bench pytest invocation::

    python benchmarks/check_shm_leaks.py

Exits 0 when clean, 1 listing the leaked segment names otherwise.  An
optional argument overrides the directory scanned (for tests).
"""

import sys

from repro.runtime.shm import SHM_DIR, leaked_segments


def main(argv):
    directory = argv[1] if len(argv) > 1 else SHM_DIR
    leaked = leaked_segments(directory)
    if leaked:
        print(f"LEAKED shared-memory segments under {directory}:")
        for name in leaked:
            print(f"  {name}")
        print(
            f"{len(leaked)} segment(s) were created but never unlinked — "
            "SegmentPlane.close() did not run on some executor path."
        )
        return 1
    print(f"no leaked repro_shm_* segments under {directory}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
