"""Ablation: historical-data volume for Algorithm 1 (Section V-B).

The adaptive PPM trains its budget distribution on subject-provided
historical windows.  This bench truncates the history and measures the
deployed MRE: a handful of windows already recovers most of the
adaptive advantage, and the curve flattens quickly.
"""

from benchmarks.conftest import emit
from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
from repro.experiments.ablations import sweep_history_size
from repro.experiments.runner import evaluate_mechanism

SIZES = (10, 25, 50, 100, 200, 400)
EPSILON = 2.0


def test_ablation_history(benchmark, results_dir):
    workload = synthesize_dataset(
        SyntheticConfig(n_windows=500, n_history_windows=400), rng=41
    )
    table = benchmark.pedantic(
        lambda: sweep_history_size(
            workload, EPSILON, SIZES, n_trials=3, rng=13
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, results_dir, "ablation_history")

    uniform = evaluate_mechanism(
        workload, "uniform", EPSILON, n_trials=3, rng=13
    )
    rows = {row["history_windows"]: row["mre"] for row in table}
    # With the full history the adaptive PPM beats uniform.
    assert rows[max(rows)] < uniform.mre
    # Even a short history should not be worse than uniform by much.
    assert rows[min(rows)] < uniform.mre + 0.1
