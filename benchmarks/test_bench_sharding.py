"""Sharded-executor benchmark: bit-identity plus parallel speedup.

Scales the fig4 synthetic sweep workload's evaluation stream to service
size and runs the same pipeline (the sweep's target queries, its
uniform pattern-level PPM) three ways on identical seeds:

- **batch** — the serial vectorized :class:`BatchExecutor`;
- **sharded/thread** — :class:`ShardedExecutor` on a thread pool (the
  hot stages release the GIL inside numpy);
- **sharded/process** — the same shards on a process pool.

Every arm must produce *bit-identical* outputs (the seek invariant: a
shard draws exactly the child-generator words of its absolute window
range).  On hosts with at least :data:`REQUIRED_CPUS` cores the median
paired sharded-versus-batch speedup of the best arm must reach
:data:`SPEEDUP_FLOOR` — the regression gate CI enforces through
``BENCH_sharding.json``; on smaller hosts the numbers are recorded but
the floor is not asserted (parallel wall-clock gains are physically
impossible on one core).
"""

import time

import numpy as np

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_SYNTHETIC,
    effective_cpu_count,
    emit,
    emit_json,
    floor_reason,
    median,
    paired_speedup,
    ratio_spread,
)
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.runner import WorkloadEvaluation
from repro.runtime import BatchExecutor, ShardedExecutor
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable

#: Workers used by the parallel arms (the gate's "≥ 2x on ≥ 4 workers").
N_WORKERS = 4

#: Minimum host cores for the speedup floor to be enforceable.
REQUIRED_CPUS = 4

#: The pinned regression floor: best sharded arm at least 2x batch.
SPEEDUP_FLOOR = 2.0

#: Stream scale: the fig4 sweep workload's evaluation stream is tiled
#: to this many windows so per-shard numpy work dominates pool
#: overhead (service-phase shape, not the laptop-sized sweep input).
N_WINDOWS = 1_000_000

_ROUNDS = 5


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_sharded_speedup(benchmark, results_dir):
    workload = synthesize_dataset(
        BENCH_SYNTHETIC,
        rng=derive_rng(BENCH_CONFIG.seed, "sharding-bench"),
        name="sharding-bench",
    )
    context = WorkloadEvaluation(workload)
    mechanism = context.build_mechanism("uniform", 1.0)
    pipeline = context.pipeline.with_mechanism(mechanism)
    base = workload.stream.matrix_view()
    repeats = -(-N_WINDOWS // base.shape[0])
    stream = IndicatorStream(
        workload.stream.alphabet, np.tile(base, (repeats, 1))[:N_WINDOWS]
    )
    seed = BENCH_CONFIG.seed

    # -- bit-identity: every backend, same seed, same bits -------------
    batch = benchmark.pedantic(
        lambda: BatchExecutor().run(pipeline, stream, rng=seed),
        rounds=1,
        iterations=1,
    )
    for backend in ("thread", "process"):
        sharded = ShardedExecutor(N_WORKERS, backend=backend).run(
            pipeline, stream, rng=seed
        )
        assert sharded.released == batch.released, backend
        for name, detections in batch.answers.items():
            assert np.array_equal(sharded.answers[name], detections)
        assert sharded.quality() == batch.quality()

    # -- speedup: interleaved rounds, median paired ratio --------------
    # (identical workload per arm; pairing within a round keeps
    # co-tenant noise from faking a trend, and the median over rounds
    # keeps one noisy round from setting the headline number)
    executors = {
        "batch": BatchExecutor(),
        "sharded/thread": ShardedExecutor(
            N_WORKERS, backend="thread", materialize=False
        ),
        "sharded/process": ShardedExecutor(
            N_WORKERS, backend="process", materialize=False
        ),
    }
    times = {name: [] for name in executors}
    paired = {"sharded/thread": [], "sharded/process": []}
    for _ in range(_ROUNDS):
        round_times = {}
        for name, executor in executors.items():
            _, seconds = _timed(
                lambda executor=executor: executor.run(
                    pipeline, stream, rng=seed
                )
            )
            times[name].append(seconds)
            round_times[name] = seconds
        for name in paired:
            paired[name].append(round_times["batch"] / round_times[name])

    batch_seconds = median(times["batch"])
    speedups = {
        name: paired_speedup(ratios) for name, ratios in paired.items()
    }
    overall_best = max(speedups.values())

    table = ResultTable(
        ["executor", "workers", "seconds", "speedup_vs_batch"],
        title=f"sharded execution over {stream.n_windows} windows",
    )
    table.add_row(
        executor="batch", workers=1, seconds=round(batch_seconds, 4),
        speedup_vs_batch=1.0,
    )
    for name in paired:
        table.add_row(
            executor=name,
            workers=N_WORKERS,
            seconds=round(median(times[name]), 4),
            speedup_vs_batch=round(speedups[name], 2),
        )
    emit(table, results_dir, "sharding_speedup")

    enforceable = effective_cpu_count() >= REQUIRED_CPUS
    emit_json(
        results_dir,
        "sharding",
        {
            "n_windows": stream.n_windows,
            "n_workers": N_WORKERS,
            "batch_seconds": batch_seconds,
            "thread_seconds": median(times["sharded/thread"]),
            "process_seconds": median(times["sharded/process"]),
            "thread_speedup": speedups["sharded/thread"],
            "process_speedup": speedups["sharded/process"],
            "best_speedup": overall_best,
            "floor_enforced": enforceable,
            **ratio_spread("thread_speedup", paired["sharded/thread"]),
            **ratio_spread("process_speedup", paired["sharded/process"]),
        },
        rows=table.rows,
        gates=(
            {
                "sharded_vs_batch": {
                    "floor": SPEEDUP_FLOOR,
                    "value": overall_best,
                },
                # The zero-copy data plane's own promise: the process
                # backend must at least break even against batch (it
                # used to lose to pickling its own inputs).
                "sharded_process_vs_batch": {
                    "floor": 1.0,
                    "value": speedups["sharded/process"],
                },
            }
            if enforceable
            else {}
        ),
        floor_skipped_reason=(
            None if enforceable else floor_reason(REQUIRED_CPUS)
        ),
    )
    benchmark.extra_info["best_speedup"] = overall_best
    benchmark.extra_info["floor_enforced"] = enforceable

    if enforceable:
        assert overall_best >= SPEEDUP_FLOOR, (
            f"sharded executor only {overall_best:.2f}x faster on "
            f"{N_WORKERS} workers "
            f"(thread: {[f'{r:.2f}' for r in paired['sharded/thread']]}, "
            f"process: {[f'{r:.2f}' for r in paired['sharded/process']]})"
        )
