"""Micro-benchmark: online session overhead vs the batch path.

The online session answers per window (deployment-shaped); the batch
path vectorizes over the whole stream.  This bench quantifies the price
of the push-based API and keeps it honest — the session must stay
within interactive throughput (thousands of windows per second).
"""

import numpy as np
import pytest

from repro.cep.engine import CEPEngine
from repro.cep.online import OnlineSession
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.uniform import UniformPatternPPM
from repro.streams.indicator import EventAlphabet, IndicatorStream

N_WINDOWS = 2000


@pytest.fixture(scope="module")
def setup():
    alphabet = EventAlphabet.numbered(8)
    rng = np.random.default_rng(1)
    stream = IndicatorStream(alphabet, rng.random((N_WINDOWS, 8)) < 0.4)
    engine = CEPEngine(alphabet)
    engine.register_private_pattern(Pattern.of_types("p", "e1", "e2"))
    engine.register_query(
        ContinuousQuery("q", Pattern.of_types("t", "e2", "e3"))
    )
    engine.attach_mechanism(
        UniformPatternPPM(Pattern.of_types("p", "e1", "e2"), 2.0)
    )
    return engine, stream


def test_batch_service_throughput(benchmark, setup):
    engine, stream = setup
    report = benchmark(lambda: engine.process_indicators(stream, rng=3))
    assert report.answers["q"].n_windows == N_WINDOWS


def test_online_service_throughput(benchmark, setup):
    engine, stream = setup

    def run():
        return OnlineSession(engine, rng=3).run(stream)

    answers = benchmark(run)
    assert len(answers["q"]) == N_WINDOWS
    # The online answers must also be bit-identical to the batch path.
    batch = engine.process_indicators(stream, rng=3)
    assert answers["q"] == list(batch.answers["q"].detections)
