"""Cluster executor benchmark: fleet bit-identity and speedup.

Runs the fig4 sweep workload's pipeline through the
:class:`~repro.runtime.cluster.ClusterExecutor` worker fleet — shards
shipped to spawned worker processes over the framed message protocol,
matrices attached through the shared-memory plane — and compares it
against :class:`BatchExecutor` on identical seeds.

Two gates go into ``BENCH_cluster.json`` for
``benchmarks/check_gates.py``:

- ``cluster_bit_identity`` (always): the fleet must reproduce the
  batch release, answers and quality bit for bit on **both**
  transports (``shm`` and ``framed``) *and* on a run where one worker
  is killed mid-shard — the heartbeat loop reaps the corpse and
  requeues its shard, so fault recovery is inside the identity gate,
  not outside it;
- ``cluster_vs_batch`` (hosts with ≥ :data:`REQUIRED_CPUS` effective
  cores): the fleet must not lose wall-clock to the single-process
  batch run it parallelizes.

The worker kill is injected through ``cluster._TASK_FAULT_HOOK`` (a
module global the forked workers inherit); a sentinel file makes the
fault one-shot so exactly one worker dies and the requeued shard runs
clean.  The benchmark also asserts the no-leak invariant: after every
arm — including the kill — no ``repro_shm_*`` segment may remain in
``/dev/shm``.
"""

import os
import time

import numpy as np

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_SYNTHETIC,
    effective_cpu_count,
    emit,
    emit_json,
    floor_reason,
    median,
    paired_speedup,
    ratio_spread,
)
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.runner import WorkloadEvaluation
from repro.runtime import BatchExecutor, ClusterExecutor
from repro.runtime import cluster
from repro.runtime.shm import leaked_segments
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable

#: Workers in the fleet.
N_WORKERS = 4

#: Minimum effective cores for the speedup floor to be enforceable.
REQUIRED_CPUS = 4

#: Pinned floor: the fleet must not be slower than one batch process.
SPEEDUP_FLOOR = 1.0

#: Stream scale for the timed arms: large enough that shard work
#: dominates fleet spawn/heartbeat overhead.
N_WINDOWS = 200_000

#: Stream scale for the worker-kill identity arm: the kill/requeue
#: path is exercised per shard, not per window, so a smaller stream
#: proves the same invariant.
N_FAULT_WINDOWS = 40_000

_ROUNDS = 3


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def _identical(result, batch):
    return all(
        np.array_equal(result.answers[query], detections)
        for query, detections in batch.answers.items()
    ) and result.quality() == batch.quality()


def _one_shot_kill(sentinel):
    """Kill exactly one worker, once: ``os.unlink`` is the claim."""

    def hook(message):
        try:
            os.unlink(sentinel)
        except FileNotFoundError:
            return
        os._exit(1)

    return hook


def test_cluster_executor(benchmark, results_dir, tmp_path):
    workload = synthesize_dataset(
        BENCH_SYNTHETIC,
        rng=derive_rng(BENCH_CONFIG.seed, "cluster-bench"),
        name="cluster-bench",
    )
    context = WorkloadEvaluation(workload)
    mechanism = context.build_mechanism("uniform", 1.0)
    pipeline = context.pipeline.with_mechanism(mechanism)
    base = workload.stream.matrix_view()
    repeats = -(-N_WINDOWS // base.shape[0])
    tiled = np.tile(base, (repeats, 1))
    stream = IndicatorStream(workload.stream.alphabet, tiled[:N_WINDOWS])
    fault_stream = IndicatorStream(
        workload.stream.alphabet, tiled[:N_FAULT_WINDOWS]
    )
    seed = BENCH_CONFIG.seed

    # -- bit-identity: both transports ≡ batch, same seed --------------
    batch = benchmark.pedantic(
        lambda: BatchExecutor().run(pipeline, stream, rng=seed),
        rounds=1,
        iterations=1,
    )
    bit_identical = True
    for transport in ("shm", "framed"):
        executor = ClusterExecutor(
            N_WORKERS, transport=transport, materialize=False
        )
        if not _identical(executor.run(pipeline, stream, rng=seed), batch):
            bit_identical = False
            print(f"BIT-IDENTITY BROKEN: transport={transport}")

    # -- bit-identity under fault: kill one worker mid-run -------------
    fault_batch = BatchExecutor().run(pipeline, fault_stream, rng=seed)
    sentinel = tmp_path / "bench-kill-once"
    sentinel.touch()
    cluster._TASK_FAULT_HOOK = _one_shot_kill(str(sentinel))
    try:
        fault_executor = ClusterExecutor(
            N_WORKERS, n_shards=2 * N_WORKERS, materialize=False
        )
        fault_result = fault_executor.run(
            pipeline, fault_stream, rng=seed
        )
    finally:
        cluster._TASK_FAULT_HOOK = None
    requeued = fault_executor.last_restarts >= 1 and not sentinel.exists()
    if not requeued:
        bit_identical = False
        print("FAULT ARM: worker kill did not fire/requeue")
    if not _identical(fault_result, fault_batch):
        bit_identical = False
        print("BIT-IDENTITY BROKEN: worker-kill/requeue arm")
    assert bit_identical

    # -- speedup: interleaved rounds, median paired ratio --------------
    arms = {
        "batch": BatchExecutor(),
        "cluster": ClusterExecutor(N_WORKERS, materialize=False),
    }
    paired = []
    times = {name: [] for name in arms}
    for _ in range(_ROUNDS):
        round_times = {}
        for name, executor in arms.items():
            _, seconds = _timed(
                lambda executor=executor: executor.run(
                    pipeline, stream, rng=seed
                )
            )
            times[name].append(seconds)
            round_times[name] = seconds
        paired.append(round_times["batch"] / round_times["cluster"])
    speedup = paired_speedup(paired)

    # -- no-leak invariant ---------------------------------------------
    leaked = leaked_segments()
    assert leaked == (), f"leaked shared-memory segments: {leaked}"

    table = ResultTable(
        ["arm", "workers", "seconds"],
        title=f"cluster fleet over {stream.n_windows} windows",
    )
    for name in arms:
        table.add_row(
            arm=name,
            workers=1 if name == "batch" else N_WORKERS,
            seconds=round(median(times[name]), 4),
        )
    emit(table, results_dir, "cluster_executor")

    enforceable = effective_cpu_count() >= REQUIRED_CPUS
    gates = {
        "cluster_bit_identity": {
            "floor": 1.0,
            "value": 1.0 if bit_identical else 0.0,
        },
    }
    if enforceable:
        gates["cluster_vs_batch"] = {
            "floor": SPEEDUP_FLOOR,
            "value": speedup,
        }
    emit_json(
        results_dir,
        "cluster",
        {
            "n_windows": stream.n_windows,
            "n_fault_windows": fault_stream.n_windows,
            "n_workers": N_WORKERS,
            "bit_identical": 1.0 if bit_identical else 0.0,
            "fault_restarts": fault_executor.last_restarts,
            "batch_seconds": median(times["batch"]),
            "cluster_seconds": median(times["cluster"]),
            "cluster_vs_batch": speedup,
            "floor_enforced": enforceable,
            **ratio_spread("cluster_vs_batch", paired),
        },
        rows=table.rows,
        gates=gates,
        floor_skipped_reason=(
            None if enforceable else floor_reason(REQUIRED_CPUS)
        ),
    )
    benchmark.extra_info["cluster_vs_batch"] = speedup
    benchmark.extra_info["floor_enforced"] = enforceable

    if enforceable:
        assert speedup >= SPEEDUP_FLOOR, (
            f"cluster fleet slower than one batch process "
            f"({speedup:.2f}x, rounds: {[f'{r:.2f}' for r in paired]})"
        )
