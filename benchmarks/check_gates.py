"""Enforce the benchmark regression gates recorded in BENCH_*.json.

Every performance benchmark writes a machine-readable summary through
:func:`benchmarks.conftest.emit_json`; entries under ``"gates"`` carry
a pinned floor and the measured value.  This script — the CI bench
job's last step, equally runnable locally — fails when any measured
value regresses below its floor, so speedups once achieved cannot be
silently lost.

Usage: ``python benchmarks/check_gates.py [results_dir]``
"""

import json
import os
import sys


def check(results_dir):
    summaries = sorted(
        name
        for name in os.listdir(results_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    if not summaries:
        print(f"no BENCH_*.json summaries under {results_dir}", file=sys.stderr)
        return 1
    failures = []
    for filename in summaries:
        try:
            with open(os.path.join(results_dir, filename)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            # A summary the bench job failed to write fully is itself a
            # regression signal; report it and keep checking the rest.
            failures.append((filename, "<file>", f"unreadable: {error}"))
            continue
        gates = payload.get("gates", {})
        if not isinstance(gates, dict):
            failures.append(
                (filename, "<gates>", f"not a mapping: {gates!r}")
            )
            continue
        if not gates:
            print(f"{filename}: no gates (metrics recorded only)")
            continue
        for gate, spec in sorted(gates.items()):
            try:
                floor = float(spec["floor"])
                value = float(spec["value"])
            except (KeyError, TypeError, ValueError) as error:
                failures.append(
                    (
                        filename,
                        gate,
                        f"malformed gate spec {spec!r} ({error!r})",
                    )
                )
                continue
            verdict = "ok" if value >= floor else "REGRESSION"
            print(
                f"{filename}: {gate} = {value:.2f} (floor {floor:.2f}) "
                f"{verdict}"
            )
            if value < floor:
                failures.append(
                    (
                        filename,
                        gate,
                        f"{value:.2f} < floor {floor:.2f}",
                    )
                )
    if failures:
        for filename, gate, reason in failures:
            print(f"FAIL {filename}:{gate}: {reason}", file=sys.stderr)
        return 1
    print("all benchmark gates passed")
    return 0


if __name__ == "__main__":
    directory = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "results"
    )
    sys.exit(check(directory))
