"""Checkpointed w-event sharding benchmark: bit-identity plus speedup.

Scales the fig4 synthetic workload's evaluation stream to service size
and runs the BD and BA schedulers — the sequential mechanisms the
paper's Fig. 4 sweeps spend most of their time in — four ways on
identical seeds:

- **sequential/legacy** — the seed per-window release loop
  (`runtime/reference.py`: one ``derive_rng`` + Laplace call per
  window), the pre-runtime deployment shape;
- **batch** — the pooled vectorized :class:`BatchExecutor` release;
- **sharded/thread**, **sharded/process** — :class:`ShardedExecutor`
  on 4 workers through the checkpoint prepass + parallel replay.

Two pinned gates go into ``BENCH_checkpoint.json`` for
``benchmarks/check_gates.py``:

- ``checkpoint_bit_identity`` (always): every sharded arm must
  reproduce the batch release, answers, quality and accounting trace
  bit for bit — the checkpoint/replay invariant;
- ``checkpoint_sharded_vs_sequential`` (hosts with ≥
  :data:`REQUIRED_CPUS` cores): the checkpointed sharded path on
  :data:`N_WORKERS` workers must beat the legacy sequential loop by at
  least :data:`SPEEDUP_FLOOR`.

The sharded-versus-batch ratio is recorded as a metric but not
floored: the scheduler decision chain (budget → noisy dissimilarity →
publish → last release) is inherently sequential and dominates the
batch wall time, so Amdahl bounds window-level parallel gains over the
already-pooled batch path near 1× — the honest win of checkpointed
sharding over *batch* is bounded by how much of the pipeline
(matching, materialization, publication draws) sits outside that
chain.  Against the per-window legacy loop the combined pool + uniform
prefetch + bulk-skip + replay machinery is worth several ×, which is
what the floor protects.
"""

import time

import numpy as np

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_SYNTHETIC,
    effective_cpu_count,
    emit,
    emit_json,
    floor_reason,
    median,
    paired_speedup,
    ratio_spread,
)
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.runner import WorkloadEvaluation
from repro.runtime import BatchExecutor, ShardedExecutor
from repro.runtime.reference import reference_w_event_perturb
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable

#: Workers used by the parallel arms.
N_WORKERS = 4

#: Minimum host cores for the speedup floor to be enforceable.
REQUIRED_CPUS = 4

#: Pinned floor: checkpointed sharded release at least this much
#: faster than the legacy per-window sequential loop.  Raised from 1.5
#: once the decision kernel landed: the prepass's certified-skip runs
#: and the replay's bulk approximation stretches cut the sequential
#: fraction enough that even a single busy core clears 6x (see
#: BENCH_checkpoint.json), so 3x leaves honest headroom on the >= 4
#: core runners the gate is conditioned on.
SPEEDUP_FLOOR = 3.0

#: Stream scale: the fig4 workload's evaluation stream tiled to
#: service size (large enough that scheduler work dominates setup,
#: small enough that the deliberately slow legacy arm stays bounded).
N_WINDOWS = 80_000

_ROUNDS = 3


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def _trace_tuple(trace):
    return (
        list(trace.published),
        list(trace.publication_budgets),
        list(trace.dissimilarity_budgets),
    )


def test_checkpoint_sharding(benchmark, results_dir):
    workload = synthesize_dataset(
        BENCH_SYNTHETIC,
        rng=derive_rng(BENCH_CONFIG.seed, "checkpoint-bench"),
        name="checkpoint-bench",
    )
    context = WorkloadEvaluation(workload)
    base = workload.stream.matrix_view()
    repeats = -(-N_WINDOWS // base.shape[0])
    stream = IndicatorStream(
        workload.stream.alphabet, np.tile(base, (repeats, 1))[:N_WINDOWS]
    )
    seed = BENCH_CONFIG.seed
    pipelines = {
        kind: context.pipeline.with_mechanism(
            context.build_mechanism(kind, 1.0)
        )
        for kind in ("bd", "ba")
    }

    # -- bit-identity: sharded ≡ batch, any backend, trace included ----
    bit_identical = True
    batch_results = {}
    for kind, pipeline in pipelines.items():
        batch_results[kind] = BatchExecutor().run(pipeline, stream, rng=seed)
        batch_trace = _trace_tuple(pipeline.mechanism.last_trace)
        for backend in ("thread", "process"):
            sharded = ShardedExecutor(N_WORKERS, backend=backend).run(
                pipeline, stream, rng=seed
            )
            arm = f"{kind}/{backend}"
            if not (
                sharded.released == batch_results[kind].released
                and all(
                    np.array_equal(sharded.answers[name], detections)
                    for name, detections in batch_results[
                        kind
                    ].answers.items()
                )
                and sharded.quality() == batch_results[kind].quality()
                and _trace_tuple(pipeline.mechanism.last_trace)
                == batch_trace
            ):
                bit_identical = False
                print(f"BIT-IDENTITY BROKEN: {arm}")
    assert bit_identical

    # -- speedup: interleaved rounds, median paired ratio --------------
    def legacy_arm(pipeline):
        def run():
            released = reference_w_event_perturb(
                pipeline.mechanism, stream, rng=seed
            )
            matcher = pipeline.matcher
            return (
                matcher.answer(released.matrix_view()),
                matcher.answer(stream.matrix_view()),
            )

        return run

    executors = {
        "batch": BatchExecutor(),
        "sharded/thread": ShardedExecutor(
            N_WORKERS, backend="thread", materialize=False
        ),
        "sharded/process": ShardedExecutor(
            N_WORKERS, backend="process", materialize=False
        ),
    }
    times = {}
    paired_sequential = {}
    paired_batch = {}
    for kind, pipeline in pipelines.items():
        arms = {
            f"{kind}/sequential": legacy_arm(pipeline),
        }
        for name, executor in executors.items():
            arms[f"{kind}/{name}"] = (
                lambda executor=executor, pipeline=pipeline: executor.run(
                    pipeline, stream, rng=seed
                )
            )
        times.update({name: [] for name in arms})
        for _ in range(_ROUNDS):
            round_times = {}
            for name, runner in arms.items():
                _, seconds = _timed(runner)
                times[name].append(seconds)
                round_times[name] = seconds
            for backend in ("thread", "process"):
                sharded_name = f"{kind}/sharded/{backend}"
                paired_sequential.setdefault(sharded_name, []).append(
                    round_times[f"{kind}/sequential"]
                    / round_times[sharded_name]
                )
                paired_batch.setdefault(sharded_name, []).append(
                    round_times[f"{kind}/batch"] / round_times[sharded_name]
                )

    # Median paired ratio per arm; "best" then selects the winning
    # *arm*, not a winning round.
    vs_sequential = {
        name: paired_speedup(ratios)
        for name, ratios in paired_sequential.items()
    }
    vs_batch = {
        name: paired_speedup(ratios)
        for name, ratios in paired_batch.items()
    }
    overall_vs_sequential = max(vs_sequential.values())
    overall_vs_batch = max(vs_batch.values())

    table = ResultTable(
        ["arm", "workers", "seconds", "speedup_vs_sequential"],
        title=f"checkpointed w-event sharding over {stream.n_windows} windows",
    )
    for kind in pipelines:
        sequential_seconds = median(times[f"{kind}/sequential"])
        table.add_row(
            arm=f"{kind}/sequential",
            workers=1,
            seconds=round(sequential_seconds, 4),
            speedup_vs_sequential=1.0,
        )
        for name in ("batch", "sharded/thread", "sharded/process"):
            arm = f"{kind}/{name}"
            table.add_row(
                arm=arm,
                workers=1 if name == "batch" else N_WORKERS,
                seconds=round(median(times[arm]), 4),
                speedup_vs_sequential=round(
                    vs_sequential.get(
                        arm, sequential_seconds / median(times[arm])
                    ),
                    2,
                ),
            )
    emit(table, results_dir, "checkpoint_speedup")

    enforceable = effective_cpu_count() >= REQUIRED_CPUS
    gates = {
        "checkpoint_bit_identity": {
            "floor": 1.0,
            "value": 1.0 if bit_identical else 0.0,
        }
    }
    if enforceable:
        gates["checkpoint_sharded_vs_sequential"] = {
            "floor": SPEEDUP_FLOOR,
            "value": overall_vs_sequential,
        }
        # Zero-copy transport promise: replaying shards in parallel
        # must at least break even against the pooled batch release.
        gates["checkpoint_sharded_vs_batch"] = {
            "floor": 1.0,
            "value": overall_vs_batch,
        }
    emit_json(
        results_dir,
        "checkpoint",
        {
            "n_windows": stream.n_windows,
            "n_workers": N_WORKERS,
            "bit_identical": 1.0 if bit_identical else 0.0,
            "best_vs_sequential": overall_vs_sequential,
            "best_vs_batch": overall_vs_batch,
            "floor_enforced": enforceable,
            **{
                key: value
                for name, ratios in paired_sequential.items()
                for key, value in ratio_spread(
                    f"vs_sequential/{name}", ratios
                ).items()
            },
            **{
                f"seconds/{name}": median(seconds)
                for name, seconds in times.items()
            },
        },
        rows=table.rows,
        gates=gates,
        floor_skipped_reason=(
            None if enforceable else floor_reason(REQUIRED_CPUS)
        ),
    )
    benchmark.extra_info["best_vs_sequential"] = overall_vs_sequential
    benchmark.extra_info["best_vs_batch"] = overall_vs_batch
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if enforceable:
        assert overall_vs_sequential >= SPEEDUP_FLOOR, (
            f"checkpointed sharded release only {overall_vs_sequential:.2f}x "
            f"the sequential loop on {N_WORKERS} workers"
        )
