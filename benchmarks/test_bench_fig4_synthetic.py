"""Fig. 4, synthetic panel: MRE vs ε for all five mechanisms.

Regenerates the right-hand series of the paper's Fig. 4 on Algorithm 2
data (averaged over independently synthesized datasets) and asserts the
qualitative claims of Section VI-B.
"""

from benchmarks.conftest import BENCH_CONFIG, BENCH_SYNTHETIC, emit
from repro.experiments.fig4 import run_fig4_synthetic
from repro.experiments.reporting import fig4_wide_table

N_DATASETS = 5  # the paper uses 1000; see examples/reproduce_fig4.py


def test_fig4_synthetic(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig4_synthetic(
            BENCH_CONFIG, BENCH_SYNTHETIC, n_datasets=N_DATASETS
        ),
        rounds=1,
        iterations=1,
    )
    emit(fig4_wide_table(result), results_dir, "fig4_synthetic")

    violations = result.check_expected_shape()
    assert violations == [], violations

    # The pattern-level advantage must be substantial on synthetic data
    # (Section VI-B: "significantly better on synthetic datasets").
    for epsilon in BENCH_CONFIG.epsilon_grid:
        assert result.pattern_level_advantage(epsilon) > 0.1

    # Adaptive visibly beats uniform at moderate budgets.
    gap = result.series["uniform"].mre_at(2.0) - result.series[
        "adaptive"
    ].mre_at(2.0)
    assert gap > 0.02

    benchmark.extra_info["mre_uniform_eps2"] = result.series["uniform"].mre_at(2.0)
    benchmark.extra_info["mre_adaptive_eps2"] = result.series["adaptive"].mre_at(2.0)
    benchmark.extra_info["mre_bd_eps2"] = result.series["bd"].mre_at(2.0)
