"""Ablation: Algorithm 1's step size δε (line 2).

The paper suggests δε = mε/100 "based on field experience".  This bench
scales that default and reports the fitted quality, committed moves and
convergence — showing the suggestion sits in the flat optimum between
slow convergence (tiny steps) and overshooting (huge steps).
"""

from benchmarks.conftest import BENCH_SYNTHETIC, emit
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.ablations import sweep_step_size

MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0, 16.0)
EPSILON = 2.0


def test_ablation_step_size(benchmark, results_dir):
    workload = synthesize_dataset(BENCH_SYNTHETIC, rng=29)
    table = benchmark.pedantic(
        lambda: sweep_step_size(
            workload, EPSILON, MULTIPLIERS, max_iterations=600
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, results_dir, "ablation_step_size")

    rows = {row["multiplier"]: row for row in table}
    qualities = [rows[m]["fitted_q"] for m in MULTIPLIERS]
    # Every step size improves on (or matches) some baseline quality, and
    # the paper's default is within one point of the best found.
    best = max(qualities)
    assert rows[1.0]["fitted_q"] >= best - 0.01
    # Smaller steps take more iterations to travel the same distance.
    assert rows[0.25]["iterations"] >= rows[4.0]["iterations"]
