"""Broker connector benchmark: bit-identity under faults + throughput.

The broker subsystem's two pinned promises, written into
``BENCH_broker.json`` for ``benchmarks/check_gates.py``:

- ``broker_bit_identity`` (always): a broker-fed pipeline releases
  exactly what the memory-fed pipeline releases — through an
  uninterrupted run, a checkpoint/kill/resume cycle, *and* killed
  connections mid-run (1.0 = every arm identical).
- ``broker_vs_queue_throughput`` (always): median paired ratio of
  broker-fed over ``queue:``-fed wall time across interleaved rounds;
  the floor of :data:`THROUGHPUT_FLOOR` bounds the cost of real
  sockets, RESP2 framing and ack bookkeeping at ~20% versus the
  in-process live-feed baseline.

The feed is published with chunked entries
(``rows_per_entry=ROWS_PER_ENTRY``) — the record batching a
high-rate deployment would use — and the kill/resume arm deliberately
cuts mid-chunk (``N_WINDOWS // 3`` is not a multiple of the chunk
size), pinning the row-exact partial-chunk replay path under the
throughput workload.
"""

import asyncio
import time

import numpy as np

from benchmarks.conftest import (
    emit,
    emit_json,
    paired_speedup,
    ratio_spread,
)
from repro.broker import FakeRedisServer
from repro.broker.connectors import publish_indicator_stream
from repro.io.sources import QueueSource
from repro.service import ServiceSpec, StreamGateway, StreamService
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.utils.tables import ResultTable

#: Pinned floor on the median paired queue/broker wall-time ratio:
#: broker ingestion must stay within ~20% of queue ingestion.
THROUGHPUT_FLOOR = 0.8

N_WINDOWS = 2_000

#: Windows per chunked broker entry (Kafka-style record batching).
ROWS_PER_ENTRY = 16

_ROUNDS = 7

N_TYPES = 8

ALPHABET = EventAlphabet.numbered(N_TYPES)


def _stream(seed=20230811):
    rng = np.random.default_rng(seed)
    return IndicatorStream(
        ALPHABET, rng.random((N_WINDOWS, N_TYPES)) < 0.3
    )


def _spec(source=None, seed=17):
    # A representative multi-query tenant (the obs soak workload's
    # shape), so the gate measures connector overhead against real
    # pipeline compute rather than a toy single-query loop.
    names = [f"e{i + 1}" for i in range(N_TYPES)]
    return ServiceSpec(
        alphabet=ALPHABET,
        patterns=[
            (f"p{i}", (names[i], names[i + 1])) for i in range(3)
        ],
        queries=[
            (f"q{i}", (names[i + 1], names[i + 2])) for i in range(3)
        ],
        mechanism="bd",
        mechanism_options={"epsilon": 1.0, "w": 40},
        source=source,
        seed=seed,
    )


def _broker_spec(url, *, group, seed=17):
    return _spec(
        f"broker:url={url},stream=bench,group={group},consumer=c0,"
        "block_ms=100,batch=64",
        seed=seed,
    )


def _pump_broker(url, *, group, seed=17):
    return asyncio.run(
        StreamService(_broker_spec(url, group=group, seed=seed)).pump()
    )


def _pump_queue(stream, seed=17):
    matrix = stream.matrix_view()

    async def drive():
        queue = asyncio.Queue(maxsize=256)
        service = StreamService(_spec("queue", seed=seed))

        async def produce():
            for index in range(matrix.shape[0]):
                await queue.put(matrix[index])
            await queue.put(None)

        producer = asyncio.ensure_future(produce())
        answers = await service.pump(QueueSource(queue))
        await producer
        return answers

    return asyncio.run(drive())


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


class TestBrokerBench:
    def test_bit_identity_and_throughput(self, results_dir):
        stream = _stream()
        reference = asyncio.run(StreamService(_spec()).pump(stream))

        with FakeRedisServer() as server:
            publish_indicator_stream(
                server.url,
                "bench",
                stream,
                rows_per_entry=ROWS_PER_ENTRY,
            )

            # -- bit-identity arms ------------------------------------
            identity_rows = []
            identity_rows.append((
                "uninterrupted",
                _pump_broker(server.url, group="plain") == reference,
            ))

            gateway = StreamGateway()
            gateway.add_tenant(
                "t", _broker_spec(server.url, group="resume")
            )
            # N_WINDOWS // 3 is not a multiple of ROWS_PER_ENTRY, so
            # the kill lands mid-chunk and resume must replay the
            # partial chunk row-exactly.
            asyncio.run(gateway.serve(max_windows=N_WINDOWS // 3))
            resumed = StreamGateway.resume(gateway.checkpoint())
            asyncio.run(resumed.serve())
            combined = {
                name: gateway.results()["t"][name]
                + resumed.results()["t"][name]
                for name in reference
            }
            identity_rows.append(("kill_resume", combined == reference))

            gateway = StreamGateway()
            gateway.add_tenant(
                "t", _broker_spec(server.url, group="faulted")
            )
            asyncio.run(gateway.serve(max_windows=N_WINDOWS // 3))
            server.inject_fault("reset", command="XREADGROUP", count=1)
            server.inject_fault("drop", command="XREADGROUP", count=1)
            asyncio.run(gateway.serve())
            faults_fired = len(server.faults_fired)
            identity_rows.append((
                "connection_kill",
                gateway.results()["t"] == reference
                and faults_fired == 2,
            ))
            bit_identical = all(same for _, same in identity_rows)

            # -- throughput: interleaved paired rounds ----------------
            _pump_queue(stream)  # warm both arms' code paths
            _pump_broker(server.url, group="warm")
            ratios, pairs = [], []
            for index in range(_ROUNDS):
                _, queue_s = _timed(lambda: _pump_queue(stream))
                _, broker_s = _timed(
                    lambda: _pump_broker(
                        server.url, group=f"round{index}"
                    )
                )
                ratios.append(queue_s / broker_s)
                pairs.append((queue_s, broker_s))
        throughput_ratio = paired_speedup(ratios)

        table = ResultTable(
            ["round", "queue_s", "broker_s", "ratio"],
            title="broker vs queue ingestion",
        )
        for index, (queue_s, broker_s) in enumerate(pairs):
            table.add_row(
                round=index,
                queue_s=round(queue_s, 4),
                broker_s=round(broker_s, 4),
                ratio=round(queue_s / broker_s, 4),
            )
        emit(table, results_dir, "broker_throughput")

        metrics = {
            "n_windows": N_WINDOWS,
            "rows_per_entry": ROWS_PER_ENTRY,
            "bit_identity": 1.0 if bit_identical else 0.0,
            "connection_faults_fired": faults_fired,
            "throughput_ratio": throughput_ratio,
            "broker_windows_per_second": (
                N_WINDOWS / min(b for _, b in pairs)
            ),
            "queue_windows_per_second": (
                N_WINDOWS / min(q for q, _ in pairs)
            ),
            "floor_enforced": True,
        }
        metrics.update(ratio_spread("throughput_ratio", ratios))
        for name, same in identity_rows:
            metrics[f"bit_identity_{name}"] = 1.0 if same else 0.0
        emit_json(
            results_dir,
            "broker",
            metrics,
            rows=[
                {
                    "round": index,
                    "queue_s": queue_s,
                    "broker_s": broker_s,
                }
                for index, (queue_s, broker_s) in enumerate(pairs)
            ],
            gates={
                "broker_bit_identity": {
                    "floor": 1.0,
                    "value": 1.0 if bit_identical else 0.0,
                },
                "broker_vs_queue_throughput": {
                    "floor": THROUGHPUT_FLOOR,
                    "value": throughput_ratio,
                },
            },
        )

        assert bit_identical, identity_rows
        assert throughput_ratio >= THROUGHPUT_FLOOR, ratios
