"""Ablation: the quality metric's precision weight α (Eq. (3)).

The paper fixes α = 0.5 "which emphasizes the precision and the recall
equally"; this bench sweeps α to show the pattern-level advantage is
not an artefact of that choice.
"""

from benchmarks.conftest import BENCH_SYNTHETIC, emit
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.ablations import sweep_alpha

ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)
EPSILON = 2.0


def test_ablation_alpha(benchmark, results_dir):
    workload = synthesize_dataset(BENCH_SYNTHETIC, rng=11)
    table = benchmark.pedantic(
        lambda: sweep_alpha(
            workload,
            EPSILON,
            ALPHAS,
            mechanisms=("uniform", "adaptive", "bd"),
            n_trials=3,
            rng=5,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, results_dir, "ablation_alpha")

    # The ordering uniform < bd holds at every α.
    for alpha in ALPHAS:
        rows = {
            row["mechanism"]: row["mre"]
            for row in table.filter(alpha=alpha)
        }
        assert rows["uniform"] < rows["bd"]
        assert rows["adaptive"] <= rows["uniform"] + 0.02
