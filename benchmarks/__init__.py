"""Benchmark package regenerating every table/figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only``; each module prints the
rows it regenerates and saves them under ``benchmarks/results/``.
"""
