"""Decision-kernel benchmark: scan bit-identity plus prepass speedup.

Runs the three kernelized schedulers — BD, BA and landmark — over a
service-sized indicator stream in every scan mode and pins two gates
into ``BENCH_decisions.json`` for ``benchmarks/check_gates.py``:

- ``decisions_bit_identity`` (always): ``scan=margin`` and
  ``scan=exact`` must reproduce the ``scan=off`` scalar loop bit for
  bit — releases, verdict traces and final snapshots alike.  This is
  the kernel's contract; a margin too tight for the platform's
  ``numpy.log`` would surface here before it surfaced in any paper
  figure.
- ``scan_vs_scalar_prepass`` (hosts with ≥ :data:`REQUIRED_CPUS`
  effective cores): the checkpoint prepass (``advance_block`` — the
  sequential phase every sharded run pays before its parallel replay)
  under ``scan=margin`` must beat the scalar loop by at least
  :data:`SPEEDUP_FLOOR`.  The prepass is where the scan matters most:
  certified-skip runs collapse to constant trace appends with zero
  generator touches, and landmark regular rows are hopped outright.
"""

import time

import numpy as np

from benchmarks.conftest import (
    effective_cpu_count,
    emit,
    emit_json,
    floor_reason,
    median,
    paired_speedup,
    ratio_spread,
)
from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.landmark import LandmarkPrivacy
from repro.utils.tables import ResultTable

#: Minimum effective cores for the prepass speedup floor (matches the
#: bench job's runner class; single-core hosts skip with a reason).
REQUIRED_CPUS = 4

#: Pinned floor: the scanned prepass at least this much faster than
#: the scalar per-timestamp loop.
SPEEDUP_FLOOR = 1.5

#: Stream scale: long enough that per-timestamp Python work dominates
#: the scalar arm, short enough to keep every arm under a few seconds.
N_WINDOWS = 120_000

N_TYPES = 8

_ROUNDS = 5

EPSILON = 1.0
W = 40


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def _stream_matrix():
    rng = np.random.default_rng(20230410)
    base = (rng.random((5_000, N_TYPES)) < 0.3).astype(float)
    repeats = -(-N_WINDOWS // base.shape[0])
    return np.tile(base, (repeats, 1))[:N_WINDOWS]


def _landmark_mask(n):
    return np.random.default_rng(7).random(n) < 0.02


def _releaser(kind, scan, n):
    if kind == "landmark":
        mechanism = LandmarkPrivacy(
            EPSILON, landmarks=_landmark_mask(n), rho=0.5, scan=scan
        )
    else:
        cls = BudgetDistribution if kind == "bd" else BudgetAbsorption
        mechanism = cls(EPSILON, w=W, scan=scan)
    return mechanism.online_releaser(N_TYPES, rng=1, horizon=n)


def _trace_tuple(releaser):
    trace = getattr(releaser, "trace", None)
    if trace is None:
        return None
    return (
        list(trace.published),
        list(trace.publication_budgets),
        list(trace.dissimilarity_budgets),
    )


def _snapshot_equal(left, right):
    if left.keys() != right.keys():
        return False
    for key in left:
        a, b = left[key], right[key]
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            if a is None or b is None or not np.array_equal(a, b):
                return False
        elif a != b:
            return False
    return True


def test_decision_scan(benchmark, results_dir):
    matrix = _stream_matrix()
    n = matrix.shape[0]
    kinds = ("bd", "ba", "landmark")

    # -- bit-identity: margin/exact ≡ off, releases + trace + state ----
    bit_identical = True
    for kind in kinds:
        baseline = _releaser(kind, "off", n)
        expected = baseline.step_block(matrix)
        for scan in ("margin", "exact"):
            releaser = _releaser(kind, scan, n)
            released = releaser.step_block(matrix)
            if not (
                np.array_equal(released, expected)
                and _trace_tuple(releaser) == _trace_tuple(baseline)
                and _snapshot_equal(
                    releaser.snapshot(), baseline.snapshot()
                )
            ):
                bit_identical = False
                print(f"BIT-IDENTITY BROKEN: {kind}/{scan}")
    assert bit_identical

    # -- prepass speedup: interleaved rounds, median paired ratio ------
    times = {}
    paired = {}
    for kind in kinds:
        arms = {
            f"{kind}/prepass/off": lambda kind=kind: _releaser(
                kind, "off", n
            ).advance_block(matrix),
            f"{kind}/prepass/margin": lambda kind=kind: _releaser(
                kind, "margin", n
            ).advance_block(matrix),
        }
        times.update({name: [] for name in arms})
        for _ in range(_ROUNDS):
            round_times = {}
            for name, runner in arms.items():
                _, seconds = _timed(runner)
                times[name].append(seconds)
                round_times[name] = seconds
            paired.setdefault(kind, []).append(
                round_times[f"{kind}/prepass/off"]
                / round_times[f"{kind}/prepass/margin"]
            )

    per_kind = {
        kind: paired_speedup(ratios) for kind, ratios in paired.items()
    }
    # "best" selects the winning *scheduler* (the landmark hop), not a
    # winning round — each kind's own number is already noise-robust.
    overall = max(per_kind.values())

    table = ResultTable(
        ["arm", "seconds", "speedup_vs_scalar"],
        title=f"decision-kernel prepass over {n} windows",
    )
    for kind in kinds:
        table.add_row(
            arm=f"{kind}/prepass/off",
            seconds=round(median(times[f"{kind}/prepass/off"]), 4),
            speedup_vs_scalar=1.0,
        )
        table.add_row(
            arm=f"{kind}/prepass/margin",
            seconds=round(median(times[f"{kind}/prepass/margin"]), 4),
            speedup_vs_scalar=round(per_kind[kind], 2),
        )
    emit(table, results_dir, "decisions_prepass")

    enforceable = effective_cpu_count() >= REQUIRED_CPUS
    gates = {
        "decisions_bit_identity": {
            "floor": 1.0,
            "value": 1.0 if bit_identical else 0.0,
        }
    }
    if enforceable:
        gates["scan_vs_scalar_prepass"] = {
            "floor": SPEEDUP_FLOOR,
            "value": overall,
        }
    emit_json(
        results_dir,
        "decisions",
        {
            "n_windows": n,
            "bit_identical": 1.0 if bit_identical else 0.0,
            "best_scan_vs_scalar": overall,
            "floor_enforced": enforceable,
            **{
                f"scan_vs_scalar/{kind}": ratio
                for kind, ratio in per_kind.items()
            },
            **{
                key: value
                for kind, ratios in paired.items()
                for key, value in ratio_spread(
                    f"scan_vs_scalar/{kind}", ratios
                ).items()
            },
            **{
                f"seconds/{name}": median(seconds)
                for name, seconds in times.items()
            },
        },
        rows=table.rows,
        gates=gates,
        floor_skipped_reason=(
            None if enforceable else floor_reason(REQUIRED_CPUS)
        ),
    )
    benchmark.extra_info["best_scan_vs_scalar"] = overall
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if enforceable:
        assert overall >= SPEEDUP_FLOOR, (
            f"scanned prepass only {overall:.2f}x the scalar loop"
        )
