"""Fig. 4, Taxi panel: MRE vs ε for all five mechanisms.

Regenerates the left-hand series of the paper's Fig. 4 on the
T-Drive-substitute taxi workload and asserts the Section VI-B claims,
including the compressed uniform-vs-adaptive gap specific to Taxi.
"""

from benchmarks.conftest import BENCH_CONFIG, BENCH_TAXI, emit
from repro.experiments.fig4 import run_fig4_taxi
from repro.experiments.reporting import fig4_wide_table


def test_fig4_taxi(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig4_taxi(BENCH_CONFIG, BENCH_TAXI),
        rounds=1,
        iterations=1,
    )
    emit(fig4_wide_table(result), results_dir, "fig4_taxi")

    violations = result.check_expected_shape()
    assert violations == [], violations

    # Pattern-level PPMs win at every ε.
    for epsilon in BENCH_CONFIG.epsilon_grid:
        assert result.pattern_level_advantage(epsilon) > 0.0

    # Section VI-B: on Taxi "the difference between the uniform and
    # adaptive approaches is evidently smaller".
    for epsilon in BENCH_CONFIG.epsilon_grid:
        gap = abs(
            result.series["uniform"].mre_at(epsilon)
            - result.series["adaptive"].mre_at(epsilon)
        )
        assert gap < 0.1

    benchmark.extra_info["mre_uniform_eps2"] = result.series["uniform"].mre_at(2.0)
    benchmark.extra_info["mre_landmark_eps2"] = result.series["landmark"].mre_at(2.0)
