"""Zero-copy shard transport benchmark: pickled bytes and speedup.

Runs the fig4 sweep workload's pipeline through the process-backend
:class:`ShardedExecutor` twice on identical seeds — once with the
shared-memory zero-copy data plane (the default) and once with
``zero_copy=False`` (the legacy pickle-the-slices transport) — with
``measure_transport=True``, so each arm reports exactly how many bytes
it pickled into the pool per window.

Three gates go into ``BENCH_zerocopy.json`` for
``benchmarks/check_gates.py``:

- ``zerocopy_bit_identity`` (always): the zero-copy arm must reproduce
  the :class:`BatchExecutor` release, answers and quality bit for bit;
- ``zerocopy_pickle_reduction`` (always — transport volume does not
  depend on core count): shipping ``ArrayDescriptor`` handles instead
  of matrix slices must cut pickled bytes per window by at least
  :data:`REDUCTION_FLOOR`;
- ``zerocopy_process_speedup`` (hosts with ≥ :data:`REQUIRED_CPUS`
  effective cores): the zero-copy arm must not be slower than the
  copying arm it replaces.

The benchmark also asserts the no-leak invariant directly: after both
arms (and an exercised failure path would behave the same — see
``tests/test_runtime_shm.py``) no ``repro_shm_*`` segment may remain
in ``/dev/shm``.
"""

import time

import numpy as np

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_SYNTHETIC,
    effective_cpu_count,
    emit,
    emit_json,
    floor_reason,
    median,
    paired_speedup,
    ratio_spread,
)
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.runner import WorkloadEvaluation
from repro.runtime import BatchExecutor, ShardedExecutor
from repro.runtime.shm import leaked_segments
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable

#: Workers used by both process arms.
N_WORKERS = 4

#: Minimum effective cores for the speedup floor to be enforceable.
REQUIRED_CPUS = 4

#: Pinned floor: zero-copy transport must shrink pickled bytes per
#: window by at least this factor versus pickling matrix slices.
REDUCTION_FLOOR = 10.0

#: Pinned floor: zero-copy must not lose wall-clock to the copy path.
SPEEDUP_FLOOR = 1.0

#: Stream scale: large enough that per-shard slices dominate the copy
#: arm's pickled payload (descriptor size is constant in window count).
N_WINDOWS = 200_000

_ROUNDS = 3


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_zerocopy_transport(benchmark, results_dir):
    workload = synthesize_dataset(
        BENCH_SYNTHETIC,
        rng=derive_rng(BENCH_CONFIG.seed, "zerocopy-bench"),
        name="zerocopy-bench",
    )
    context = WorkloadEvaluation(workload)
    mechanism = context.build_mechanism("uniform", 1.0)
    pipeline = context.pipeline.with_mechanism(mechanism)
    base = workload.stream.matrix_view()
    repeats = -(-N_WINDOWS // base.shape[0])
    stream = IndicatorStream(
        workload.stream.alphabet, np.tile(base, (repeats, 1))[:N_WINDOWS]
    )
    seed = BENCH_CONFIG.seed

    arms = {
        "zerocopy": ShardedExecutor(
            N_WORKERS,
            backend="process",
            materialize=False,
            measure_transport=True,
        ),
        "copy": ShardedExecutor(
            N_WORKERS,
            backend="process",
            materialize=False,
            zero_copy=False,
            measure_transport=True,
        ),
    }

    # -- bit-identity: zero-copy plane ≡ batch, same seed --------------
    batch = benchmark.pedantic(
        lambda: BatchExecutor().run(pipeline, stream, rng=seed),
        rounds=1,
        iterations=1,
    )
    bit_identical = True
    for name, executor in arms.items():
        result = executor.run(pipeline, stream, rng=seed)
        if not (
            all(
                np.array_equal(result.answers[query], detections)
                for query, detections in batch.answers.items()
            )
            and result.quality() == batch.quality()
        ):
            bit_identical = False
            print(f"BIT-IDENTITY BROKEN: {name}")
    assert bit_identical

    # -- transport volume: bytes actually pickled into the pool --------
    transport = {
        name: executor.last_transport for name, executor in arms.items()
    }
    assert transport["zerocopy"].zero_copy
    assert not transport["copy"].zero_copy
    reduction = (
        transport["copy"].bytes_per_window
        / transport["zerocopy"].bytes_per_window
    )

    # -- speedup: interleaved rounds, median paired ratio --------------
    paired = []
    times = {name: [] for name in arms}
    for _ in range(_ROUNDS):
        round_times = {}
        for name, executor in arms.items():
            _, seconds = _timed(
                lambda executor=executor: executor.run(
                    pipeline, stream, rng=seed
                )
            )
            times[name].append(seconds)
            round_times[name] = seconds
        paired.append(round_times["copy"] / round_times["zerocopy"])
    speedup = paired_speedup(paired)

    # -- no-leak invariant ---------------------------------------------
    leaked = leaked_segments()
    assert leaked == (), f"leaked shared-memory segments: {leaked}"

    table = ResultTable(
        ["arm", "workers", "seconds", "bytes_per_window"],
        title=f"process shard transport over {stream.n_windows} windows",
    )
    for name in arms:
        table.add_row(
            arm=name,
            workers=N_WORKERS,
            seconds=round(median(times[name]), 4),
            bytes_per_window=round(transport[name].bytes_per_window, 4),
        )
    emit(table, results_dir, "zerocopy_transport")

    enforceable = effective_cpu_count() >= REQUIRED_CPUS
    gates = {
        "zerocopy_bit_identity": {
            "floor": 1.0,
            "value": 1.0 if bit_identical else 0.0,
        },
        "zerocopy_pickle_reduction": {
            "floor": REDUCTION_FLOOR,
            "value": reduction,
        },
    }
    if enforceable:
        gates["zerocopy_process_speedup"] = {
            "floor": SPEEDUP_FLOOR,
            "value": speedup,
        }
    emit_json(
        results_dir,
        "zerocopy",
        {
            "n_windows": stream.n_windows,
            "n_workers": N_WORKERS,
            "n_shards": transport["zerocopy"].n_shards,
            "bit_identical": 1.0 if bit_identical else 0.0,
            "zerocopy_bytes_per_window": transport[
                "zerocopy"
            ].bytes_per_window,
            "copy_bytes_per_window": transport["copy"].bytes_per_window,
            "pickle_reduction": reduction,
            "zerocopy_seconds": median(times["zerocopy"]),
            "copy_seconds": median(times["copy"]),
            "process_speedup": speedup,
            "floor_enforced": enforceable,
            **ratio_spread("process_speedup", paired),
        },
        rows=table.rows,
        gates=gates,
        floor_skipped_reason=(
            None if enforceable else floor_reason(REQUIRED_CPUS)
        ),
    )
    benchmark.extra_info["pickle_reduction"] = reduction
    benchmark.extra_info["process_speedup"] = speedup
    benchmark.extra_info["floor_enforced"] = enforceable

    assert reduction >= REDUCTION_FLOOR, (
        f"zero-copy transport only cut pickled bytes "
        f"{reduction:.1f}x (copy: "
        f"{transport['copy'].bytes_per_window:.2f} B/window, zerocopy: "
        f"{transport['zerocopy'].bytes_per_window:.4f} B/window)"
    )
    if enforceable:
        assert speedup >= SPEEDUP_FLOOR, (
            f"zero-copy arm slower than the copy path it replaces "
            f"({speedup:.2f}x, rounds: {[f'{r:.2f}' for r in paired]})"
        )
