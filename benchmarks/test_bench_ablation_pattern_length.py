"""Ablation: private pattern length m.

Theorem 1 splits the pattern-level budget over the m elements, so each
element gets noisier as patterns grow — this is the structural reason
the Taxi panel (short patterns) and the synthetic panel (length 3)
differ in Fig. 4.  The bench sweeps m on synthetic data.
"""

from benchmarks.conftest import emit
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments.ablations import sweep_pattern_length

LENGTHS = (1, 2, 3, 4, 5)
EPSILON = 2.0


def test_ablation_pattern_length(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: sweep_pattern_length(
            LENGTHS,
            EPSILON,
            base_config=SyntheticConfig(
                n_windows=400, n_history_windows=250
            ),
            mechanisms=("uniform", "adaptive", "bd"),
            n_trials=3,
            rng=3,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, results_dir, "ablation_pattern_length")

    uniform_by_length = {
        row["pattern_length"]: row["mre"]
        for row in table.filter(mechanism="uniform")
    }
    # Longer patterns cost more quality at the same ε (2-point slack for
    # dataset-to-dataset variation).
    assert uniform_by_length[LENGTHS[-1]] > uniform_by_length[LENGTHS[0]] - 0.02

    # The pattern-level PPM wins at every length.
    for length in LENGTHS:
        rows = {
            row["mechanism"]: row["mre"]
            for row in table.filter(pattern_length=length)
        }
        assert rows["uniform"] < rows["bd"]
