"""Adaptive PPM generalization: does Algorithm 1 overfit its history?

Not a paper table, but a load-bearing assumption of Section V-B: the
budget distribution fitted on *historical* windows must help on *future*
windows.  This bench fits on the history split, evaluates on the
evaluation split, and reports the in-sample/out-of-sample quality gap —
asserting the fitted PPM still beats uniform out of sample.
"""

from benchmarks.conftest import BENCH_SYNTHETIC, emit
from repro.core.adaptive import AdaptivePatternPPM
from repro.core.quality_model import AnalyticQualityEstimator
from repro.core.uniform import UniformPatternPPM
from repro.datasets.synthetic import synthesize_dataset
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable

EPSILONS = (1.0, 2.0, 4.0)
N_DATASETS = 5


def run():
    table = ResultTable(
        [
            "epsilon",
            "uniform_q_test",
            "adaptive_q_train",
            "adaptive_q_test",
            "generalization_gap",
        ],
        title="Algorithm 1 generalization (train = history, test = evaluation)",
    )
    for epsilon in EPSILONS:
        uniform_tests, train_qs, test_qs = [], [], []
        for index in range(N_DATASETS):
            workload = synthesize_dataset(
                BENCH_SYNTHETIC, rng=derive_rng(99, "gen", index)
            )
            pattern = workload.most_overlapping_private()
            adaptive = AdaptivePatternPPM.fit(
                pattern, epsilon, workload.history, workload.target_patterns
            )
            uniform = UniformPatternPPM(pattern, epsilon)
            train_estimator = AnalyticQualityEstimator(
                workload.history, pattern, workload.target_patterns
            )
            test_estimator = AnalyticQualityEstimator(
                workload.stream, pattern, workload.target_patterns
            )
            uniform_tests.append(
                test_estimator.evaluate(uniform.allocation).q
            )
            train_qs.append(train_estimator.evaluate(adaptive.allocation).q)
            test_qs.append(test_estimator.evaluate(adaptive.allocation).q)
        mean = lambda values: sum(values) / len(values)  # noqa: E731
        table.add_row(
            epsilon=epsilon,
            uniform_q_test=mean(uniform_tests),
            adaptive_q_train=mean(train_qs),
            adaptive_q_test=mean(test_qs),
            generalization_gap=mean(train_qs) - mean(test_qs),
        )
    return table


def test_adaptive_generalization(benchmark, results_dir):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table, results_dir, "adaptive_generalization")
    for row in table:
        # Out-of-sample, the fitted distribution still beats uniform...
        assert row["adaptive_q_test"] >= row["uniform_q_test"] - 0.01
        # ...and the train/test gap is small (windows are iid draws of
        # the same occurrence process).
        assert abs(row["generalization_gap"]) < 0.05
