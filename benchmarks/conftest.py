"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one table/figure of the paper's evaluation
(or one ablation from DESIGN.md), prints the rows, saves them as CSV
under ``benchmarks/results/`` and asserts the expected qualitative
shape.  Benchmarks run their workload exactly once
(``benchmark.pedantic(rounds=1)``) — the interesting output is the
table, the timing is a bonus.

Performance benchmarks additionally persist a machine-readable summary
— ``benchmarks/results/BENCH_<name>.json`` via :func:`emit_json` — so
local runs and the CI bench job produce the same artifact and the CI
regression gate can enforce speedup floors without parsing test
output.
"""

import json
import os
import platform

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.taxi import TaxiConfig
from repro.experiments.config import ExperimentConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark-scale experiment configuration: the full ε grid of Fig. 4
#: with laptop-friendly repetition counts (crank these up to the paper's
#: scale with the reproduce_fig4.py example).
BENCH_CONFIG = ExperimentConfig(
    epsilon_grid=(0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0),
    n_trials=3,
)

BENCH_SYNTHETIC = SyntheticConfig(n_windows=500, n_history_windows=300)
BENCH_TAXI = TaxiConfig(n_taxis=60, n_steps=180)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(table, results_dir, name):
    """Print a result table and persist it as CSV."""
    print()
    print(table.render())
    path = os.path.join(results_dir, f"{name}.csv")
    table.write_csv(path)
    print(f"[saved {path}]")


#: Schema version of the ``BENCH_*.json`` summaries; bump on breaking
#: layout changes so the CI gate can detect stale artifacts.
#: v2: ``cpu_count`` is the *effective* core count (CPU affinity, not
#: the host's installed cores) and summaries whose speedup floors are
#: unenforced carry a human-readable ``floor_skipped_reason``.
BENCH_JSON_SCHEMA = 2


def median(values):
    """Median of a sequence of numbers (sorted-middle, no numpy)."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def paired_speedup(ratios):
    """Noise-robust aggregate of per-round paired speedup ratios.

    Pairing baseline and treatment inside one interleaved round keeps
    co-tenant noise from *faking* a speedup trend, but aggregating with
    ``max`` let a single noisy baseline round set the headline number
    (and the CI gate value it feeds) — committed artifacts then
    contradicted their own per-arm seconds.  The median keeps the
    pairing and cannot be set by one outlier round; emit it together
    with :func:`ratio_spread` so the round count and spread land in the
    artifact next to the point value.
    """
    return median(ratios)


def ratio_spread(prefix, ratios):
    """Flat ``metrics`` entries recording a ratio set's rounds + spread.

    Returned as ``{prefix}_rounds/{prefix}_min/{prefix}_max`` so every
    median paired speedup in a ``BENCH_*.json`` is accompanied by how
    many rounds produced it and how noisy they were.
    """
    return {
        f"{prefix}_rounds": len(ratios),
        f"{prefix}_min": min(ratios),
        f"{prefix}_max": max(ratios),
    }


def effective_cpu_count():
    """Cores this process may actually run on.

    Containers and CI runners routinely pin processes to a subset of
    the host's cores; ``os.cpu_count()`` reports the host and made
    earlier ``BENCH_*.json`` files claim ``cpu_count: 1`` was a 4-way
    parallel run (or vice versa).  CPU affinity is the truth speedup
    floors must be conditioned on.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux fallbacks
        return os.cpu_count() or 1


def floor_reason(required_cpus):
    """The standard human-readable reason a speedup floor was skipped."""
    return (
        f"host exposes {effective_cpu_count()} effective core(s) "
        f"(CPU affinity); parallel speedup floors need >= "
        f"{required_cpus}"
    )


def emit_json(
    results_dir,
    name,
    metrics,
    *,
    rows=None,
    gates=None,
    floor_skipped_reason=None,
):
    """Persist one benchmark's machine-readable summary.

    Writes ``BENCH_<name>.json`` with a fixed shape shared by local
    runs and CI:

    - ``metrics`` — flat name → number mapping (wall times, speedup
      factors);
    - ``rows`` — optional per-configuration detail rows (the CSV rows);
    - ``gates`` — optional name → ``{"floor": x, "value": y}`` entries
      the CI regression gate enforces (``value >= floor``);
    - ``floor_skipped_reason`` — required human-readable explanation
      whenever the metrics record ``floor_enforced`` false, so a
      summary with unenforced floors is self-describing.
    """
    if not metrics.get("floor_enforced", True) and not floor_skipped_reason:
        raise ValueError(
            f"bench {name!r} records floor_enforced=False; pass "
            "floor_skipped_reason= explaining why (see floor_reason())"
        )
    payload = {
        "bench": name,
        "schema_version": BENCH_JSON_SCHEMA,
        "python": platform.python_version(),
        "cpu_count": effective_cpu_count(),
        "metrics": {key: value for key, value in metrics.items()},
        "rows": list(rows) if rows is not None else [],
        "gates": dict(gates) if gates is not None else {},
    }
    if floor_skipped_reason is not None:
        payload["floor_skipped_reason"] = floor_skipped_reason
    path = os.path.join(results_dir, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[saved {path}]")
    return path
