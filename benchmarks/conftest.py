"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one table/figure of the paper's evaluation
(or one ablation from DESIGN.md), prints the rows, saves them as CSV
under ``benchmarks/results/`` and asserts the expected qualitative
shape.  Benchmarks run their workload exactly once
(``benchmark.pedantic(rounds=1)``) — the interesting output is the
table, the timing is a bonus.
"""

import os

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.taxi import TaxiConfig
from repro.experiments.config import ExperimentConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark-scale experiment configuration: the full ε grid of Fig. 4
#: with laptop-friendly repetition counts (crank these up to the paper's
#: scale with the reproduce_fig4.py example).
BENCH_CONFIG = ExperimentConfig(
    epsilon_grid=(0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0),
    n_trials=3,
)

BENCH_SYNTHETIC = SyntheticConfig(n_windows=500, n_history_windows=300)
BENCH_TAXI = TaxiConfig(n_taxis=60, n_steps=180)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(table, results_dir, name):
    """Print a result table and persist it as CSV."""
    print()
    print(table.render())
    path = os.path.join(results_dir, f"{name}.csv")
    table.write_csv(path)
    print(f"[saved {path}]")
