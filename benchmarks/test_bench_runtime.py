"""Runtime benchmark: legacy engine path vs batch and chunked executors.

Runs the fig4 synthetic workload's full (mechanism × ε) sweep three
ways on the same dataset and seeds:

- **legacy** — the seed implementation: ground truth recomputed per
  cell, per-window ``derive_rng`` release loops for BD/BA/landmark,
  no shared estimator state (via ``repro.runtime.reference``);
- **batch** — the runtime's vectorized pipeline with one shared
  :class:`~repro.experiments.runner.WorkloadEvaluation`;
- **chunked** — the same pipeline under the bounded-memory
  :class:`~repro.runtime.executors.ChunkedExecutor`.

All three must produce *identical* MRE numbers (same seeds → same
outputs); the batch executor must be at least 2× faster than the
legacy path, and the measured speedups land in the benchmark record so
the perf trajectory tracks them.
"""

import time

import numpy as np

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_SYNTHETIC,
    emit,
    emit_json,
    median,
    paired_speedup,
    ratio_spread,
)
from repro.core.adaptive import AdaptivePatternPPM
from repro.core.ppm import MultiPatternPPM
from repro.core.quality_model import baseline_quality
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.runner import (
    WorkloadEvaluation,
    build_mechanism,
    sweep,
)
from repro.metrics.confusion import ConfusionCounts
from repro.metrics.mre import mean_relative_error
from repro.metrics.quality import DataQuality
from repro.runtime import ChunkedExecutor
from repro.runtime.reference import (
    ReferenceAnalyticEstimator,
    reference_perturb,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable


def _legacy_sweep(workload, config):
    """The seed evaluation loop: no sharing, per-window release loops."""
    cells = []
    for kind in config.mechanisms:
        for epsilon in config.epsilon_grid:
            cell_rng = derive_rng(
                config.seed, "sweep", kind, int(epsilon * 1000)
            )
            if kind == "adaptive":
                # The seed re-fit Algorithm 1 with a fresh, per-call
                # column-extracting estimator every cell.
                mechanism = MultiPatternPPM(
                    [
                        AdaptivePatternPPM.fit(
                            pattern,
                            epsilon,
                            workload.history,
                            workload.target_patterns,
                            alpha=config.alpha,
                            estimator_factory=ReferenceAnalyticEstimator,
                        )
                        for pattern in workload.private_patterns
                    ]
                )
            else:
                mechanism = build_mechanism(
                    kind,
                    workload,
                    epsilon,
                    alpha=config.alpha,
                    conversion_mode=config.conversion_mode,
                )
            truths = {
                pattern.name: workload.stream.detect_all(
                    list(pattern.elements)
                )
                for pattern in workload.target_patterns
            }
            measure_rng = derive_rng(cell_rng, kind, int(epsilon * 1000))
            qualities = []
            for trial in range(config.n_trials):
                child = derive_rng(measure_rng, "trial", trial)
                perturbed = reference_perturb(
                    mechanism, workload.stream, rng=child
                )
                counts = ConfusionCounts()
                for pattern in workload.target_patterns:
                    predicted = perturbed.detect_all(list(pattern.elements))
                    counts = counts + ConfusionCounts.from_vectors(
                        truths[pattern.name], predicted
                    )
                qualities.append(
                    DataQuality.from_confusion(counts, alpha=config.alpha)
                )
            q_ordinary = baseline_quality(
                workload.stream,
                workload.target_patterns,
                alpha=config.alpha,
            ).q
            mres = [
                mean_relative_error(q_ordinary, quality.q)
                for quality in qualities
            ]
            cells.append((kind, epsilon, float(np.mean(mres))))
    return cells


def _runtime_sweep(workload, config, executor=None):
    if executor is None:
        results = sweep(
            workload,
            epsilon_grid=config.epsilon_grid,
            mechanisms=config.mechanisms,
            alpha=config.alpha,
            n_trials=config.n_trials,
            conversion_mode=config.conversion_mode,
            rng=config.seed,
        )
        return [
            (result.mechanism, result.pattern_epsilon, result.mre)
            for result in results
        ]
    context = WorkloadEvaluation(workload)
    cells = []
    for kind in config.mechanisms:
        for epsilon in config.epsilon_grid:
            result = context.evaluate(
                kind,
                epsilon,
                alpha=config.alpha,
                n_trials=config.n_trials,
                conversion_mode=config.conversion_mode,
                rng=derive_rng(config.seed, "sweep", kind, int(epsilon * 1000)),
                executor=executor,
            )
            cells.append((result.mechanism, result.pattern_epsilon, result.mre))
    return cells


_ROUNDS = 5


def test_runtime_speedup(benchmark, results_dir):
    workload = synthesize_dataset(
        BENCH_SYNTHETIC,
        rng=derive_rng(BENCH_CONFIG.seed, "runtime-bench"),
        name="runtime-bench",
    )

    batch = benchmark.pedantic(
        lambda: _runtime_sweep(workload, BENCH_CONFIG), rounds=1, iterations=1
    )

    def timed(callable_):
        start = time.perf_counter()
        result = callable_()
        return result, time.perf_counter() - start

    # Interleave the arms so every round sees the same machine state,
    # then report per-arm medians and the median *paired* speedup —
    # pairing keeps shared-host noise from faking a trend, and the
    # median keeps one noisy round from setting the gate value.
    legacy_times, batch_times, chunked_times, paired = [], [], [], []
    for _ in range(_ROUNDS):
        legacy, legacy_round = timed(
            lambda: _legacy_sweep(workload, BENCH_CONFIG)
        )
        _, batch_round = timed(lambda: _runtime_sweep(workload, BENCH_CONFIG))
        chunked, chunked_round = timed(
            lambda: _runtime_sweep(
                workload, BENCH_CONFIG, executor=ChunkedExecutor(128)
            )
        )
        legacy_times.append(legacy_round)
        batch_times.append(batch_round)
        chunked_times.append(chunked_round)
        paired.append(legacy_round / batch_round)
    legacy_seconds = median(legacy_times)
    batch_seconds = median(batch_times)
    chunked_seconds = median(chunked_times)
    speedup = paired_speedup(paired)

    # Same seeds → same numbers, down to the last bit, on every arm.
    assert batch == legacy
    assert chunked == legacy

    table = ResultTable(
        ["path", "seconds", "speedup_vs_legacy"],
        title="runtime sweep: legacy vs batch vs chunked",
    )
    for path, seconds in (
        ("legacy", legacy_seconds),
        ("batch", batch_seconds),
        ("chunked", chunked_seconds),
    ):
        table.add_row(
            path=path,
            seconds=round(seconds, 4),
            speedup_vs_legacy=round(legacy_seconds / seconds, 2),
        )
    emit(table, results_dir, "runtime_speedup")
    emit_json(
        results_dir,
        "runtime",
        {
            "legacy_seconds": legacy_seconds,
            "batch_seconds": batch_seconds,
            "chunked_seconds": chunked_seconds,
            "speedup_vs_legacy": legacy_seconds / batch_seconds,
            "paired_speedup": speedup,
            **ratio_spread("paired_speedup", paired),
        },
        rows=table.rows,
        gates={
            "runtime_vs_legacy": {
                "floor": 2.0,
                "value": speedup,
            }
        },
    )

    benchmark.extra_info["legacy_seconds"] = legacy_seconds
    benchmark.extra_info["chunked_seconds"] = chunked_seconds
    benchmark.extra_info["speedup"] = legacy_seconds / batch_seconds
    benchmark.extra_info["paired_speedup"] = speedup

    # The acceptance bar: the vectorized batch path at least halves the
    # legacy runtime (it typically does far better).  Judged on the
    # median same-round pairing, which neither co-tenant noise nor a
    # single outlier round can inflate.
    assert speedup >= 2.0, (
        f"batch executor only {speedup:.2f}x faster "
        f"(per-round: {[f'{ratio:.2f}' for ratio in paired]})"
    )
