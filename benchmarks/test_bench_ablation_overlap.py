"""Ablation: private/target area overlap (Section VI-A.1).

The paper overlaps 50 % of the private area with the target area
because "the evaluation is meaningful only if they are dependent and
relevant to each other".  This bench sweeps the overlap fraction on the
taxi workload: at 0 the pattern-level PPM is almost free; as overlap
grows, hiding private visits necessarily costs target quality.
"""

from benchmarks.conftest import emit
from repro.datasets.taxi import TaxiConfig
from repro.experiments.ablations import sweep_overlap

OVERLAPS = (0.0, 0.25, 0.5, 0.75, 1.0)
EPSILON = 2.0


def test_ablation_overlap(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: sweep_overlap(
            OVERLAPS,
            EPSILON,
            base_config=TaxiConfig(n_taxis=40, n_steps=120),
            mechanisms=("uniform", "adaptive"),
            n_trials=3,
            rng=9,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, results_dir, "ablation_overlap")

    uniform = {
        row["overlap"]: row["mre"]
        for row in table.filter(mechanism="uniform")
    }
    # The cost of protection grows with overlap; compare the extremes.
    assert uniform[1.0] > uniform[0.0]
    # Zero overlap leaves only noise-induced false positives on the
    # (empty) overlap query — far below the full-overlap cost.
    assert uniform[0.0] < uniform[1.0] / 2
