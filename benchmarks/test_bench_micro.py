"""Micro-benchmarks of the core operations.

Not a paper table — these measure the throughput of the building blocks
(perturbation, detection, CEP matching, Algorithm 1 fitting) so
regressions in the hot paths are visible.
"""

import numpy as np
import pytest

from repro.cep.matcher import PatternMatcher
from repro.cep.patterns import Pattern
from repro.core.adaptive import AdaptivePatternPPM
from repro.core.quality_model import AnalyticQualityEstimator
from repro.core.uniform import UniformPatternPPM
from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream


@pytest.fixture(scope="module")
def big_stream():
    rng = np.random.default_rng(0)
    alphabet = EventAlphabet.numbered(20)
    return IndicatorStream(alphabet, rng.random((10_000, 20)) < 0.4)


@pytest.fixture(scope="module")
def ppm():
    return UniformPatternPPM(
        Pattern.of_types("p", "e1", "e2", "e3"), epsilon=2.0
    )


def test_perturb_throughput(benchmark, big_stream, ppm):
    """Randomized response over 10k windows x 3 protected columns."""
    result = benchmark(lambda: ppm.perturb(big_stream, rng=1))
    assert result.n_windows == big_stream.n_windows


def test_detection_throughput(benchmark, big_stream):
    """Containment detection over 10k windows."""
    result = benchmark(
        lambda: big_stream.detect_all(["e1", "e2", "e3"]).sum()
    )
    assert result >= 0


def test_matcher_throughput(benchmark):
    """NFA matching of a 3-step SEQ over a 2k-event stream."""
    rng = np.random.default_rng(1)
    symbols = [f"e{i}" for i in range(1, 9)]
    events = EventStream(
        [
            Event(symbols[rng.integers(0, len(symbols))], float(i))
            for i in range(2000)
        ]
    )
    pattern = Pattern.of_types("p", "e1", "e2", "e3")

    def run():
        matcher = PatternMatcher(pattern, within=50.0, max_active_runs=500)
        return len(matcher.feed(events))

    matches = benchmark(run)
    assert matches > 0


def test_adaptive_fit_time(benchmark):
    """One Algorithm 1 fit on a 300-window history."""
    workload = synthesize_dataset(
        SyntheticConfig(n_windows=100, n_history_windows=300), rng=5
    )
    pattern = workload.most_overlapping_private()

    def run():
        return AdaptivePatternPPM.fit(
            pattern, 2.0, workload.history, workload.target_patterns
        )

    fitted = benchmark(run)
    assert fitted.fit_result is not None


def test_analytic_estimator_evaluate_time(benchmark):
    """One analytic quality evaluation (the Algorithm 1 inner loop)."""
    workload = synthesize_dataset(
        SyntheticConfig(n_windows=100, n_history_windows=1000), rng=6
    )
    pattern = workload.private_patterns[0]
    estimator = AnalyticQualityEstimator(
        workload.history, pattern, workload.target_patterns
    )
    from repro.core.budget import BudgetAllocation

    allocation = BudgetAllocation.uniform(2.0, len(pattern.elements))
    quality = benchmark(lambda: estimator.evaluate(allocation))
    assert 0.0 <= quality.q <= 1.0
