"""Ablation: the budget-conversion accounting (Section VI-A.2).

The paper converts the baselines' native budgets to pattern-level ε "by
aggregating the original privacy budgets related to the predefined
private pattern".  Our formalization offers a sound worst-case mode and
an optimistic nominal mode that grants the baselines more native budget
for the same pattern-level ε.  The headline conclusion must not depend
on this choice: even with the optimistic conversion, the pattern-level
PPMs dominate.
"""

from benchmarks.conftest import BENCH_SYNTHETIC, emit
from repro.datasets.synthetic import synthesize_dataset
from repro.experiments.ablations import sweep_conversion_mode

EPSILONS = (1.0, 4.0, 10.0)


def test_ablation_conversion_mode(benchmark, results_dir):
    workload = synthesize_dataset(BENCH_SYNTHETIC, rng=31)
    table = benchmark.pedantic(
        lambda: sweep_conversion_mode(
            workload, EPSILONS, n_trials=3, rng=17
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, results_dir, "ablation_conversion")

    for epsilon in EPSILONS:
        ours = min(
            row["mre"]
            for row in table.filter(mode="native", epsilon=epsilon)
        )
        for mode in ("worst_case", "nominal"):
            theirs = min(
                row["mre"] for row in table.filter(mode=mode, epsilon=epsilon)
            )
            assert ours < theirs, (
                f"pattern-level must win under the {mode} conversion at "
                f"epsilon={epsilon}"
            )

    # The nominal mode gives the baselines more native budget, so their
    # MRE should not be (much) worse than under worst_case.
    for epsilon in EPSILONS:
        for kind in ("bd", "ba"):
            worst = table.filter(
                mode="worst_case", mechanism=kind, epsilon=epsilon
            ).rows[0]["mre"]
            nominal = table.filter(
                mode="nominal", mechanism=kind, epsilon=epsilon
            ).rows[0]["mre"]
            assert nominal <= worst + 0.05
