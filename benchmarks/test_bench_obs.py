"""Observability overhead benchmark: bit-identity plus ≤2% tax.

The telemetry plane's contract is that it may *watch* the pipeline but
never touch it: with a span recorder installed and a scoped metrics
registry, every executor must release exactly the bytes the
uninstrumented run releases, and the fully instrumented run must cost
at most ~2% wall time over the uninstrumented one.  Both promises are
pinned into ``BENCH_obs.json`` for ``benchmarks/check_gates.py``:

- ``obs_bit_identity`` (always): instrumented batch, sharded and
  cluster runs reproduce the uninstrumented batch release bit for bit
  (1.0 = identical).
- ``obs_overhead_ratio`` (always): median paired uninstrumented /
  instrumented wall-time ratio over interleaved rounds; the floor of
  :data:`OVERHEAD_FLOOR` caps the instrumentation tax at ~2%
  (ratio 0.98 ⇔ instrumented ≤ 1.02× the stripped run).
"""

import time

import numpy as np

from benchmarks.conftest import (
    emit,
    emit_json,
    paired_speedup,
    ratio_spread,
)
from repro.baselines.budget_distribution import BudgetDistribution
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import SpanRecorder, use_recorder
from repro.runtime import (
    BatchExecutor,
    ClusterExecutor,
    ShardedExecutor,
    StreamPipeline,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.utils.tables import ResultTable

#: Pinned floor on the median paired stripped/instrumented ratio:
#: full telemetry (recorder + registry) may cost at most ~2%.
OVERHEAD_FLOOR = 0.98

N_WINDOWS = 40_000

N_TYPES = 8

_ROUNDS = 9

ALPHABET = EventAlphabet.numbered(N_TYPES)
QUERIES = [
    ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e2")),
    ContinuousQuery("q2", Pattern.of_types("q2", "e3")),
]


def _stream():
    rng = np.random.default_rng(20230811)
    return IndicatorStream(
        ALPHABET, rng.random((N_WINDOWS, N_TYPES)) < 0.3
    )


def _pipeline():
    return StreamPipeline(
        ALPHABET,
        queries=QUERIES,
        mechanism=BudgetDistribution(1.0, w=40),
    )


def _run(stream, *, executor=None, instrumented=False, rng=17):
    if not instrumented:
        return _pipeline().run(stream, rng=rng, executor=executor)
    with use_recorder(SpanRecorder()), use_registry(MetricsRegistry()):
        return _pipeline().run(stream, rng=rng, executor=executor)


def _identical(left, right):
    if left.released != right.released:
        return False
    if set(left.answers) != set(right.answers):
        return False
    return all(
        np.array_equal(left.answers[name], right.answers[name])
        for name in left.answers
    )


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


class TestObsOverhead:
    def test_bit_identity_and_overhead(self, results_dir):
        stream = _stream()
        plain = _run(stream)

        # -- bit-identity: every executor, fully instrumented --------
        identity_rows = []
        executors = [
            ("batch", lambda: BatchExecutor()),
            ("sharded", lambda: ShardedExecutor(2)),
            ("cluster", lambda: ClusterExecutor(2)),
        ]
        for name, factory in executors:
            traced = _run(
                stream, executor=factory(), instrumented=True
            )
            identity_rows.append((name, _identical(plain, traced)))
        bit_identical = all(same for _, same in identity_rows)

        # -- overhead: interleaved paired rounds on the batch path ----
        for _ in range(2):  # warm both arms' code paths
            _run(stream)
            _run(stream, instrumented=True)
        ratios, pairs = [], []
        for _ in range(_ROUNDS):
            _, stripped = _timed(lambda: _run(stream))
            _, instrumented = _timed(
                lambda: _run(stream, instrumented=True)
            )
            ratios.append(stripped / instrumented)
            pairs.append((stripped, instrumented))
        overhead_ratio = paired_speedup(ratios)

        table = ResultTable(
            ["round", "stripped_s", "instrumented_s", "ratio"],
            title="observability overhead",
        )
        for index, (stripped, instrumented) in enumerate(pairs):
            table.add_row(
                round=index,
                stripped_s=round(stripped, 4),
                instrumented_s=round(instrumented, 4),
                ratio=round(stripped / instrumented, 4),
            )
        emit(table, results_dir, "bench_obs")

        metrics = {
            "n_windows": N_WINDOWS,
            "bit_identity": 1.0 if bit_identical else 0.0,
            "overhead_ratio": overhead_ratio,
            "floor_enforced": True,
        }
        metrics.update(ratio_spread("overhead_ratio", ratios))
        for name, same in identity_rows:
            metrics[f"bit_identity_{name}"] = 1.0 if same else 0.0
        emit_json(
            results_dir,
            "obs",
            metrics,
            rows=[
                {
                    "round": index,
                    "stripped_s": stripped,
                    "instrumented_s": instrumented,
                }
                for index, (stripped, instrumented) in enumerate(pairs)
            ],
            gates={
                "obs_bit_identity": {
                    "floor": 1.0,
                    "value": 1.0 if bit_identical else 0.0,
                },
                "obs_overhead_ratio": {
                    "floor": OVERHEAD_FLOOR,
                    "value": overhead_ratio,
                },
            },
        )

        assert bit_identical, identity_rows
        assert overhead_ratio >= OVERHEAD_FLOOR, ratios
