"""File-source ingestion benchmark: connector path vs hand-rolled loop.

Measures the end-to-end service phase from an on-disk indicator CSV
two ways on identical seeds:

- **connector** — the PR-5 declarative path:
  ``ServiceSpec(source="csv:<path>").build().run()`` (streamed chunked
  read, one vectorized batch release);
- **hand-rolled** — what callers wrote before the connector layer:
  materialize the file as Python lists, convert, then drive
  ``AsyncSession.submit`` window by window.

Both arms must be *bit-identical* (the async chunk stepper reproduces
the batch draws for flip mechanisms), and the connector path must not
regress below :data:`SPEEDUP_FLOOR` × the hand-rolled loop — the gate
CI enforces through ``BENCH_ingest.json``.
"""

import asyncio
import csv
import os
import tempfile
import time

import numpy as np

from benchmarks.conftest import (
    emit,
    emit_json,
    median,
    paired_speedup,
    ratio_spread,
)
from repro.service import ServiceSpec
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.utils.tables import ResultTable

#: Windows in the benchmark replay file (service-phase shape).
N_WINDOWS = 60_000

N_TYPES = 8

#: The pinned no-regression floor: declarative ingestion must beat the
#: hand-rolled per-window submit loop (in practice it is far faster —
#: the floor only guards against the connector path regressing).
SPEEDUP_FLOOR = 1.2

_ROUNDS = 5

SEED = 11


def _spec(path):
    return ServiceSpec(
        alphabet=tuple(f"e{i + 1}" for i in range(N_TYPES)),
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        source=f"csv:{path}",
        seed=SEED,
    )


def _handrolled(path, spec):
    """The pre-connector way: list-materialized load + submit loop."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [[int(value) for value in row] for row in reader]
    stream = IndicatorStream(
        EventAlphabet(header), np.array(rows, dtype=int)
    )

    async def drive():
        service = spec.with_(source=None).build()
        async with service.open_async_session() as session:
            futures = [
                await session._submit_row(
                    stream.matrix_view()[index : index + 1]
                )
                for index in range(stream.n_windows)
            ]
            return [await future for future in futures]

    per_window = asyncio.run(drive())
    return {"q": [answers["q"] for answers in per_window]}


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_ingest_throughput(benchmark, results_dir):
    rng = np.random.default_rng(3)
    alphabet = EventAlphabet.numbered(N_TYPES)
    stream = IndicatorStream(
        alphabet, rng.random((N_WINDOWS, N_TYPES)) < 0.4
    )
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "replay.csv")
        from repro.io import write_indicator_csv

        write_indicator_csv(stream, path)
        spec = _spec(path)

        # -- bit-identity: connector == in-memory == hand-rolled -------
        connector = benchmark.pedantic(
            lambda: spec.build().run(), rounds=1, iterations=1
        )
        in_memory = spec.with_(source=None).build().run(stream)
        assert np.array_equal(
            connector.perturbed.matrix_view(),
            in_memory.perturbed.matrix_view(),
        )
        handrolled = _handrolled(path, spec)
        connector_answers = [
            bool(value) for value in connector.answers["q"].detections
        ]
        bit_identical = connector_answers == handrolled["q"]
        assert bit_identical

        # -- throughput: interleaved rounds, median paired ratio -------
        paired = []
        connector_times, handrolled_times = [], []
        for _ in range(_ROUNDS):
            _, connector_seconds = _timed(lambda: spec.build().run())
            _, handrolled_seconds = _timed(
                lambda: _handrolled(path, spec)
            )
            connector_times.append(connector_seconds)
            handrolled_times.append(handrolled_seconds)
            paired.append(handrolled_seconds / connector_seconds)
        speedup = paired_speedup(paired)

        table = ResultTable(
            ["path", "seconds", "windows_per_second"],
            title=f"file-source ingestion over {N_WINDOWS} windows",
        )
        for name, seconds in [
            ("connector run()", median(connector_times)),
            ("hand-rolled submit loop", median(handrolled_times)),
        ]:
            table.add_row(
                path=name,
                seconds=round(seconds, 4),
                windows_per_second=round(N_WINDOWS / seconds),
            )
        emit(table, results_dir, "ingest_throughput")

        emit_json(
            results_dir,
            "ingest",
            {
                "n_windows": N_WINDOWS,
                "connector_seconds": median(connector_times),
                "handrolled_seconds": median(handrolled_times),
                "speedup": speedup,
                **ratio_spread("speedup", paired),
            },
            rows=table.rows,
            gates={
                "ingest_bit_identity": {
                    "floor": 1.0,
                    "value": 1.0 if bit_identical else 0.0,
                },
                "connector_vs_handrolled": {
                    "floor": SPEEDUP_FLOOR,
                    "value": speedup,
                },
            },
        )
        benchmark.extra_info["speedup"] = speedup
        assert speedup >= SPEEDUP_FLOOR, (
            f"connector ingestion only {speedup:.2f}x the "
            f"hand-rolled loop (rounds: {[f'{r:.2f}' for r in paired]})"
        )
