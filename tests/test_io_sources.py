"""Tests for repro.io sources: registry, streaming, offsets, skip."""

import asyncio
import json

import numpy as np
import pytest

from repro.io import (
    CsvSource,
    JsonlSource,
    MemorySource,
    QueueSource,
    ReplaySource,
    SyntheticSource,
    read_indicator_csv,
    register_source,
    registered_sources,
    resolve_source,
    write_indicator_csv,
)
from repro.io.registry import resolve_sink
from repro.io.sources import assemble_rows
from repro.service.registry import UnknownSpecError
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)


@pytest.fixture
def stream():
    rng = np.random.default_rng(13)
    return IndicatorStream(ALPHABET, rng.random((80, 5)) < 0.4)


@pytest.fixture
def csv_path(stream, tmp_path):
    path = str(tmp_path / "stream.csv")
    write_indicator_csv(stream, path)
    return path


def materialized(source):
    return source.bind(ALPHABET).indicator_stream()


class TestRegistry:
    def test_builtin_sources_registered(self):
        for name in (
            "memory", "csv", "jsonl", "synthetic", "replay", "queue",
        ):
            assert name in registered_sources()

    def test_unknown_source_lists_registered_names(self):
        with pytest.raises(UnknownSpecError) as excinfo:
            resolve_source("kafka:trips")
        message = str(excinfo.value)
        assert "unknown source spec 'kafka'" in message
        for name in registered_sources():
            assert name in message

    def test_source_object_passes_through(self, stream):
        source = MemorySource(stream)
        assert resolve_source(source) is source

    def test_options_rejected_on_objects(self, stream):
        with pytest.raises(ValueError, match="spec strings"):
            resolve_source(MemorySource(stream), p=0.5)

    def test_third_party_source_registers(self, stream):
        @register_source("test-constant")
        class ConstantSource(MemorySource):
            """Every window contains every event type."""

            def __init__(self, n=3):
                super().__init__(np.ones((n, len(ALPHABET)), dtype=bool))

        try:
            out = materialized(resolve_source("test-constant:2"))
            assert out.n_windows == 2
            assert out.matrix_view().all()
        finally:
            from repro.io.registry import _SOURCES

            del _SOURCES._factories["test-constant"]
            del _SOURCES._canonical["test-constant"]


class TestCsvSource:
    def test_round_trips_written_stream(self, stream, csv_path):
        assert materialized(CsvSource(csv_path)) == stream
        assert materialized(resolve_source(f"csv:{csv_path}")) == stream

    def test_read_indicator_csv_round_trip(self, stream, csv_path):
        assert read_indicator_csv(csv_path) == stream

    def test_rows_are_streamed_not_materialized(self, stream, csv_path):
        source = CsvSource(csv_path).bind(ALPHABET)
        rows = source.rows()
        first = next(rows)
        assert first.dtype == bool
        assert np.array_equal(first, stream.matrix_view()[0])
        assert source.offset == 1  # only what was consumed

    def test_alphabet_mismatch_rejected(self, csv_path):
        with pytest.raises(ValueError, match="alphabet"):
            CsvSource(csv_path).bind(EventAlphabet.numbered(3))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            CsvSource(str(path)).bind(ALPHABET)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("e1,e2,e3,e4,e5\n1,0\n")
        source = CsvSource(str(path)).bind(ALPHABET)
        with pytest.raises(ValueError, match="columns"):
            list(source.rows())

    def test_non_integer_value_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("e1,e2,e3,e4,e5\n1,0,x,0,1\n")
        source = CsvSource(str(path)).bind(ALPHABET)
        with pytest.raises(ValueError, match="non-integer"):
            list(source.rows())

    def test_non_binary_value_rejected(self, tmp_path):
        path = tmp_path / "two.csv"
        path.write_text("e1,e2,e3,e4,e5\n1,0,2,0,1\n")
        source = CsvSource(str(path)).bind(ALPHABET)
        with pytest.raises(ValueError, match="0/1"):
            list(source.rows())

    def test_skip_fast_forwards(self, stream, csv_path):
        source = CsvSource(csv_path).bind(ALPHABET).skip(30)
        assert source.offset == 30
        assert source.indicator_stream() == stream.slice_windows(30, 80)
        assert source.offset == stream.n_windows

    def test_skip_after_iteration_rejected(self, csv_path):
        source = CsvSource(csv_path).bind(ALPHABET)
        next(source.rows())
        with pytest.raises(RuntimeError, match="skip"):
            source.skip(1)


class TestJsonlSource:
    def test_reads_arrays_and_objects(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text(
            json.dumps(["e1", "e3"]) + "\n"
            + json.dumps({"types": ["e2"], "answers": {"q": True}}) + "\n"
            + "\n"  # blank lines are skipped
            + json.dumps([]) + "\n"
        )
        out = materialized(JsonlSource(str(path)))
        expected = IndicatorStream.from_window_sets(
            ALPHABET, [["e1", "e3"], ["e2"], []]
        )
        assert out == expected

    def test_unknown_types_ignored_like_the_engine(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text(json.dumps(["e1", "not-an-event"]) + "\n")
        out = materialized(JsonlSource(str(path)))
        assert out == IndicatorStream.from_window_sets(ALPHABET, [["e1"]])

    def test_invalid_json_rejected_with_line(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('["e1"]\n{oops\n')
        source = JsonlSource(str(path)).bind(ALPHABET)
        with pytest.raises(ValueError, match=":2"):
            list(source.rows())

    def test_object_without_types_rejected(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"answers": {}}\n')
        source = JsonlSource(str(path)).bind(ALPHABET)
        with pytest.raises(ValueError, match="types"):
            list(source.rows())

    def test_missing_file_rejected_at_bind(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            JsonlSource(str(tmp_path / "nope.jsonl")).bind(ALPHABET)


class TestSyntheticSource:
    def test_same_spec_same_windows(self):
        one = materialized(resolve_source("synthetic:bernoulli:40:9"))
        two = materialized(resolve_source("synthetic:bernoulli:40:9"))
        assert one == two
        assert one.n_windows == 40

    def test_skip_regenerates_deterministically(self):
        full = materialized(resolve_source("synthetic:bernoulli:40:9"))
        tail = materialized(
            resolve_source("synthetic:bernoulli:40:9").skip(15)
        )
        assert tail == full.slice_windows(15, 40)

    def test_uniform_generator_rate(self):
        dense = materialized(
            resolve_source("synthetic:uniform:200:1", p=0.95)
        )
        assert dense.matrix_view().mean() > 0.8

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="generator"):
            SyntheticSource("gauss", 10, 0)

    def test_seeds_differ(self):
        assert materialized(
            resolve_source("synthetic:bernoulli:40:1")
        ) != materialized(resolve_source("synthetic:bernoulli:40:2"))


class TestReplaySource:
    def test_replays_csv_contents(self, stream, csv_path):
        assert materialized(
            resolve_source(f"replay:{csv_path}:0")
        ) == stream

    def test_rate_paces_emission(self, stream, csv_path):
        import time

        source = ReplaySource(csv_path, rate=1000.0).bind(ALPHABET)
        start = time.perf_counter()
        rows = source.rows()
        for _ in range(20):
            next(rows)
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.018  # ≥ 20 windows / 1000 per second-ish

    def test_skip_does_not_wait(self, stream, csv_path):
        import time

        source = ReplaySource(csv_path, rate=10.0).bind(ALPHABET)
        source.skip(stream.n_windows - 1)
        start = time.perf_counter()
        remaining = list(source.rows())
        assert len(remaining) == 1
        assert time.perf_counter() - start < 5.0  # one delay, not eighty

    def test_negative_rate_rejected(self, csv_path):
        with pytest.raises(ValueError, match="rate"):
            ReplaySource(csv_path, rate=-1.0)


class TestMemorySource:
    def test_accepts_stream_matrix_and_type_sets(self, stream):
        as_stream = materialized(MemorySource(stream))
        as_matrix = materialized(MemorySource(stream.matrix()))
        sets = [stream.window_types(i) for i in range(stream.n_windows)]
        as_sets = materialized(MemorySource(sets))
        assert as_stream == stream
        assert as_matrix == stream
        assert as_sets == stream

    def test_unbound_memory_spec_fails_pointedly(self):
        source = resolve_source("memory").bind(ALPHABET)
        with pytest.raises(ValueError, match="no data"):
            list(source.rows())

    def test_foreign_alphabet_rejected(self, stream):
        with pytest.raises(ValueError, match="alphabet"):
            MemorySource(stream).bind(EventAlphabet.numbered(3))


class TestQueueSource:
    def test_sync_iteration_rejected(self):
        source = QueueSource(asyncio.Queue()).bind(ALPHABET)
        with pytest.raises(TypeError, match="asynchronous"):
            list(source.rows())

    def test_skip_rejected(self):
        with pytest.raises(RuntimeError, match="cannot skip"):
            QueueSource(asyncio.Queue()).skip(3)

    def test_unbound_queue_fails_pointedly(self):
        async def drive():
            source = resolve_source("queue").bind(ALPHABET)
            async for _row in source.arows():
                pass

        with pytest.raises(ValueError, match="no live queue"):
            asyncio.run(drive())

    def test_drains_type_sets_and_rows_until_sentinel(self, stream):
        async def drive():
            queue = asyncio.Queue()
            source = QueueSource(queue).bind(ALPHABET)
            queue.put_nowait(stream.window_types(0))
            queue.put_nowait(stream.matrix_view()[1])
            queue.put_nowait("e1")  # a single type name
            queue.put_nowait(None)
            return [row async for row in source.arows()]

        rows = asyncio.run(drive())
        assert np.array_equal(rows[0], stream.matrix_view()[0])
        assert np.array_equal(rows[1], stream.matrix_view()[1])
        assert np.array_equal(
            rows[2], [True, False, False, False, False]
        )


class TestAssembleRows:
    def test_empty_iterator(self):
        assert assemble_rows(iter([]), 4).shape == (0, 4)

    def test_spans_multiple_blocks(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((10000, 3)) < 0.5
        out = assemble_rows((row for row in matrix), 3)
        assert np.array_equal(out, matrix)

    def test_csv_sink_output_feeds_csv_source(self, stream, tmp_path):
        # The sanitized-egress format is itself a valid source.
        path = str(tmp_path / "released.csv")
        sink = resolve_sink(f"csv:{path}")
        sink.open(alphabet=ALPHABET, query_names=("q",))
        for index in range(stream.n_windows):
            sink.write(index, stream.matrix_view()[index], {"q": False})
        sink.close()
        assert materialized(CsvSource(path)) == stream


class TestColonPaths:
    """Path-taking specs keep colons and numeric names verbatim."""

    def test_csv_path_with_colon_and_numeric_name(self, stream, tmp_path):
        for name in ("we:ird.csv", "2024"):
            path = str(tmp_path / name)
            write_indicator_csv(stream, path)
            assert materialized(resolve_source(f"csv:{path}")) == stream

    def test_replay_path_with_colon_keeps_rate(self, stream, tmp_path):
        path = str(tmp_path / "we:ird.csv")
        write_indicator_csv(stream, path)
        source = resolve_source(f"replay:{path}:250")
        assert source.path == path
        assert source.rate == 250.0
        source_no_rate = resolve_source(f"replay:{path}")
        assert source_no_rate.path == path
        assert source_no_rate.rate == 0.0

    def test_jsonl_sink_path_with_colon(self, stream, tmp_path):
        from repro.io import JsonlSource

        path = str(tmp_path / "out:put.jsonl")
        sink = resolve_sink(f"jsonl:{path}")
        sink.open(alphabet=ALPHABET, query_names=("q",))
        matrix = stream.matrix_view()
        for index in range(stream.n_windows):
            sink.write(index, matrix[index], {"q": False})
        sink.close()
        assert materialized(JsonlSource(path)) == stream


class TestPacedCancellation:
    def test_cancel_during_delay_loses_no_row(self, stream, csv_path):
        import asyncio

        async def go():
            source = ReplaySource(csv_path, rate=200.0).bind(ALPHABET)
            collected = []

            async def consume():
                async for row in source.arows():
                    collected.append(row)

            task = asyncio.ensure_future(consume())
            await asyncio.sleep(0.012)  # mid-stream, likely mid-delay
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            before = len(collected)
            assert source.offset == before
            # Continuing on the SAME source yields every remaining row.
            source.delay = 0.0
            async for row in source.arows():
                collected.append(row)
            return collected

        collected = asyncio.run(go())
        assert len(collected) == stream.n_windows
        assert np.array_equal(np.stack(collected), stream.matrix_view())


class FakeClock:
    """A deterministic stand-in for the pacing clock.

    ``sleep`` overshoots every request by ``jitter`` seconds — the
    scheduler never wakes a real process exactly on time — so a paced
    source that sleeps a *relative* delay per row drifts by one jitter
    per row, while absolute-deadline pacing re-anchors on the grid.
    """

    def __init__(self, jitter=0.0):
        self.now = 100.0
        self.jitter = jitter
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        assert seconds > 0  # the source must not sleep non-positive
        self.sleeps.append(seconds)
        self.now += seconds + self.jitter


class TestAbsoluteDeadlinePacing:
    def drain(self, source, n):
        rows = source.rows()
        return [next(rows) for _ in range(n)]

    def test_jitter_does_not_accumulate(self, csv_path, monkeypatch):
        from repro.io import sources as sources_module

        clock = FakeClock(jitter=0.002)
        monkeypatch.setattr(sources_module, "time", clock)
        source = ReplaySource(csv_path, rate=100.0).bind(ALPHABET)
        self.drain(source, 50)
        elapsed = clock.now - 100.0
        # 50 rows at 10ms: the deadline grid ends at 500ms; only the
        # *last* sleep's jitter is outstanding.  Relative pacing would
        # have accumulated all 50 jitters (600ms total).
        assert elapsed == pytest.approx(50 * 0.01 + 0.002)

    def test_deadlines_stay_on_the_grid(self, csv_path, monkeypatch):
        from repro.io import sources as sources_module

        clock = FakeClock(jitter=0.004)
        monkeypatch.setattr(sources_module, "time", clock)
        source = ReplaySource(csv_path, rate=100.0).bind(ALPHABET)
        self.drain(source, 10)
        # Every sleep targets deadline k*10ms, so after the first full
        # delay each wait is one period minus the previous overshoot.
        assert clock.sleeps[0] == pytest.approx(0.01)
        assert all(
            wait == pytest.approx(0.01 - 0.004)
            for wait in clock.sleeps[1:]
        )

    def test_slow_consumer_emits_immediately_without_sleeping(
        self, csv_path, monkeypatch
    ):
        from repro.io import sources as sources_module

        clock = FakeClock()
        monkeypatch.setattr(sources_module, "time", clock)
        source = ReplaySource(csv_path, rate=100.0).bind(ALPHABET)
        rows = source.rows()
        next(rows)  # sleeps the first full delay
        clock.now += 0.1  # consumer stalls for ten periods
        for _ in range(5):
            next(rows)  # catching up: all overdue, no sleeping
        assert len(clock.sleeps) == 1

    def test_unpaced_source_never_consults_the_clock(
        self, csv_path, monkeypatch
    ):
        from repro.io import sources as sources_module

        class ExplodingClock:
            def monotonic(self):  # pragma: no cover - must not run
                raise AssertionError("unpaced sources must not pace")

            sleep = monotonic

        monkeypatch.setattr(sources_module, "time", ExplodingClock())
        source = ReplaySource(csv_path, rate=0.0).bind(ALPHABET)
        assert len(self.drain(source, 10)) == 10
