"""Tests for repro.core.ppm — the pattern-level PPM machinery."""

import numpy as np
import pytest

from repro.cep.patterns import OR, Pattern
from repro.core.budget import BudgetAllocation
from repro.core.ppm import (
    MultiPatternPPM,
    PatternLevelPPM,
    apply_randomized_response,
)
from repro.core.uniform import UniformPatternPPM
from repro.streams.indicator import EventAlphabet, IndicatorStream


@pytest.fixture
def ppm(private_pattern):
    return PatternLevelPPM(
        private_pattern, BudgetAllocation.uniform(3.0, 3)
    )


class TestApplyRandomizedResponse:
    def test_only_named_columns_touched(self, stream200):
        perturbed = apply_randomized_response(
            stream200, {"e1": 0.5}, rng=0
        )
        assert not np.array_equal(
            perturbed.column("e1"), stream200.column("e1")
        )
        for untouched in ("e2", "e3", "e4", "e5", "e6"):
            assert np.array_equal(
                perturbed.column(untouched), stream200.column(untouched)
            )

    def test_empirical_flip_rate(self, stream200):
        disagreements = 0
        trials = 50
        for seed in range(trials):
            perturbed = apply_randomized_response(
                stream200, {"e1": 0.25}, rng=seed
            )
            disagreements += int(
                (perturbed.column("e1") != stream200.column("e1")).sum()
            )
        rate = disagreements / (trials * stream200.n_windows)
        assert 0.22 < rate < 0.28

    def test_invalid_probability_rejected(self, stream200):
        with pytest.raises(ValueError):
            apply_randomized_response(stream200, {"e1": 0.7}, rng=0)

    def test_unknown_column_raises(self, stream200):
        with pytest.raises(KeyError):
            apply_randomized_response(stream200, {"zz": 0.3}, rng=0)

    def test_deterministic_under_seed(self, stream200):
        a = apply_randomized_response(stream200, {"e1": 0.3}, rng=9)
        b = apply_randomized_response(stream200, {"e1": 0.3}, rng=9)
        assert a == b


class TestPatternLevelPPM:
    def test_requires_element_list(self):
        with pytest.raises(ValueError):
            PatternLevelPPM(
                Pattern("p", OR("a", "b")), BudgetAllocation.uniform(1.0, 2)
            )

    def test_length_mismatch_rejected(self, private_pattern):
        with pytest.raises(ValueError):
            PatternLevelPPM(private_pattern, BudgetAllocation.uniform(1.0, 2))

    def test_epsilon_is_theorem1_sum(self, ppm):
        assert ppm.epsilon == pytest.approx(3.0)
        assert ppm.guarantee.epsilon == pytest.approx(3.0)

    def test_epsilon_by_type_pools_repeats(self):
        # seq(a, b, a): the two a-occurrences pool on one column.
        pattern = Pattern.of_types("rep", "e1", "e2", "e1")
        ppm = PatternLevelPPM(pattern, BudgetAllocation((1.0, 0.5, 2.0)))
        assert ppm.epsilon_by_type() == pytest.approx(
            {"e1": 3.0, "e2": 0.5}
        )

    def test_flip_probability_by_type_range(self, ppm):
        for probability in ppm.flip_probability_by_type().values():
            assert 0.0 < probability <= 0.5

    def test_perturb_touches_only_private_columns(self, ppm, stream200):
        perturbed = ppm.perturb(stream200, rng=1)
        for untouched in ("e4", "e5", "e6"):
            assert np.array_equal(
                perturbed.column(untouched), stream200.column(untouched)
            )

    def test_perturb_missing_elements_rejected(self, ppm):
        small = IndicatorStream(
            EventAlphabet(["e1", "e2"]), np.zeros((2, 2), dtype=bool)
        )
        with pytest.raises(ValueError, match="lacks"):
            ppm.perturb(small)

    def test_answer_uses_perturbed_stream(self, ppm, stream200, target_pattern):
        answers = ppm.answer(stream200, target_pattern, rng=2)
        assert answers.shape == (200,)
        truth = stream200.detect_all(["e2", "e3", "e4"])
        # With a modest budget the answers differ from truth somewhere.
        assert not np.array_equal(answers, truth)

    def test_answer_requires_elements(self, ppm, stream200):
        with pytest.raises(ValueError):
            ppm.answer(stream200, Pattern("t", OR("e1", "e2")), rng=0)

    def test_privacy_statement(self, ppm):
        assert "pattern-level" in ppm.privacy_statement()


class TestMultiPatternPPM:
    @pytest.fixture
    def multi(self, private_pattern):
        other = Pattern.of_types("other", "e4", "e5")
        return MultiPatternPPM(
            [
                UniformPatternPPM(private_pattern, 2.0),
                UniformPatternPPM(other, 4.0),
            ]
        )

    def test_requires_ppms(self):
        with pytest.raises(ValueError):
            MultiPatternPPM([])

    def test_duplicate_patterns_rejected(self, private_pattern):
        with pytest.raises(ValueError):
            MultiPatternPPM(
                [
                    UniformPatternPPM(private_pattern, 1.0),
                    UniformPatternPPM(private_pattern, 2.0),
                ]
            )

    def test_perturbs_union_of_columns(self, multi, stream200):
        perturbed = multi.perturb(stream200, rng=0)
        assert np.array_equal(
            perturbed.column("e6"), stream200.column("e6")
        )
        changed = [
            name
            for name in ("e1", "e2", "e3", "e4", "e5")
            if not np.array_equal(
                perturbed.column(name), stream200.column(name)
            )
        ]
        assert changed  # with these budgets flips happen w.h.p.

    def test_guarantees_per_pattern(self, multi):
        guarantees = multi.guarantees()
        assert len(guarantees) == 2
        assert {g.epsilon for g in guarantees} == {2.0, 4.0}

    def test_epsilon_reports_max(self, multi):
        assert multi.epsilon == 4.0

    def test_overlapping_patterns_compose_independently(
        self, private_pattern, stream200
    ):
        # Section V-A: overlapping patterns get independent PPMs; shared
        # columns just receive more noise.
        overlapping = Pattern.of_types("overlap", "e3", "e4")
        multi = MultiPatternPPM(
            [
                UniformPatternPPM(private_pattern, 100.0),  # ~no noise
                UniformPatternPPM(overlapping, 100.0),
            ]
        )
        perturbed = multi.perturb(stream200, rng=1)
        # Huge budgets: flip probabilities ~0, stream essentially intact.
        assert perturbed == stream200

    def test_deterministic_under_seed(self, multi, stream200):
        assert multi.perturb(stream200, rng=4) == multi.perturb(
            stream200, rng=4
        )
