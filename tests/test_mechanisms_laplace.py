"""Tests for repro.mechanisms.laplace — the Laplace mechanism."""

import numpy as np
import pytest

from repro.mechanisms.laplace import LaplaceMechanism, laplace_noise


class TestLaplaceNoise:
    def test_deterministic_under_seed(self):
        assert laplace_noise(1, 2.0) == laplace_noise(1, 2.0)

    def test_scale_rejected_non_positive(self):
        with pytest.raises(Exception):
            laplace_noise(0, 0.0)

    def test_vector_shape(self):
        noise = laplace_noise(0, 1.0, size=(3, 4))
        assert noise.shape == (3, 4)

    def test_empirical_mean_near_zero(self):
        noise = laplace_noise(3, 1.0, size=20000)
        assert abs(noise.mean()) < 0.05

    def test_empirical_scale(self):
        # Var of Laplace(b) is 2b^2.
        noise = laplace_noise(4, 2.0, size=50000)
        assert 7.0 < noise.var() < 9.0


class TestLaplaceMechanism:
    def test_scale_formula(self):
        mechanism = LaplaceMechanism(2.0, sensitivity=4.0)
        assert mechanism.scale == 2.0

    def test_default_sensitivity_one(self):
        assert LaplaceMechanism(1.0).scale == 1.0

    def test_invalid_epsilon(self):
        with pytest.raises(Exception):
            LaplaceMechanism(0.0)

    def test_invalid_sensitivity(self):
        with pytest.raises(Exception):
            LaplaceMechanism(1.0, sensitivity=-1.0)

    def test_release_adds_noise(self):
        mechanism = LaplaceMechanism(1.0)
        released = mechanism.release(10.0, rng=0)
        assert released != 10.0

    def test_release_deterministic_under_seed(self):
        mechanism = LaplaceMechanism(1.0)
        assert mechanism.release(10.0, rng=5) == mechanism.release(10.0, rng=5)

    def test_release_vector(self):
        mechanism = LaplaceMechanism(1.0)
        released = mechanism.release_vector([1.0, 2.0, 3.0], rng=0)
        assert released.shape == (3,)

    def test_high_epsilon_is_accurate(self):
        mechanism = LaplaceMechanism(1000.0)
        released = mechanism.release_vector([5.0] * 100, rng=1)
        assert np.allclose(released, 5.0, atol=0.1)

    def test_release_binary_thresholds(self):
        mechanism = LaplaceMechanism(1000.0)
        binary = mechanism.release_binary([0, 1, 0, 1], rng=2)
        assert binary.dtype == bool
        assert list(binary) == [False, True, False, True]

    def test_low_epsilon_flips_bits(self):
        mechanism = LaplaceMechanism(0.01)
        binary = mechanism.release_binary([0] * 1000, rng=3)
        # With scale 100, about half the zeros cross the 0.5 threshold.
        assert 0.3 < binary.mean() < 0.7

    def test_repr_mentions_epsilon(self):
        assert "epsilon=2" in repr(LaplaceMechanism(2.0))
