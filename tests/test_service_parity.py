"""Parity: the declarative service reproduces the imperative path.

The acceptance bar of the service API: for every registered mechanism
spec × executor spec, ``ServiceSpec.from_json(...).build().run(...)``
is bit-identical to assembling the same configuration imperatively on a
``CEPEngine`` — same seed, same answers, same perturbed stream, same
``last_trace`` for the sequential schedulers.
"""

import numpy as np
import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.event_level import EventLevelRR
from repro.baselines.landmark import LandmarkPrivacy, landmarks_from_pattern
from repro.baselines.user_level import UserLevelRR
from repro.cep.engine import CEPEngine
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.adaptive import AdaptivePatternPPM
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.runtime.executors import (
    BatchExecutor,
    ChunkedExecutor,
    ShardedExecutor,
)
from repro.service import ServiceSpec, StreamService
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.events import Event
from repro.streams.windows import TumblingWindows

ALPHABET = ("e1", "e2", "e3", "e4", "e5")
SEED = 11
PRIVATE = Pattern.of_types("private", "e1", "e2")
TARGET = Pattern.of_types("target", "e2", "e3")


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(5)
    return IndicatorStream(
        EventAlphabet(ALPHABET), rng.random((120, 5)) < 0.45
    )


@pytest.fixture(scope="module")
def history():
    rng = np.random.default_rng(6)
    return IndicatorStream(
        EventAlphabet(ALPHABET), rng.random((60, 5)) < 0.45
    )


def landmark_mask(stream):
    return [
        bool(flag)
        for flag in landmarks_from_pattern(stream, ["e1", "e2"])
    ]


#: (mechanism spec, options factory, imperative equivalent factory) —
#: the seven registered mechanism specs of the paper's evaluation.
MECHANISMS = [
    (
        "uniform-ppm",
        lambda stream, history: {"epsilon": 2.0},
        lambda stream, history: MultiPatternPPM(
            [UniformPatternPPM(PRIVATE, 2.0)]
        ),
    ),
    (
        "adaptive-ppm",
        lambda stream, history: {"epsilon": 2.0},
        lambda stream, history: MultiPatternPPM(
            [AdaptivePatternPPM.fit(PRIVATE, 2.0, history, [TARGET])]
        ),
    ),
    (
        "bd",
        lambda stream, history: {"epsilon": 1.0, "w": 10},
        lambda stream, history: BudgetDistribution(1.0, 10),
    ),
    (
        "ba",
        lambda stream, history: {"epsilon": 1.0, "w": 10},
        lambda stream, history: BudgetAbsorption(1.0, 10),
    ),
    (
        "landmark",
        lambda stream, history: {
            "epsilon": 1.0,
            "landmarks": landmark_mask(stream),
        },
        lambda stream, history: LandmarkPrivacy(
            1.0, landmarks=landmarks_from_pattern(stream, ["e1", "e2"])
        ),
    ),
    (
        "event-rr",
        lambda stream, history: {"epsilon": 0.5},
        lambda stream, history: EventLevelRR(0.5),
    ),
    (
        "user-rr",
        lambda stream, history: {"epsilon": 60.0},
        lambda stream, history: UserLevelRR(60.0),
    ),
]

#: (executor spec, imperative equivalent factory) — all three runtime
#: execution strategies.
EXECUTORS = [
    ("batch", BatchExecutor),
    ("chunked:32", lambda: ChunkedExecutor(32)),
    ("sharded:thread:2", lambda: ShardedExecutor(2, backend="thread")),
]


def imperative_report(stream, mechanism, executor):
    engine = CEPEngine(EventAlphabet(ALPHABET))
    engine.register_private_pattern(PRIVATE)
    engine.register_query(ContinuousQuery("q", TARGET))
    engine.attach_mechanism(mechanism)
    return engine, engine.process_indicators(
        stream, rng=SEED, executor=executor
    )


def service_for(mechanism_spec, options, executor_spec, history):
    spec = ServiceSpec(
        alphabet=ALPHABET,
        patterns=[PRIVATE],
        queries=[("q", TARGET)],
        mechanism=mechanism_spec,
        mechanism_options=options,
        executor=executor_spec,
        seed=SEED,
    )
    # The acceptance bar: the run is reproducible from the JSON blob.
    rebuilt = ServiceSpec.from_json(spec.to_json())
    assert rebuilt == spec
    return StreamService(rebuilt, history=history)


def assert_reports_identical(report, expected):
    assert set(report.answers) == set(expected.answers)
    for name in expected.answers:
        assert np.array_equal(
            report.answers[name].detections,
            expected.answers[name].detections,
        )
        assert np.array_equal(
            report.true_answers[name].detections,
            expected.true_answers[name].detections,
        )
    assert np.array_equal(
        report.perturbed.matrix_view(), expected.perturbed.matrix_view()
    )


def assert_traces_identical(mechanism, expected_mechanism):
    trace = getattr(mechanism, "last_trace", None)
    expected = getattr(expected_mechanism, "last_trace", None)
    assert (trace is None) == (expected is None)
    if trace is None:
        return
    assert trace.published == expected.published
    assert trace.publication_budgets == expected.publication_budgets
    assert trace.dissimilarity_budgets == expected.dissimilarity_budgets


@pytest.mark.parametrize(
    "executor_spec, executor_factory",
    EXECUTORS,
    ids=[executor for executor, _factory in EXECUTORS],
)
@pytest.mark.parametrize(
    "mechanism_spec, options_factory, imperative_factory",
    MECHANISMS,
    ids=[mechanism for mechanism, _o, _i in MECHANISMS],
)
class TestServiceRunsBitIdenticalToImperativeEngine:
    def test_run_indicators_parity(
        self,
        stream,
        history,
        mechanism_spec,
        options_factory,
        imperative_factory,
        executor_spec,
        executor_factory,
    ):
        service = service_for(
            mechanism_spec,
            options_factory(stream, history),
            executor_spec,
            history,
        )
        report = service.run(stream)
        engine, expected = imperative_report(
            stream, imperative_factory(stream, history), executor_factory()
        )
        assert_reports_identical(report, expected)
        assert_traces_identical(service.mechanism, engine.mechanism)


class TestEventStreamParity:
    """Raw events through the spec's declarative window grammar."""

    @pytest.fixture(scope="class")
    def events(self):
        rng = np.random.default_rng(12)
        events = []
        for window in range(40):
            base = window * 10.0
            for offset, name in enumerate(ALPHABET):
                if rng.random() < 0.5:
                    events.append(Event(name, base + offset))
        return EventStream(events)

    def test_tumbling_window_run_matches_process_events(self, events):
        spec = ServiceSpec(
            alphabet=ALPHABET,
            patterns=[PRIVATE],
            queries=[("q", TARGET)],
            mechanism="uniform-ppm",
            mechanism_options={"epsilon": 2.0},
            window="tumbling:10",
            seed=SEED,
        )
        report = ServiceSpec.from_json(spec.to_json()).build().run(events)
        engine = CEPEngine(EventAlphabet(ALPHABET))
        engine.register_private_pattern(PRIVATE)
        engine.register_query(ContinuousQuery("q", TARGET))
        engine.attach_mechanism(MultiPatternPPM([UniformPatternPPM(PRIVATE, 2.0)]))
        expected = engine.process_events(
            events, TumblingWindows(10.0, emit_empty=True), rng=SEED
        )
        assert_reports_identical(report, expected)

    def test_run_without_window_rejected(self, events):
        spec = ServiceSpec(
            alphabet=ALPHABET,
            queries=[("q", TARGET)],
            seed=SEED,
        )
        with pytest.raises(ValueError, match="window"):
            spec.build().run(events)

    def test_explicit_window_overrides_spec(self, events):
        spec = ServiceSpec(
            alphabet=ALPHABET,
            patterns=[PRIVATE],
            queries=[("q", TARGET)],
            mechanism="uniform-ppm",
            mechanism_options={"epsilon": 2.0},
            seed=SEED,
        )
        report = spec.build().run(
            events, window=TumblingWindows(10.0, emit_empty=True)
        )
        via_spec = spec.with_(window="tumbling:10").build().run(events)
        assert_reports_identical(report, via_spec)


class TestRunSeedPolicy:
    def test_rng_argument_overrides_spec_seed(self, stream, history):
        service = service_for("uniform-ppm", {"epsilon": 2.0}, "batch", None)
        seeded = service.run(stream)
        overridden = service.run(stream, rng=SEED + 1)
        reseeded = service.run(stream, rng=SEED)
        assert_reports_identical(reseeded, seeded)
        assert not np.array_equal(
            overridden.perturbed.matrix_view(),
            seeded.perturbed.matrix_view(),
        )

    def test_type_set_source_matches_indicator_source(self, stream, history):
        service = service_for("uniform-ppm", {"epsilon": 2.0}, "batch", None)
        type_sets = [
            stream.window_types(index) for index in range(stream.n_windows)
        ]
        assert_reports_identical(
            service.run(type_sets), service.run(stream)
        )
