"""Tests for repro.core.correlation — Section V-C proxy discovery."""

import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.core.correlation import (
    augment_private_pattern,
    discover_relevant_events,
    event_pattern_correlations,
    leakage_after_protection,
    phi_coefficient,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream


@pytest.fixture
def proxy_stream():
    """A stream where e4 is a near-perfect proxy for seq(e1, e2).

    e1, e2 are independent coins; e4 copies the conjunction (with a few
    flips); e3 is independent noise.
    """
    rng = np.random.default_rng(5)
    n = 800
    e1 = rng.random(n) < 0.6
    e2 = rng.random(n) < 0.6
    detection = e1 & e2
    noise = rng.random(n) < 0.05
    e4 = detection ^ noise
    e3 = rng.random(n) < 0.5
    matrix = np.column_stack([e1, e2, e3, e4])
    return IndicatorStream(EventAlphabet(["e1", "e2", "e3", "e4"]), matrix)


@pytest.fixture
def private_pattern_12():
    return Pattern.of_types("p", "e1", "e2")


class TestPhiCoefficient:
    def test_identical_vectors(self):
        vector = np.array([True, False, True, True])
        assert phi_coefficient(vector, vector) == pytest.approx(1.0)

    def test_complementary_vectors(self):
        vector = np.array([True, False, True, False])
        assert phi_coefficient(vector, ~vector) == pytest.approx(-1.0)

    def test_independent_vectors_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.random(5000) < 0.5
        b = rng.random(5000) < 0.5
        assert abs(phi_coefficient(a, b)) < 0.05

    def test_constant_vector_gives_zero(self):
        constant = np.ones(10, dtype=bool)
        varying = np.array([True, False] * 5)
        assert phi_coefficient(constant, varying) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            phi_coefficient(np.ones(3, dtype=bool), np.ones(4, dtype=bool))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            phi_coefficient(np.zeros(0, dtype=bool), np.zeros(0, dtype=bool))

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        a = rng.random(500) < 0.3
        b = rng.random(500) < 0.7
        assert phi_coefficient(a, b) == pytest.approx(phi_coefficient(b, a))


class TestEventPatternCorrelations:
    def test_proxy_detected_as_strongly_correlated(
        self, proxy_stream, private_pattern_12
    ):
        correlations = event_pattern_correlations(
            proxy_stream, private_pattern_12
        )
        assert correlations["e4"] > 0.8
        assert abs(correlations["e3"]) < 0.1

    def test_own_elements_correlate(self, proxy_stream, private_pattern_12):
        correlations = event_pattern_correlations(
            proxy_stream, private_pattern_12
        )
        assert correlations["e1"] > 0.3
        assert correlations["e2"] > 0.3

    def test_requires_element_list(self, proxy_stream):
        from repro.cep.patterns import OR

        with pytest.raises(ValueError):
            event_pattern_correlations(
                proxy_stream, Pattern("p", OR("e1", "e2"))
            )


class TestDiscovery:
    def test_discovers_only_the_proxy(self, proxy_stream, private_pattern_12):
        report = discover_relevant_events(
            proxy_stream, private_pattern_12, threshold=0.3
        )
        assert report.proxy_types() == ["e4"]
        assert report.proxies[0].correlation > 0.8

    def test_threshold_filters(self, proxy_stream, private_pattern_12):
        strict = discover_relevant_events(
            proxy_stream, private_pattern_12, threshold=0.99
        )
        assert strict.proxy_types() == []

    def test_max_proxies_caps(self, proxy_stream, private_pattern_12):
        report = discover_relevant_events(
            proxy_stream, private_pattern_12, threshold=0.0, max_proxies=1
        )
        assert len(report.proxies) == 1
        assert report.proxies[0].event_type == "e4"  # strongest first

    def test_declared_elements_never_reported(
        self, proxy_stream, private_pattern_12
    ):
        report = discover_relevant_events(
            proxy_stream, private_pattern_12, threshold=0.0
        )
        assert "e1" not in report.proxy_types()
        assert "e2" not in report.proxy_types()

    def test_invalid_threshold(self, proxy_stream, private_pattern_12):
        with pytest.raises(Exception):
            discover_relevant_events(
                proxy_stream, private_pattern_12, threshold=1.5
            )


class TestAugmentation:
    def test_augmented_pattern_includes_proxies(
        self, proxy_stream, private_pattern_12
    ):
        report = discover_relevant_events(
            proxy_stream, private_pattern_12, threshold=0.3
        )
        augmented = augment_private_pattern(private_pattern_12, report)
        assert augmented.elements == ("e1", "e2", "e4")
        assert augmented.name == "p+proxies"

    def test_no_proxies_returns_same_pattern(
        self, proxy_stream, private_pattern_12
    ):
        report = discover_relevant_events(
            proxy_stream, private_pattern_12, threshold=0.99
        )
        assert augment_private_pattern(private_pattern_12, report) is (
            private_pattern_12
        )

    def test_report_pattern_mismatch_rejected(
        self, proxy_stream, private_pattern_12
    ):
        report = discover_relevant_events(
            proxy_stream, Pattern.of_types("other", "e3"), threshold=0.0
        )
        with pytest.raises(ValueError):
            augment_private_pattern(private_pattern_12, report)

    def test_augmentation_dilutes_budget(self, proxy_stream, private_pattern_12):
        # Protecting the proxy grows m, so the same ε spreads thinner —
        # the trade-off Section V-C implies.
        from repro.core.uniform import UniformPatternPPM

        report = discover_relevant_events(
            proxy_stream, private_pattern_12, threshold=0.3
        )
        augmented = augment_private_pattern(private_pattern_12, report)
        original_ppm = UniformPatternPPM(private_pattern_12, 3.0)
        augmented_ppm = UniformPatternPPM(augmented, 3.0)
        assert max(
            augmented_ppm.flip_probability_by_type().values()
        ) > max(original_ppm.flip_probability_by_type().values())


class TestLeakageDiagnostic:
    def test_unprotected_proxy_flagged(self, proxy_stream, private_pattern_12):
        residual = leakage_after_protection(
            proxy_stream, private_pattern_12, ["e1", "e2"]
        )
        assert list(residual)[0] == "e4"
        assert residual["e4"] > 0.8

    def test_protecting_proxy_removes_flag(
        self, proxy_stream, private_pattern_12
    ):
        residual = leakage_after_protection(
            proxy_stream, private_pattern_12, ["e1", "e2", "e4"]
        )
        assert "e4" not in residual
        assert all(value < 0.1 for value in residual.values())
