"""Tests for the w-event DP baselines (BD and BA)."""

import numpy as np
import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.w_event import WEventMechanism
from repro.streams.indicator import EventAlphabet, IndicatorStream


class _ZeroBudget(WEventMechanism):
    """A scheduler that never grants publication budget (edge cases)."""

    mechanism_name = "zero"

    def _publication_budget(self, t, trace, state):
        return 0.0


@pytest.fixture
def indicator_stream():
    rng = np.random.default_rng(11)
    alphabet = EventAlphabet.numbered(5)
    return IndicatorStream(alphabet, rng.random((80, 5)) < 0.3)


@pytest.mark.parametrize("mechanism_cls", [BudgetDistribution, BudgetAbsorption])
class TestCommonBehaviour:
    def test_output_same_shape(self, mechanism_cls, indicator_stream):
        mechanism = mechanism_cls(1.0, w=10)
        released = mechanism.perturb(indicator_stream, rng=0)
        assert released.n_windows == indicator_stream.n_windows
        assert released.alphabet == indicator_stream.alphabet

    def test_deterministic_under_seed(self, mechanism_cls, indicator_stream):
        mechanism = mechanism_cls(1.0, w=10)
        a = mechanism.perturb(indicator_stream, rng=5)
        b = mechanism.perturb(indicator_stream, rng=5)
        assert a == b

    def test_perturbs_every_column(self, mechanism_cls, indicator_stream):
        # Unlike the pattern-level PPMs, the stream baselines damage the
        # whole alphabet at tight budgets.
        mechanism = mechanism_cls(0.5, w=10)
        released = mechanism.perturb(indicator_stream, rng=1)
        changed = sum(
            not np.array_equal(
                released.column(name), indicator_stream.column(name)
            )
            for name in indicator_stream.alphabet
        )
        assert changed == len(indicator_stream.alphabet)

    def test_high_budget_tracks_data(self, mechanism_cls, indicator_stream):
        mechanism = mechanism_cls(500.0, w=4)
        released = mechanism.perturb(indicator_stream, rng=2)
        agreement = (
            released.matrix_view() == indicator_stream.matrix_view()
        ).mean()
        assert agreement > 0.8

    def test_trace_recorded(self, mechanism_cls, indicator_stream):
        mechanism = mechanism_cls(1.0, w=10)
        mechanism.perturb(indicator_stream, rng=0)
        trace = mechanism.last_trace
        assert trace is not None
        assert len(trace.published) == indicator_stream.n_windows

    def test_w_event_budget_invariant(self, mechanism_cls, indicator_stream):
        # In any sliding window of w timestamps, the total spend
        # (publications + dissimilarity shares) must not exceed ε.
        epsilon, w = 1.0, 10
        mechanism = mechanism_cls(epsilon, w=w)
        mechanism.perturb(indicator_stream, rng=3)
        assert mechanism.last_trace.max_window_spend(w) <= epsilon + 1e-9

    def test_budget_invariant_across_seeds(self, mechanism_cls, indicator_stream):
        epsilon, w = 2.0, 5
        mechanism = mechanism_cls(epsilon, w=w)
        for seed in range(5):
            mechanism.perturb(indicator_stream, rng=seed)
            assert mechanism.last_trace.max_window_spend(w) <= epsilon + 1e-9

    def test_reusable_across_streams(self, mechanism_cls, indicator_stream):
        mechanism = mechanism_cls(1.0, w=10)
        first = mechanism.perturb(indicator_stream, rng=0)
        second = mechanism.perturb(indicator_stream, rng=0)
        assert first == second  # internal state fully reset

    def test_invalid_parameters(self, mechanism_cls, indicator_stream):
        with pytest.raises(Exception):
            mechanism_cls(0.0, w=10)
        with pytest.raises(Exception):
            mechanism_cls(1.0, w=0)


class TestAccountingEdgeCases:
    """w-event accounting at its boundaries (skips, no-release, windows)."""

    def test_skipped_timestamps_still_charge_dissimilarity(self):
        # A timestamp with zero publication budget never publishes, but
        # the private dissimilarity estimate is still bought: every
        # timestamp owes ε₁/w, publications or not.
        epsilon, w, n = 2.0, 5, 12
        mechanism = _ZeroBudget(epsilon, w=w)
        releaser = mechanism.online_releaser(3, rng=0, horizon=n)
        releaser.step_block(np.ones((n, 3)))
        assert releaser.trace.published == [False] * n
        assert releaser.trace.publication_budgets == [0.0] * n
        assert releaser.trace.dissimilarity_budgets == [
            epsilon / 2.0 / w
        ] * n
        assert releaser.trace.max_window_spend(w) == pytest.approx(
            epsilon / 2.0 / w * w
        )

    def test_no_budget_first_release_is_data_independent(self):
        # With nothing released yet and no budget, the output must be
        # the 0.5 vector whatever the data — releasing anything else
        # would leak without spending budget.
        mechanism = _ZeroBudget(1.0, w=4)
        for row in (np.zeros((1, 3)), np.ones((1, 3))):
            releaser = mechanism.online_releaser(3, rng=0, horizon=4)
            released = releaser.step_block(row)
            assert np.array_equal(released, np.full((1, 3), 0.5))

    @pytest.mark.parametrize(
        "mechanism_cls", [BudgetDistribution, BudgetAbsorption]
    )
    def test_window_spend_accessors_agree(
        self, mechanism_cls, indicator_stream
    ):
        # The O(n) prefix-sum accessors must agree with naive slicing.
        epsilon, w = 1.5, 7
        mechanism = mechanism_cls(epsilon, w=w)
        mechanism.perturb(indicator_stream, rng=6)
        trace = mechanism.last_trace
        n = len(trace.published)
        naive = [
            sum(trace.publication_budgets[start : min(start + w, n)])
            + sum(trace.dissimilarity_budgets[start : min(start + w, n)])
            for start in range(n)
        ]
        for start in (0, 1, n // 2, n - 1):
            assert trace.spent_in_window(start, w) == pytest.approx(
                naive[start], abs=1e-12
            )
        assert trace.max_window_spend(w) == pytest.approx(
            max(naive), abs=1e-12
        )
        # Out-of-range starts spend nothing.
        assert trace.spent_in_window(n + 3, w) == 0.0

    def test_empty_trace_spends_nothing(self):
        from repro.baselines.w_event import ReleaseTrace

        trace = ReleaseTrace()
        assert trace.max_window_spend(5) == 0.0
        assert trace.spent_in_window(0, 5) == 0.0


class TestBudgetDistributionSpecifics:
    def test_publication_budget_halves_remaining(self, indicator_stream):
        mechanism = BudgetDistribution(2.0, w=10)
        mechanism.perturb(indicator_stream, rng=0)
        budgets = [
            b for b in mechanism.last_trace.publication_budgets if b > 0
        ]
        # First publication gets ε_2/2 = ε/4.
        assert budgets[0] == pytest.approx(0.5)

    def test_max_single_publication_budget(self):
        assert BudgetDistribution(4.0, w=10).max_single_publication_budget == 1.0


class TestBudgetAbsorptionSpecifics:
    def test_nominal_budget_is_eps2_over_w(self, indicator_stream):
        mechanism = BudgetAbsorption(2.0, w=10)
        mechanism.perturb(indicator_stream, rng=0)
        budgets = [
            b for b in mechanism.last_trace.publication_budgets if b > 0
        ]
        nominal = 1.0 / 10.0  # ε_2/w
        # Every publication budget is an integer multiple of the nominal.
        for budget in budgets:
            assert budget / nominal == pytest.approx(round(budget / nominal))

    def test_absorption_capped_at_eps2(self, indicator_stream):
        mechanism = BudgetAbsorption(2.0, w=10)
        mechanism.perturb(indicator_stream, rng=0)
        assert max(mechanism.last_trace.publication_budgets) <= 1.0 + 1e-9

    def test_max_single_publication_budget(self):
        assert BudgetAbsorption(4.0, w=10).max_single_publication_budget == 2.0

    def test_nullification_blocks_following_publications(self):
        # A constant-then-jump stream forces an absorbing publication;
        # the following nullified timestamps must not publish.
        alphabet = EventAlphabet(["a"])
        matrix = np.zeros((30, 1), dtype=bool)
        matrix[15:] = True
        stream = IndicatorStream(alphabet, matrix)
        mechanism = BudgetAbsorption(1.0, w=10)
        mechanism.perturb(stream, rng=4)
        trace = mechanism.last_trace
        nominal = 0.5 / 10.0
        for t, budget in enumerate(trace.publication_budgets):
            if budget > nominal:
                absorbed_units = int(round(budget / nominal))
                following = trace.publication_budgets[
                    t + 1 : t + absorbed_units
                ]
                assert all(b == 0.0 for b in following)
