"""Tests for repro.experiments.ablations."""

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.taxi import TaxiConfig
from repro.experiments.ablations import (
    sweep_alpha,
    sweep_conversion_mode,
    sweep_history_size,
    sweep_overlap,
    sweep_pattern_length,
    sweep_step_size,
)


class TestSweepAlpha:
    def test_rows_cover_grid(self, tiny_workload):
        table = sweep_alpha(
            tiny_workload, 2.0, (0.2, 0.8), n_trials=1, rng=0
        )
        assert len(table) == 4  # 2 alphas x 2 mechanisms
        assert set(table.column("alpha")) == {0.2, 0.8}

    def test_precision_recall_reported(self, tiny_workload):
        table = sweep_alpha(tiny_workload, 2.0, (0.5,), n_trials=1, rng=0)
        for row in table:
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0


class TestSweepPatternLength:
    def test_lengths_covered(self):
        table = sweep_pattern_length(
            (1, 3),
            2.0,
            base_config=SyntheticConfig(n_windows=120, n_history_windows=80),
            mechanisms=("uniform",),
            n_trials=1,
            rng=0,
        )
        assert set(table.column("pattern_length")) == {1, 3}

    def test_longer_patterns_cost_more_quality(self):
        # Theorem 1: the same ε is split over more elements, so each
        # element is noisier and detection degrades.
        table = sweep_pattern_length(
            (1, 5),
            1.0,
            base_config=SyntheticConfig(n_windows=300, n_history_windows=100),
            mechanisms=("uniform",),
            n_trials=3,
            rng=0,
        )
        rows = {row["pattern_length"]: row["mre"] for row in table}
        assert rows[5] > rows[1] - 0.02


class TestSweepOverlap:
    def test_zero_overlap_is_cheap_for_pattern_level(self):
        # Without overlap area the protected columns carry no target
        # signal; the only residual cost is noise-induced false
        # positives on the (empty) overlap query.
        table = sweep_overlap(
            (0.0,),
            2.0,
            base_config=TaxiConfig(n_taxis=15, n_steps=60),
            mechanisms=("uniform",),
            n_trials=1,
            rng=0,
        )
        assert table.rows[0]["mre"] < 0.2

    def test_overlap_increases_cost(self):
        table = sweep_overlap(
            (0.0, 1.0),
            1.0,
            base_config=TaxiConfig(n_taxis=20, n_steps=80),
            mechanisms=("uniform",),
            n_trials=2,
            rng=0,
        )
        rows = {row["overlap"]: row["mre"] for row in table}
        assert rows[1.0] > rows[0.0]


class TestSweepConversionMode:
    def test_rows_cover_modes_and_reference(self, tiny_workload):
        table = sweep_conversion_mode(
            tiny_workload, (2.0,), mechanisms=("bd",), n_trials=1, rng=0
        )
        modes = set(table.column("mode"))
        assert modes == {"worst_case", "nominal", "native"}

    def test_pattern_level_unaffected_by_mode(self, tiny_workload):
        table = sweep_conversion_mode(
            tiny_workload, (2.0,), mechanisms=("bd",), n_trials=1, rng=0
        )
        native = table.filter(mode="native")
        assert set(native.column("mechanism")) == {"uniform", "adaptive"}

    def test_nominal_not_harsher_than_worst_case(self, tiny_workload):
        table = sweep_conversion_mode(
            tiny_workload, (2.0,), mechanisms=("bd",), n_trials=2, rng=0
        )
        worst = table.filter(mode="worst_case", mechanism="bd").rows[0]["mre"]
        nominal = table.filter(mode="nominal", mechanism="bd").rows[0]["mre"]
        assert nominal <= worst + 0.05


class TestSweepStepSize:
    def test_reports_convergence(self, tiny_workload):
        table = sweep_step_size(tiny_workload, 2.0, (1.0, 8.0))
        assert set(table.columns) >= {"multiplier", "fitted_q", "iterations"}
        assert len(table) == 2

    def test_fitted_quality_at_least_uniform(self, tiny_workload):
        from repro.core.quality_model import AnalyticQualityEstimator
        from repro.core.budget import BudgetAllocation

        pattern = tiny_workload.most_overlapping_private()
        estimator = AnalyticQualityEstimator(
            tiny_workload.history, pattern, tiny_workload.target_patterns
        )
        uniform_q = estimator.evaluate(
            BudgetAllocation.uniform(2.0, len(pattern.elements))
        ).q
        table = sweep_step_size(tiny_workload, 2.0, (1.0,))
        assert table.rows[0]["fitted_q"] >= uniform_q - 1e-9


class TestSweepHistorySize:
    def test_sizes_covered(self, tiny_workload):
        table = sweep_history_size(
            tiny_workload, 2.0, (20, 100), n_trials=1, rng=0
        )
        assert table.column("history_windows") == [20, 100]

    def test_size_capped_at_available_history(self, tiny_workload):
        table = sweep_history_size(
            tiny_workload, 2.0, (10_000,), n_trials=1, rng=0
        )
        assert table.rows[0]["history_windows"] == tiny_workload.history.n_windows

    def test_invalid_size_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            sweep_history_size(tiny_workload, 2.0, (0,), n_trials=1)
