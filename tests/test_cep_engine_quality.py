"""Tests for EngineReport quality measurement and requirements."""

import pytest

from repro.cep.engine import CEPEngine, QualityRequirement
from repro.cep.queries import ContinuousQuery
from repro.core.uniform import UniformPatternPPM


@pytest.fixture
def engine(alphabet6, private_pattern, target_pattern):
    engine = CEPEngine(alphabet6)
    engine.register_private_pattern(private_pattern)
    engine.register_query(ContinuousQuery("q", target_pattern))
    return engine


class TestMeasuredQuality:
    def test_perfect_without_mechanism(self, engine, stream200):
        report = engine.process_indicators(stream200)
        quality = report.measured_quality()
        assert quality.q == pytest.approx(1.0)
        assert report.measured_mre() == pytest.approx(0.0)

    def test_degrades_with_mechanism(self, engine, stream200, private_pattern):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 0.5))
        report = engine.process_indicators(stream200, rng=1)
        assert report.measured_mre() > 0.05

    def test_alpha_weighting(self, engine, stream200, private_pattern):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 1.0))
        report = engine.process_indicators(stream200, rng=1)
        precision_only = report.measured_quality(alpha=1.0)
        recall_only = report.measured_quality(alpha=0.0)
        assert precision_only.q == pytest.approx(precision_only.precision)
        assert recall_only.q == pytest.approx(recall_only.recall)


class TestMeetsRequirement:
    def test_no_cap_always_met(self, engine, stream200, private_pattern):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 0.2))
        report = engine.process_indicators(stream200, rng=1)
        assert report.meets_requirement(QualityRequirement())

    def test_strict_cap_fails_at_tight_budget(
        self, engine, stream200, private_pattern
    ):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 0.2))
        report = engine.process_indicators(stream200, rng=1)
        assert not report.meets_requirement(
            QualityRequirement(max_mre=0.01)
        )

    def test_loose_cap_met_at_large_budget(
        self, engine, stream200, private_pattern
    ):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 50.0))
        report = engine.process_indicators(stream200, rng=1)
        assert report.meets_requirement(QualityRequirement(max_mre=0.05))

    def test_engine_requirement_round_trip(
        self, engine, stream200, private_pattern
    ):
        requirement = QualityRequirement(alpha=0.5, max_mre=0.9)
        engine.set_quality_requirement(requirement)
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 2.0))
        report = engine.process_indicators(stream200, rng=1)
        assert report.meets_requirement(engine.quality_requirement)
