"""Tests for repro.streams.indicator — the windowed binary reduction."""

import numpy as np
import pytest

from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows


class TestEventAlphabet:
    def test_order_and_lookup(self):
        alphabet = EventAlphabet(["a", "b", "c"])
        assert alphabet.index("b") == 1
        assert list(alphabet) == ["a", "b", "c"]
        assert len(alphabet) == 3

    def test_contains(self):
        alphabet = EventAlphabet(["a"])
        assert "a" in alphabet
        assert "z" not in alphabet

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError, match="z"):
            EventAlphabet(["a"]).index("z")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            EventAlphabet(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EventAlphabet([])

    def test_numbered(self):
        alphabet = EventAlphabet.numbered(3)
        assert list(alphabet) == ["e1", "e2", "e3"]

    def test_numbered_custom_prefix(self):
        assert list(EventAlphabet.numbered(2, prefix="x")) == ["x1", "x2"]

    def test_equality_and_hash(self):
        assert EventAlphabet(["a", "b"]) == EventAlphabet(["a", "b"])
        assert EventAlphabet(["a", "b"]) != EventAlphabet(["b", "a"])
        assert hash(EventAlphabet(["a"])) == hash(EventAlphabet(["a"]))

    def test_indices(self):
        alphabet = EventAlphabet(["a", "b", "c"])
        assert alphabet.indices(["c", "a"]) == [2, 0]


class TestConstruction:
    def test_from_window_sets(self):
        alphabet = EventAlphabet(["a", "b"])
        stream = IndicatorStream.from_window_sets(
            alphabet, [{"a"}, {"a", "b"}, set()]
        )
        assert stream.n_windows == 3
        assert stream.contains(0, "a")
        assert not stream.contains(0, "b")
        assert stream.contains(1, "b")

    def test_strict_rejects_unknown_types(self):
        alphabet = EventAlphabet(["a"])
        with pytest.raises(KeyError):
            IndicatorStream.from_window_sets(alphabet, [{"z"}])

    def test_non_strict_ignores_unknown_types(self):
        alphabet = EventAlphabet(["a"])
        stream = IndicatorStream.from_window_sets(
            alphabet, [{"z", "a"}], strict=False
        )
        assert stream.contains(0, "a")

    def test_from_event_windows(self):
        events = EventStream([Event("a", 0.0), Event("b", 12.0)])
        windows = TumblingWindows(10.0).assign(events)
        alphabet = EventAlphabet(["a", "b"])
        stream = IndicatorStream.from_event_windows(alphabet, windows)
        assert stream.contains(0, "a") and not stream.contains(0, "b")
        assert stream.contains(1, "b")

    def test_zero_one_matrix_accepted(self):
        stream = IndicatorStream(
            EventAlphabet(["a"]), np.array([[0], [1]])
        )
        assert stream.contains(1, "a")

    def test_non_binary_matrix_rejected(self):
        with pytest.raises(ValueError):
            IndicatorStream(EventAlphabet(["a"]), np.array([[2]]))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            IndicatorStream(
                EventAlphabet(["a", "b"]), np.zeros((3, 3), dtype=bool)
            )

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            IndicatorStream(EventAlphabet(["a"]), np.zeros(3, dtype=bool))

    def test_empty_window_sets(self):
        stream = IndicatorStream.from_window_sets(EventAlphabet(["a"]), [])
        assert stream.n_windows == 0


class TestImmutability:
    def test_matrix_returns_copy(self, stream200):
        matrix = stream200.matrix()
        matrix[:] = False
        assert stream200.matrix().any()

    def test_matrix_view_read_only(self, stream200):
        with pytest.raises(ValueError):
            stream200.matrix_view()[0, 0] = True

    def test_constructor_copies_input(self):
        matrix = np.ones((2, 1), dtype=bool)
        stream = IndicatorStream(EventAlphabet(["a"]), matrix)
        matrix[0, 0] = False
        assert stream.contains(0, "a")


class TestDetection:
    def test_detect_all_is_containment(self, stream200):
        detected = stream200.detect_all(["e1", "e2"])
        expected = stream200.column("e1") & stream200.column("e2")
        assert np.array_equal(detected, expected)

    def test_single_element_detection(self, stream200):
        assert np.array_equal(
            stream200.detect_all(["e3"]), stream200.column("e3")
        )

    def test_empty_pattern_rejected(self, stream200):
        with pytest.raises(ValueError):
            stream200.detect_all([])

    def test_detection_count(self, stream200):
        count = stream200.detection_count(["e1"])
        assert count == int(stream200.column("e1").sum())

    def test_unknown_element_raises(self, stream200):
        with pytest.raises(KeyError):
            stream200.detect_all(["nope"])


class TestTransforms:
    def test_flip_changes_exactly_one_bit(self, stream200):
        flipped = stream200.flip(5, "e2")
        difference = stream200.matrix_view() != flipped.matrix_view()
        assert difference.sum() == 1
        assert difference[5, stream200.alphabet.index("e2")]

    def test_flip_is_involutive(self, stream200):
        assert stream200.flip(0, "e1").flip(0, "e1") == stream200

    def test_restrict_projects_columns(self, stream200):
        projected = stream200.restrict(["e3", "e1"])
        assert list(projected.alphabet) == ["e3", "e1"]
        assert np.array_equal(
            projected.column("e3"), stream200.column("e3")
        )

    def test_slice_windows(self, stream200):
        sliced = stream200.slice_windows(10, 20)
        assert sliced.n_windows == 10
        assert np.array_equal(
            sliced.matrix_view(), stream200.matrix_view()[10:20]
        )

    def test_concatenate(self, stream200):
        both = stream200.concatenate(stream200)
        assert both.n_windows == 400

    def test_concatenate_alphabet_mismatch(self, stream200):
        other = IndicatorStream(
            EventAlphabet(["x"]), np.zeros((1, 1), dtype=bool)
        )
        with pytest.raises(ValueError):
            stream200.concatenate(other)

    def test_split_partitions(self, stream200):
        history, evaluation = stream200.split(0.25)
        assert history.n_windows == 50
        assert evaluation.n_windows == 150
        assert history.concatenate(evaluation) == stream200

    def test_split_bad_fraction(self, stream200):
        with pytest.raises(ValueError):
            stream200.split(1.5)


class TestAccessors:
    def test_window_types(self):
        alphabet = EventAlphabet(["a", "b"])
        stream = IndicatorStream.from_window_sets(alphabet, [{"b"}])
        assert stream.window_types(0) == frozenset({"b"})

    def test_occurrence_rates(self):
        alphabet = EventAlphabet(["a", "b"])
        stream = IndicatorStream.from_window_sets(
            alphabet, [{"a"}, {"a", "b"}]
        )
        rates = stream.occurrence_rates()
        assert rates["a"] == 1.0
        assert rates["b"] == 0.5

    def test_occurrence_rates_empty_stream(self):
        stream = IndicatorStream.from_window_sets(EventAlphabet(["a"]), [])
        assert stream.occurrence_rates() == {"a": 0.0}

    def test_equality(self, stream200):
        same = IndicatorStream(stream200.alphabet, stream200.matrix())
        assert same == stream200
