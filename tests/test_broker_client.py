"""Tests for the resilient client: retry policy and stream commands.

The :class:`RetryPolicy` tests run entirely under injected ``sleep`` /
``clock`` callables — no wall-clock sleeps — and pin the policy's
three promises: the capped exponential schedule is exact, seeded
jitter is deterministic run to run, and no sleep ever crosses the
deadline.  The :class:`BrokerClient` tests drive the real wire path
against the in-process fake, including transparent recovery from an
injected connection reset and the dead-letter policy.
"""

import pytest

from repro.broker import BrokerClient, FakeRedisServer, RetryPolicy
from repro.broker.client import RetryBudgetExceeded
from repro.broker.resp import BrokerConnectionError, RespError


class FakeClock:
    """A monotonic clock that advances only when something sleeps."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def sleep(self, duration):
        self.sleeps.append(duration)
        self.now += duration

    def __call__(self):
        return self.now


def always_failing(log=None):
    errors = []

    def call():
        error = BrokerConnectionError(f"boom {len(errors)}")
        errors.append(error)
        if log is not None:
            log.append(error)
        raise error

    return call, errors


class TestRetrySchedule:
    def test_unjittered_schedule_is_capped_exponential(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.05, multiplier=2.0,
            max_delay=0.3, jitter=0.0,
        )
        assert [policy.delay(i) for i in range(5)] == [
            0.05, 0.1, 0.2, 0.3, 0.3,
        ]
        assert policy.schedule() == [0.05, 0.1, 0.2, 0.3, 0.3]

    def test_run_sleeps_exactly_the_schedule(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.05, multiplier=2.0,
            max_delay=1.0, jitter=0.25, seed=42,
        )
        clock = FakeClock()
        call, _ = always_failing()
        with pytest.raises(RetryBudgetExceeded):
            policy.run(call, sleep=clock.sleep, clock=clock)
        assert clock.sleeps == policy.schedule()

    def test_jitter_is_deterministic_across_runs(self):
        policy = RetryPolicy(attempts=4, jitter=0.5, seed=7)
        clocks = []
        for _ in range(2):
            clock = FakeClock()
            call, _ = always_failing()
            with pytest.raises(RetryBudgetExceeded):
                policy.run(call, sleep=clock.sleep, clock=clock)
            clocks.append(clock.sleeps)
        assert clocks[0] == clocks[1] == policy.schedule()

    def test_jitter_factor_stays_in_bounds(self):
        policy = RetryPolicy(
            attempts=20, base_delay=0.1, multiplier=1.0,
            max_delay=1.0, jitter=0.25, seed=3,
        )
        for slept in policy.schedule():
            assert 0.1 <= slept < 0.1 * 1.25

    def test_different_seeds_differ(self):
        a = RetryPolicy(attempts=4, jitter=0.5, seed=1).schedule()
        b = RetryPolicy(attempts=4, jitter=0.5, seed=2).schedule()
        assert a != b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -1.0},
            {"jitter": -0.1},
            {"multiplier": 0.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryRun:
    def test_returns_result_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise BrokerConnectionError("transient")
            return "ok"

        clock = FakeClock()
        policy = RetryPolicy(attempts=5, jitter=0.0, base_delay=0.05)
        assert policy.run(flaky, sleep=clock.sleep, clock=clock) == "ok"
        assert len(attempts) == 3
        assert clock.sleeps == [0.05, 0.1]

    def test_gives_up_with_last_error_chained(self):
        policy = RetryPolicy(attempts=3, jitter=0.0)
        clock = FakeClock()
        call, errors = always_failing()
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            policy.run(call, sleep=clock.sleep, clock=clock)
        assert len(errors) == 3
        assert excinfo.value.__cause__ is errors[-1]

    def test_never_sleeps_past_deadline(self):
        policy = RetryPolicy(
            attempts=10, base_delay=0.4, multiplier=2.0,
            max_delay=5.0, jitter=0.0,
        )
        clock = FakeClock()
        deadline = 1.0
        call, errors = always_failing()
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            policy.run(
                call, deadline=deadline, sleep=clock.sleep, clock=clock
            )
        # Every sleep ended at or before the deadline: the last one is
        # clamped to exactly the time remaining, never beyond.
        elapsed = 0.0
        for slept in clock.sleeps:
            elapsed += slept
            assert elapsed <= deadline + 1e-9
        assert clock.now <= deadline + 1e-9
        # Once the deadline is reached no further attempt is made.
        assert len(errors) < policy.attempts
        assert excinfo.value.__cause__ is errors[-1]
        assert "deadline" in str(excinfo.value)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def refuse():
            calls.append(1)
            raise RespError("BUSYGROUP already exists")

        policy = RetryPolicy(attempts=5)
        with pytest.raises(RespError):
            policy.run(refuse, sleep=lambda _: None)
        assert len(calls) == 1

    def test_on_retry_hook_sees_attempt_duration_error(self):
        seen = []
        policy = RetryPolicy(attempts=3, jitter=0.0, base_delay=0.05)
        clock = FakeClock()
        call, errors = always_failing()
        with pytest.raises(RetryBudgetExceeded):
            policy.run(
                call,
                sleep=clock.sleep,
                clock=clock,
                on_retry=lambda *args: seen.append(args),
            )
        assert [(a, d) for a, d, _ in seen] == [(0, 0.05), (1, 0.1)]
        assert [e for _, _, e in seen] == errors[:2]


@pytest.fixture
def server():
    with FakeRedisServer() as fake:
        yield fake


def make_client(server, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=4, base_delay=0.01, jitter=0.0)
    )
    return BrokerClient(server.url, **kwargs)


class TestBrokerClient:
    def test_ping_and_deterministic_ids(self, server):
        client = make_client(server)
        assert client.ping()
        assert client.xadd("s", {"row": "01"}) == "1-0"
        assert client.xadd("s", {"row": "10"}) == "2-0"
        assert client.xlen("s") == 2
        assert client.xrange("s") == [
            ("1-0", {"row": "01"}),
            ("2-0", {"row": "10"}),
        ]

    def test_xadd_requires_fields(self, server):
        with pytest.raises(ValueError, match="at least one field"):
            make_client(server).xadd("s", {})

    def test_group_create_swallows_busygroup(self, server):
        client = make_client(server)
        assert client.xgroup_create("s", "g") is True
        assert client.xgroup_create("s", "g") is False

    def test_read_ack_pending_cycle(self, server):
        client = make_client(server)
        client.xgroup_create("s", "g")
        for i in range(3):
            client.xadd("s", {"n": str(i)})
        entries = client.xreadgroup("s", "g", "c0", count=10)
        assert [e[0] for e in entries] == ["1-0", "2-0", "3-0"]
        assert client.xpending("s", "g") == 3
        # Explicit-id read re-delivers this consumer's own pending.
        again = client.xreadgroup("s", "g", "c0", last_id="0-0")
        assert [e[0] for e in again] == ["1-0", "2-0", "3-0"]
        assert client.xack("s", "g", ["1-0", "2-0"]) == 2
        assert client.xpending("s", "g") == 1
        # Drained PEL reads back as an empty list, not None.
        assert client.xreadgroup("s", "g", "c0", last_id="3-0") == []

    def test_blocking_read_returns_none_without_data(self, server):
        client = make_client(server)
        client.xgroup_create("s", "g")
        assert (
            client.xreadgroup("s", "g", "c0", block_ms=50) is None
        )

    def test_xautoclaim_reassigns_pending(self, server):
        client = make_client(server)
        client.xgroup_create("s", "g")
        client.xadd("s", {"n": "0"})
        client.xreadgroup("s", "g", "dead-consumer")
        claimed = client.xautoclaim("s", "g", "c1")
        assert [e[0] for e in claimed] == ["1-0"]

    def test_reset_fault_recovers_transparently(self, server):
        client = make_client(server)
        client.ping()
        server.inject_fault("reset", command="XADD")
        assert client.xadd("s", {"row": "0"}) == "1-0"
        assert client.reconnects == 1
        assert client.retries == 1
        assert server.faults_fired == [("reset", "XADD")]

    def test_nogroup_error_not_retried(self, server):
        client = make_client(server)
        client.xadd("s", {"n": "0"})
        served = server.commands_served
        with pytest.raises(RespError) as excinfo:
            client.xreadgroup("s", "nogroup", "c0")
        assert excinfo.value.code == "NOGROUP"
        assert server.commands_served == served + 1

    def test_budget_exceeded_when_server_gone(self, server):
        client = make_client(
            server,
            retry=RetryPolicy(attempts=2, base_delay=0.01, jitter=0.0),
            connect_timeout=0.3,
        )
        client.ping()
        server.stop()
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            client.ping()
        assert isinstance(excinfo.value.__cause__, BrokerConnectionError)

    def test_dead_letter_moves_and_acks(self, server):
        client = make_client(server)
        client.xgroup_create("s", "g")
        client.xadd("s", {"row": "junk"})
        (entry_id, fields), = client.xreadgroup("s", "g", "c0")
        dead_id = client.dead_letter(
            "s", "g", entry_id, fields, reason="bad row"
        )
        assert dead_id == "1-0"
        assert client.xpending("s", "g") == 0
        assert client.dead_letters == 1
        assert client.xrange("s:dead") == [
            (
                "1-0",
                {"row": "junk", "source_id": "1-0", "reason": "bad row"},
            )
        ]

    def test_on_retry_callback_forwarded(self, server):
        seen = []
        client = make_client(
            server, on_retry=lambda *args: seen.append(args)
        )
        server.inject_fault("reset", command="PING")
        client.ping()
        assert len(seen) == 1
