"""Tests for repro.core.quality_model — analytic vs Monte-Carlo quality."""

import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.quality_model import (
    AnalyticQualityEstimator,
    MonteCarloQualityEstimator,
    baseline_quality,
    combine_flip_probabilities,
    expected_confusion_for_flips,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream


class TestAnalyticEstimator:
    def test_huge_budget_gives_perfect_quality(
        self, stream200, private_pattern, target_pattern
    ):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        quality = estimator.evaluate(BudgetAllocation.uniform(1000.0, 3))
        assert quality.q == pytest.approx(1.0, abs=1e-6)

    def test_more_budget_never_hurts(
        self, stream200, private_pattern, target_pattern
    ):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        qualities = [
            estimator.evaluate(BudgetAllocation.uniform(eps, 3)).q
            for eps in (0.5, 1.0, 2.0, 4.0, 8.0)
        ]
        assert qualities == sorted(qualities)

    def test_recall_expectation_is_exact_hand_computation(self):
        # One target element protected with flip probability p: a positive
        # window stays detected w.p. (1-p), so E[recall] = 1-p exactly.
        alphabet = EventAlphabet(["a"])
        stream = IndicatorStream(alphabet, np.ones((10, 1), dtype=bool))
        pattern = Pattern.of_types("p", "a")
        estimator = AnalyticQualityEstimator(stream, pattern, [pattern])
        allocation = BudgetAllocation((1.0,))
        p = allocation.flip_probabilities()[0]
        quality = estimator.evaluate(allocation)
        assert quality.recall == pytest.approx(1.0 - p)

    def test_disjoint_target_unaffected(self, stream200, target_pattern):
        # Private pattern over columns the target never uses.
        private = Pattern.of_types("disjoint", "e5", "e6")
        estimator = AnalyticQualityEstimator(
            stream200, private, [target_pattern]
        )
        quality = estimator.evaluate(BudgetAllocation.uniform(0.2, 2))
        assert quality.q == pytest.approx(1.0)

    def test_matches_monte_carlo(
        self, stream200, private_pattern, target_pattern
    ):
        allocation = BudgetAllocation.uniform(2.0, 3)
        analytic = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        ).evaluate(allocation)
        monte_carlo = MonteCarloQualityEstimator(
            stream200,
            private_pattern,
            [target_pattern],
            n_trials=400,
            rng=3,
        ).evaluate(allocation)
        assert analytic.precision == pytest.approx(
            monte_carlo.precision, abs=0.03
        )
        assert analytic.recall == pytest.approx(monte_carlo.recall, abs=0.03)

    def test_multiple_targets_micro_average(
        self, stream200, private_pattern
    ):
        t1 = Pattern.of_types("t1", "e2", "e4")
        t2 = Pattern.of_types("t2", "e3", "e5")
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [t1, t2]
        )
        counts = estimator.expected_confusion(BudgetAllocation.uniform(2.0, 3))
        assert counts.total == pytest.approx(2 * stream200.n_windows)

    def test_allocation_length_checked(
        self, stream200, private_pattern, target_pattern
    ):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        with pytest.raises(ValueError):
            estimator.evaluate(BudgetAllocation.uniform(1.0, 2))

    def test_empty_history_rejected(self, alphabet6, private_pattern, target_pattern):
        empty = IndicatorStream(alphabet6, np.zeros((0, 6), dtype=bool))
        with pytest.raises(ValueError):
            AnalyticQualityEstimator(empty, private_pattern, [target_pattern])

    def test_unknown_elements_rejected(self, stream200, private_pattern):
        with pytest.raises(ValueError):
            AnalyticQualityEstimator(
                stream200, private_pattern, [Pattern.of_types("t", "zz")]
            )

    def test_requires_targets(self, stream200, private_pattern):
        with pytest.raises(ValueError):
            AnalyticQualityEstimator(stream200, private_pattern, [])


class TestMonteCarloEstimator:
    def test_deterministic_under_seed(
        self, stream200, private_pattern, target_pattern
    ):
        allocation = BudgetAllocation.uniform(1.0, 3)
        a = MonteCarloQualityEstimator(
            stream200, private_pattern, [target_pattern], n_trials=20, rng=1
        ).evaluate(allocation)
        b = MonteCarloQualityEstimator(
            stream200, private_pattern, [target_pattern], n_trials=20, rng=1
        ).evaluate(allocation)
        assert a.precision == b.precision and a.recall == b.recall

    def test_invalid_trials(self, stream200, private_pattern, target_pattern):
        with pytest.raises(ValueError):
            MonteCarloQualityEstimator(
                stream200, private_pattern, [target_pattern], n_trials=0
            )


class TestCombineFlipProbabilities:
    def test_single_map_passthrough(self):
        assert combine_flip_probabilities([{"a": 0.3}]) == {"a": 0.3}

    def test_independent_composition_formula(self):
        combined = combine_flip_probabilities([{"a": 0.2}, {"a": 0.3}])
        assert combined["a"] == pytest.approx(0.2 * 0.7 + 0.3 * 0.8)

    def test_never_exceeds_half(self):
        combined = combine_flip_probabilities(
            [{"a": 0.5}, {"a": 0.5}, {"a": 0.4}]
        )
        assert combined["a"] <= 0.5 + 1e-12

    def test_disjoint_columns_union(self):
        combined = combine_flip_probabilities([{"a": 0.1}, {"b": 0.2}])
        assert combined == {"a": 0.1, "b": 0.2}

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            combine_flip_probabilities([{"a": 0.7}])


class TestExpectedConfusionForFlips:
    def test_agrees_with_estimator(
        self, stream200, private_pattern, target_pattern
    ):
        allocation = BudgetAllocation.uniform(2.0, 3)
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        expected = estimator.expected_confusion(allocation)
        flips = {
            element: p
            for element, p in zip(
                private_pattern.elements, allocation.flip_probabilities()
            )
        }
        direct = expected_confusion_for_flips(
            stream200, flips, [target_pattern]
        )
        assert direct.tp == pytest.approx(expected.tp)
        assert direct.fp == pytest.approx(expected.fp)

    def test_no_flips_is_ground_truth(self, stream200, target_pattern):
        counts = expected_confusion_for_flips(stream200, {}, [target_pattern])
        assert counts.fp == 0.0 and counts.fn == 0.0


class TestBaselineQuality:
    def test_perfect_by_construction(self, stream200, target_pattern):
        quality = baseline_quality(stream200, [target_pattern])
        assert quality.q == 1.0

    def test_requires_element_lists(self, stream200):
        from repro.cep.patterns import OR

        with pytest.raises(ValueError):
            baseline_quality(stream200, [Pattern("t", OR("e1", "e2"))])
