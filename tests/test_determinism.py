"""End-to-end determinism guarantees.

A reproduction repository must reproduce *itself*: every experiment run
with the same seed yields the same numbers, and distinct seeds yield
distinct randomness.  These tests pin that contract at the highest
level (full Fig. 4 sweeps), where any internal consumer of global RNG
state or dict-ordering-dependent draws would surface.
"""

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import run_fig4_synthetic
from repro.experiments.runner import evaluate_mechanism

SMALL = ExperimentConfig(
    epsilon_grid=(1.0, 4.0),
    mechanisms=("uniform", "adaptive", "bd"),
    n_trials=2,
    seed=77,
)
SMALL_DATA = SyntheticConfig(n_windows=120, n_history_windows=80)


class TestFullRunDeterminism:
    def test_fig4_runs_identically_twice(self):
        first = run_fig4_synthetic(SMALL, SMALL_DATA, n_datasets=2)
        second = run_fig4_synthetic(SMALL, SMALL_DATA, n_datasets=2)
        assert first.table.rows == second.table.rows

    def test_different_seed_different_numbers(self):
        first = run_fig4_synthetic(SMALL, SMALL_DATA, n_datasets=2)
        other_config = ExperimentConfig(
            epsilon_grid=SMALL.epsilon_grid,
            mechanisms=SMALL.mechanisms,
            n_trials=SMALL.n_trials,
            seed=78,
        )
        second = run_fig4_synthetic(other_config, SMALL_DATA, n_datasets=2)
        assert first.table.rows != second.table.rows

    def test_per_cell_determinism(self, tiny_workload):
        first = evaluate_mechanism(
            tiny_workload, "adaptive", 2.0, n_trials=3, rng=5
        )
        second = evaluate_mechanism(
            tiny_workload, "adaptive", 2.0, n_trials=3, rng=5
        )
        assert first.mre == second.mre
        assert first.quality.precision == second.quality.precision

    def test_mechanism_order_does_not_leak_randomness(self, tiny_workload):
        # Evaluating bd before uniform must not change uniform's draws:
        # every cell derives its own child generators.
        lone = evaluate_mechanism(
            tiny_workload, "uniform", 2.0, n_trials=2, rng=9
        )
        evaluate_mechanism(tiny_workload, "bd", 2.0, n_trials=2, rng=9)
        repeated = evaluate_mechanism(
            tiny_workload, "uniform", 2.0, n_trials=2, rng=9
        )
        assert lone.mre == repeated.mre


class TestWorkloadStatistics:
    def test_statistics_table(self, tiny_workload):
        table = tiny_workload.statistics()
        kinds = set(table.column("kind"))
        assert kinds == {"private", "target", "element"}
        for rate in table.column("detection_rate"):
            assert 0.0 <= rate <= 1.0

    def test_pattern_rows_match_detection_counts(self, tiny_workload):
        table = tiny_workload.statistics()
        for row in table.filter(kind="target"):
            pattern = next(
                p
                for p in tiny_workload.target_patterns
                if p.name == row["name"]
            )
            expected = tiny_workload.stream.detection_count(
                list(pattern.elements)
            ) / tiny_workload.stream.n_windows
            assert row["detection_rate"] == pytest.approx(expected)
