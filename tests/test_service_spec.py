"""Tests for repro.service.spec — the declarative service description."""

import dataclasses
import json

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.engine import QualityRequirement
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.service import (
    PatternSpec,
    QualitySpec,
    QuerySpec,
    ServiceSpec,
    UnknownSpecError,
    registered_executors,
    registered_mechanisms,
)
from repro.streams.indicator import EventAlphabet


def small_spec(**overrides) -> ServiceSpec:
    kwargs = dict(
        alphabet=("e1", "e2", "e3", "e4"),
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        executor="batch",
        seed=7,
    )
    kwargs.update(overrides)
    return ServiceSpec(**kwargs)


class TestConstructionNormalization:
    def test_accepts_domain_objects(self):
        spec = ServiceSpec(
            alphabet=EventAlphabet.numbered(4),
            patterns=[Pattern.of_types("p", "e1", "e2")],
            queries=[
                ContinuousQuery("q", Pattern.of_types("t", "e2", "e3"))
            ],
            quality=QualityRequirement(alpha=0.7, max_mre=0.2),
        )
        assert spec.alphabet == ("e1", "e2", "e3", "e4")
        assert spec.patterns == (PatternSpec("p", ("e1", "e2")),)
        assert spec.queries == (
            QuerySpec("q", PatternSpec("t", ("e2", "e3"))),
        )
        assert spec.quality == QualitySpec(alpha=0.7, max_mre=0.2)

    def test_spec_is_frozen(self):
        spec = small_spec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 8

    def test_pattern_outside_alphabet_rejected(self):
        with pytest.raises(ValueError, match="absent from the spec"):
            small_spec(patterns=[("p", ("e1", "e9"))])

    def test_query_outside_alphabet_rejected(self):
        with pytest.raises(ValueError, match="absent from the spec"):
            small_spec(queries=[("q", ("e9",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            small_spec(
                patterns=[("p", ("e1",)), ("p", ("e2",))]
            )
        with pytest.raises(ValueError, match="duplicate"):
            small_spec(queries=[("q", ("e1",)), ("q", ("e2",))])

    def test_non_sequential_pattern_rejected(self):
        from repro.cep.patterns import AND

        pattern = Pattern("p", AND("e1", "e2", "e1"))
        assert pattern.elements is None
        with pytest.raises(ValueError, match="no element list"):
            small_spec(patterns=[pattern])

    def test_bad_seed_rejected(self):
        with pytest.raises(TypeError, match="seed"):
            small_spec(seed="7")
        with pytest.raises(TypeError, match="seed"):
            small_spec(seed=True)

    def test_numpy_integer_seed_coerced(self):
        import numpy as np

        spec = small_spec(seed=np.int64(7))
        assert spec.seed == 7
        assert type(spec.seed) is int
        assert spec == small_spec(seed=7)

    def test_bad_accounting_rejected(self):
        with pytest.raises(ValueError):
            small_spec(accounting=-1.0)

    def test_non_json_option_rejected(self):
        with pytest.raises(TypeError, match="JSON-serializable"):
            small_spec(mechanism_options={"epsilon": object()})

    def test_with_replaces_fields(self):
        spec = small_spec()
        other = spec.with_(seed=9, executor="chunked:64")
        assert other.seed == 9
        assert other.executor == "chunked:64"
        assert other.alphabet == spec.alphabet
        assert spec.seed == 7


class TestUnknownSpecs:
    def test_unknown_mechanism_lists_registered_names(self):
        with pytest.raises(UnknownSpecError) as excinfo:
            small_spec(mechanism="uniform-ppmm")
        message = str(excinfo.value)
        assert "unknown mechanism spec 'uniform-ppmm'" in message
        for name in registered_mechanisms():
            assert name in message

    def test_unknown_executor_lists_registered_names(self):
        with pytest.raises(UnknownSpecError) as excinfo:
            small_spec(executor="scharded:4")
        message = str(excinfo.value)
        assert "unknown executor spec 'scharded'" in message
        for name in registered_executors():
            assert name in message

    def test_unknown_spec_error_is_value_error(self):
        assert issubclass(UnknownSpecError, ValueError)

    def test_unknown_window_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown window spec"):
            small_spec(window="rolling:10")

    def test_malformed_window_args_rejected(self):
        with pytest.raises(ValueError, match="window spec"):
            small_spec(window="tumbling")
        with pytest.raises(ValueError, match="window spec"):
            small_spec(window="sliding:10")


class TestWindowGrammar:
    @pytest.mark.parametrize(
        "spec_string, expected_type",
        [
            ("tumbling:10", "TumblingWindows"),
            ("sliding:10:5", "SlidingWindows"),
            ("count:25", "CountWindows"),
            ("session:3", "SessionWindows"),
        ],
    )
    def test_window_specs_build_assigners(self, spec_string, expected_type):
        assigner = small_spec(window=spec_string).window_assigner()
        assert type(assigner).__name__ == expected_type

    def test_no_window_returns_none(self):
        assert small_spec().window_assigner() is None


class TestJsonRoundTrip:
    def test_round_trip_equality(self):
        spec = small_spec(
            mechanism="bd",
            mechanism_options={"epsilon": 1.0, "w": 10},
            executor="sharded:process:8",
            executor_options={"min_shard_size": 4},
            accounting=12.5,
            quality={"alpha": 0.25, "max_mre": 0.5},
            window="tumbling:10",
        )
        assert ServiceSpec.from_json(spec.to_json()) == spec

    def test_round_trip_through_dict(self):
        spec = small_spec()
        assert ServiceSpec.from_dict(spec.to_dict()) == spec

    def test_json_is_stable_and_loadable(self):
        spec = small_spec()
        document = spec.to_json()
        assert json.loads(document)["mechanism"] == "uniform-ppm"
        assert spec.to_json() == document  # deterministic

    def test_unknown_dict_fields_rejected(self):
        data = small_spec().to_dict()
        data["mechnism"] = "bd"
        with pytest.raises(ValueError, match="unknown fields"):
            ServiceSpec.from_dict(data)

    def test_tuple_options_normalize_to_lists(self):
        spec = small_spec(
            mechanism="landmark",
            mechanism_options={
                "epsilon": 1.0,
                "landmarks": (True, False, True),
            },
        )
        assert spec.mechanism_options["landmarks"] == [True, False, True]
        assert ServiceSpec.from_json(spec.to_json()) == spec


# -- property tests ---------------------------------------------------------


@st.composite
def service_specs(draw):
    n_types = draw(st.integers(min_value=1, max_value=6))
    alphabet = tuple(f"e{i + 1}" for i in range(n_types))

    def patterns(prefix):
        count = draw(st.integers(min_value=0, max_value=3))
        result = []
        for index in range(count):
            elements = draw(
                st.lists(
                    st.sampled_from(alphabet), min_size=1, max_size=4
                )
            )
            result.append((f"{prefix}{index}", tuple(elements)))
        return tuple(result)

    mechanism = draw(
        st.one_of(st.none(), st.sampled_from(sorted(registered_mechanisms())))
    )
    options = {}
    if mechanism is not None:
        options["epsilon"] = draw(
            st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
        )
    executor = draw(
        st.sampled_from(["batch", "chunked:64", "sharded:thread:2"])
    )
    return ServiceSpec(
        alphabet=alphabet,
        patterns=patterns("p"),
        queries=patterns("q"),
        mechanism=mechanism,
        mechanism_options=options,
        executor=executor,
        accounting=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
            )
        ),
        quality=QualitySpec(
            alpha=draw(st.floats(min_value=0.0, max_value=1.0)),
            max_mre=draw(
                st.one_of(
                    st.none(),
                    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
                )
            ),
        ),
        window=draw(st.one_of(st.none(), st.just("tumbling:10"))),
        seed=draw(st.one_of(st.none(), st.integers(0, 2**31))),
    )


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(spec=service_specs())
    def test_from_json_to_json_is_identity(self, spec):
        assert ServiceSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=60, deadline=None)
    @given(spec=service_specs())
    def test_json_form_is_canonical(self, spec):
        assert ServiceSpec.from_json(spec.to_json()).to_json() == spec.to_json()


class TestSourceSinkFields:
    """PR 5: declarative source=/sink= connector fields on the spec."""

    def test_defaults_are_none(self):
        spec = small_spec()
        assert spec.source is None
        assert spec.sink is None
        assert spec.source_options == {}
        assert spec.sink_options == {}

    def test_known_connectors_accepted(self):
        spec = small_spec(
            source="csv:/tmp/stream.csv",
            source_options={},
            sink="metrics",
            sink_options={"alpha": 0.25},
        )
        assert spec.source == "csv:/tmp/stream.csv"
        assert spec.sink == "metrics"

    def test_unknown_source_lists_registered_names(self):
        from repro.io import registered_sources

        with pytest.raises(UnknownSpecError) as excinfo:
            small_spec(source="kafka:trips")
        message = str(excinfo.value)
        assert "unknown source spec 'kafka'" in message
        for name in registered_sources():
            assert name in message

    def test_unknown_sink_lists_registered_names(self):
        from repro.io import registered_sinks

        with pytest.raises(UnknownSpecError) as excinfo:
            small_spec(sink="s3:bucket")
        message = str(excinfo.value)
        assert "unknown sink spec 's3'" in message
        for name in registered_sinks():
            assert name in message

    def test_round_trip_with_connectors(self):
        spec = small_spec(
            source="synthetic:bernoulli:500:3",
            sink="jsonl:/tmp/out.jsonl",
            sink_options={},
            source_options={"p": 0.4},
        )
        assert ServiceSpec.from_json(spec.to_json()) == spec
        assert json.loads(spec.to_json())["source"] == (
            "synthetic:bernoulli:500:3"
        )

    def test_old_json_without_connector_fields_still_loads(self):
        # A PR-4 era spec dict (no source/sink keys) must keep loading.
        data = small_spec().to_dict()
        for key in ("source", "source_options", "sink", "sink_options"):
            del data[key]
        assert ServiceSpec.from_dict(data) == small_spec()

    def test_non_json_connector_options_rejected(self):
        with pytest.raises(TypeError, match="JSON-serializable"):
            small_spec(source="memory", source_options={"fn": object()})
