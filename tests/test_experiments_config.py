"""Tests for repro.experiments.config."""

import pytest

from repro.experiments.config import (
    ALL_MECHANISMS,
    DEFAULT_EPSILON_GRID,
    FIG4_MECHANISMS,
    ExperimentConfig,
)


class TestMechanismSets:
    def test_fig4_set_matches_paper(self):
        assert FIG4_MECHANISMS == (
            "uniform", "adaptive", "bd", "ba", "landmark",
        )

    def test_all_extends_fig4(self):
        assert set(FIG4_MECHANISMS) < set(ALL_MECHANISMS)


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.alpha == 0.5  # the paper's choice
        assert config.epsilon_grid == DEFAULT_EPSILON_GRID
        assert config.conversion_mode == "worst_case"

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            ExperimentConfig(mechanisms=("uniform", "magic"))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(epsilon_grid=())

    def test_non_positive_epsilon_rejected(self):
        with pytest.raises(Exception):
            ExperimentConfig(epsilon_grid=(1.0, 0.0))

    def test_invalid_alpha_rejected(self):
        with pytest.raises(Exception):
            ExperimentConfig(alpha=2.0)

    def test_invalid_trials_rejected(self):
        with pytest.raises(Exception):
            ExperimentConfig(n_trials=0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(conversion_mode="sideways")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(seed=-1)
