"""Tests for repro.streams.extraction — tuple-to-event lifting."""

import itertools

import pytest

from repro.streams.events import DataTuple
from repro.streams.extraction import EventExtractor, extract_events
from repro.streams.stream import DataStream


@pytest.fixture
def gps_stream():
    records = [
        {"timestamp": 0.0, "speed": 10},
        {"timestamp": 1.0, "speed": 80},
        {"timestamp": 2.0, "speed": 20},
        {"timestamp": 3.0, "speed": 90},
    ]
    return DataStream.from_records(records, source="car")


class TestEventExtractor:
    def test_fixed_type_extraction(self, gps_stream):
        extractor = EventExtractor(
            "speeding", predicate=lambda t: t.value("speed") > 50
        )
        events = [
            extractor.extract(t)
            for t in gps_stream
            if extractor.extract(t) is not None
        ]
        assert len(events) == 2
        assert all(e.event_type == "speeding" for e in events)

    def test_no_predicate_accepts_everything(self, gps_stream):
        extractor = EventExtractor("sample")
        assert all(extractor.matches(t) for t in gps_stream)

    def test_callable_type(self, gps_stream):
        extractor = EventExtractor(
            lambda t: f"speed_{t.value('speed') // 50}",
        )
        first = extractor.extract(list(gps_stream)[0])
        assert first.event_type == "speed_0"

    def test_attribute_projection(self, gps_stream):
        extractor = EventExtractor(
            "sample", attributes=lambda t: {"s": t.value("speed")}
        )
        event = extractor.extract(list(gps_stream)[0])
        assert event.attributes == {"s": 10}

    def test_default_carries_payload(self, gps_stream):
        extractor = EventExtractor("sample")
        event = extractor.extract(list(gps_stream)[0])
        assert event.attribute("speed") == 10

    def test_source_preserved(self, gps_stream):
        extractor = EventExtractor("sample")
        assert extractor.extract(list(gps_stream)[0]).source == "car"

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            EventExtractor("")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            EventExtractor(42)  # type: ignore[arg-type]


class TestExtractEvents:
    def test_multiple_extractors_per_tuple(self, gps_stream):
        stream = extract_events(
            gps_stream,
            [
                EventExtractor("sample"),
                EventExtractor(
                    "speeding", predicate=lambda t: t.value("speed") > 50
                ),
            ],
        )
        # 4 samples + 2 speeding events.
        assert len(stream) == 6

    def test_temporal_order_maintained(self, gps_stream):
        stream = extract_events(gps_stream, [EventExtractor("sample")])
        timestamps = stream.timestamps()
        assert timestamps == sorted(timestamps)

    def test_requires_extractors(self, gps_stream):
        with pytest.raises(ValueError):
            extract_events(gps_stream, [])

    def test_limit_bounds_infinite_streams(self):
        def factory():
            return (DataTuple(float(i)) for i in itertools.count())

        stream = DataStream(factory=factory)
        events = extract_events(stream, [EventExtractor("tick")], limit=10)
        assert len(events) == 10

    def test_event_timestamp_equals_tuple_timestamp(self, gps_stream):
        stream = extract_events(gps_stream, [EventExtractor("sample")])
        assert stream[0].timestamp == 0.0
