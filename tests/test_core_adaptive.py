"""Tests for repro.core.adaptive — Algorithm 1."""

import pytest

from repro.cep.patterns import Pattern
from repro.core.adaptive import (
    AdaptivePatternPPM,
    default_step_size,
    fit_allocation,
)
from repro.core.budget import BudgetAllocation
from repro.core.quality_model import AnalyticQualityEstimator
from repro.core.uniform import UniformPatternPPM


class TestDefaultStepSize:
    def test_paper_suggestion(self):
        # Line 2: δε = mε/100.
        assert default_step_size(2.0, 3) == pytest.approx(0.06)


class TestFitAllocation:
    def test_budget_conserved(self, stream200, private_pattern, target_pattern):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        result = fit_allocation(3.0, 3, estimator)
        assert result.allocation.total == pytest.approx(3.0)

    def test_quality_trace_monotone(self, stream200, private_pattern, target_pattern):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        result = fit_allocation(3.0, 3, estimator)
        for earlier, later in zip(result.quality_trace, result.quality_trace[1:]):
            assert later >= earlier

    def test_starves_private_only_elements(
        self, stream200, private_pattern, target_pattern
    ):
        # e1 appears only in the private pattern: noising it is free, so
        # the search should strip its budget and feed e2/e3 (shared with
        # the target).
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        result = fit_allocation(3.0, 3, estimator, max_iterations=300)
        assert result.allocation[0] == pytest.approx(0.0, abs=1e-6)
        assert result.allocation[1] > 1.0
        assert result.allocation[2] > 1.0

    def test_beats_uniform(self, stream200, private_pattern, target_pattern):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        result = fit_allocation(3.0, 3, estimator, max_iterations=300)
        uniform_q = estimator.evaluate(BudgetAllocation.uniform(3.0, 3)).q
        assert result.quality_trace[-1] > uniform_q

    def test_single_element_trivially_converges(
        self, stream200, target_pattern
    ):
        pattern = Pattern.of_types("single", "e2")
        estimator = AnalyticQualityEstimator(
            stream200, pattern, [target_pattern]
        )
        result = fit_allocation(2.0, 1, estimator)
        assert result.converged
        assert result.iterations == 0
        assert result.allocation.epsilons == (2.0,)

    def test_iteration_cap_respected(
        self, stream200, private_pattern, target_pattern
    ):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        result = fit_allocation(
            3.0, 3, estimator, step_size=0.001, max_iterations=5
        )
        assert result.iterations <= 5

    def test_invalid_arguments(self, stream200, private_pattern, target_pattern):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        with pytest.raises(Exception):
            fit_allocation(0.0, 3, estimator)
        with pytest.raises(ValueError):
            fit_allocation(1.0, 0, estimator)
        with pytest.raises(ValueError):
            fit_allocation(1.0, 3, estimator, max_iterations=0)


class TestAdaptivePatternPPM:
    def test_fit_returns_ppm_with_trace(
        self, stream200, private_pattern, target_pattern
    ):
        ppm = AdaptivePatternPPM.fit(
            private_pattern, 3.0, stream200, [target_pattern]
        )
        assert ppm.name == "adaptive"
        assert ppm.fit_result is not None
        assert ppm.fit_result.quality_trace

    def test_guarantee_matches_requested_budget(
        self, stream200, private_pattern, target_pattern
    ):
        ppm = AdaptivePatternPPM.fit(
            private_pattern, 2.0, stream200, [target_pattern]
        )
        assert ppm.guarantee.epsilon == pytest.approx(2.0)

    def test_adaptive_at_least_as_good_as_uniform_on_history(
        self, stream200, private_pattern, target_pattern
    ):
        estimator = AnalyticQualityEstimator(
            stream200, private_pattern, [target_pattern]
        )
        adaptive = AdaptivePatternPPM.fit(
            private_pattern, 3.0, stream200, [target_pattern]
        )
        uniform = UniformPatternPPM(private_pattern, 3.0)
        assert estimator.evaluate(adaptive.allocation).q >= estimator.evaluate(
            uniform.allocation
        ).q

    def test_custom_estimator_factory(
        self, stream200, private_pattern, target_pattern
    ):
        calls = []

        def factory(history, pattern, targets, alpha=0.5):
            calls.append(alpha)
            return AnalyticQualityEstimator(
                history, pattern, targets, alpha=alpha
            )

        AdaptivePatternPPM.fit(
            private_pattern,
            1.0,
            stream200,
            [target_pattern],
            alpha=0.7,
            estimator_factory=factory,
        )
        assert calls == [0.7]

    def test_invalid_alpha(self, stream200, private_pattern, target_pattern):
        with pytest.raises(Exception):
            AdaptivePatternPPM.fit(
                private_pattern, 1.0, stream200, [target_pattern], alpha=1.5
            )
