"""Tests for repro.streams.merge — k-way stream merging."""

import pytest

from repro.streams.events import Event
from repro.streams.merge import (
    interleave_round_robin,
    merge_event_streams,
    partition_by_source,
)
from repro.streams.stream import EventStream


def stream_of(source, timestamps):
    return EventStream(
        [Event(f"{source}-{i}", float(t), source=source) for i, t in enumerate(timestamps)]
    )


class TestMergeEventStreams:
    def test_merges_in_timestamp_order(self):
        merged = merge_event_streams(
            [stream_of("a", [0, 4, 8]), stream_of("b", [1, 5])]
        )
        assert merged.timestamps() == [0.0, 1.0, 4.0, 5.0, 8.0]

    def test_ties_broken_by_stream_position(self):
        merged = merge_event_streams(
            [stream_of("a", [1]), stream_of("b", [1])]
        )
        assert [e.source for e in merged] == ["a", "b"]

    def test_preserves_within_stream_order_on_ties(self):
        stream = EventStream(
            [Event("x", 1.0, source="s"), Event("y", 1.0, source="s")]
        )
        merged = merge_event_streams([stream])
        assert [e.event_type for e in merged] == ["x", "y"]

    def test_result_is_valid_event_stream(self):
        merged = merge_event_streams(
            [stream_of("a", [0, 2]), stream_of("b", [1, 3])]
        )
        assert isinstance(merged, EventStream)
        assert len(merged) == 4

    def test_empty_streams_allowed(self):
        merged = merge_event_streams([EventStream([]), stream_of("a", [1])])
        assert len(merged) == 1

    def test_requires_at_least_one_stream(self):
        with pytest.raises(ValueError):
            merge_event_streams([])

    def test_deterministic(self):
        streams = [stream_of("a", [0, 1, 1]), stream_of("b", [1, 1, 2])]
        first = merge_event_streams(streams)
        second = merge_event_streams(streams)
        assert first == second

    def test_interleave_alias(self):
        streams = [stream_of("a", [0]), stream_of("b", [0])]
        assert interleave_round_robin(streams) == merge_event_streams(streams)


class TestPartitionBySource:
    def test_round_trip(self):
        streams = [stream_of("a", [0, 2]), stream_of("b", [1])]
        merged = merge_event_streams(streams)
        parts = partition_by_source(merged)
        assert set(parts) == {"a", "b"}
        assert len(parts["a"]) == 2
        assert len(parts["b"]) == 1

    def test_sourceless_events_group_under_none(self):
        merged = EventStream([Event("x", 0.0)])
        parts = partition_by_source(merged)
        assert list(parts) == [None]
