"""Unit tests for the decision kernel (repro.runtime.decisions).

Covers the pure scan helpers (the documented accelerator seam), the
ScanConfig grammar, the generator-word elision guarantee for certified
skip runs, the U==0 exact-fallback path, audit mode's disagreement
detection, and the chunked trace storage backing ReleaseTrace.
"""

import numpy as np
import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.landmark import LandmarkPrivacy
from repro.baselines.w_event import ReleaseTrace, TraceColumn
from repro.runtime import decisions as decisions_module
from repro.runtime.decisions import (
    BOUNDARY,
    CANDIDATE,
    CERTAIN_SKIP,
    ScanConfig,
    ScanMarginError,
    classify_decisions,
    decision_thresholds,
    laplace_noise_from_uniforms,
)
from repro.runtime.rng_pool import IndexedRngPool
from repro.service import (
    MechanismContext,
    ServiceSpec,
    build_mechanism_from_spec,
)
from repro.streams.indicator import EventAlphabet

N_TYPES = 4


def constant_matrix(n, value=0.0):
    return np.full((n, N_TYPES), value, dtype=float)


# ---------------------------------------------------------------------------
# ScanConfig
# ---------------------------------------------------------------------------


class TestScanConfig:
    def test_defaults(self):
        config = ScanConfig()
        assert config.mode == "margin"
        assert config.margin == 1e-9
        assert config.prefetch_min == 32
        assert config.enabled and not config.audit

    def test_modes(self):
        assert not ScanConfig(mode="off").enabled
        assert ScanConfig(mode="exact").audit
        assert ScanConfig(mode="margin").enabled

    def test_unknown_mode_lists_valid_modes(self):
        with pytest.raises(ValueError, match="margin, exact, off"):
            ScanConfig(mode="speedy")

    def test_invalid_margin_and_prefetch(self):
        with pytest.raises(ValueError, match="margin"):
            ScanConfig(margin=0.0)
        with pytest.raises(ValueError, match="margin"):
            ScanConfig(margin=-1e-9)
        with pytest.raises(ValueError, match="prefetch"):
            ScanConfig(prefetch_min=0)

    def test_coerce(self):
        assert ScanConfig.coerce(None) == ScanConfig()
        assert ScanConfig.coerce("off").mode == "off"
        config = ScanConfig(mode="exact", margin=1e-8)
        assert ScanConfig.coerce(config) is config
        with pytest.raises(TypeError, match="ScanConfig"):
            ScanConfig.coerce(1.5)

    def test_from_options(self):
        assert ScanConfig.from_options(None, None, None) is None
        config = ScanConfig.from_options("exact", 1e-8, 16)
        assert (config.mode, config.margin, config.prefetch_min) == (
            "exact",
            1e-8,
            16,
        )
        partial = ScanConfig.from_options(None, None, 64)
        assert partial.mode == "margin" and partial.prefetch_min == 64


# ---------------------------------------------------------------------------
# Pure scan helpers (the accelerator seam: arrays in, arrays out)
# ---------------------------------------------------------------------------


class TestScanHelpers:
    def test_laplace_noise_replays_numpy_branches(self):
        uniforms = np.array([0.9, 0.5, 0.3, 1e-12])
        noises, needs_exact = laplace_noise_from_uniforms(uniforms, 2.0)
        assert not needs_exact.any()
        np.testing.assert_array_equal(
            noises[:2],
            [-2.0 * np.log(2.0 - 0.9 - 0.9), -2.0 * np.log(1.0)],
        )
        assert noises[2] == 2.0 * np.log(0.3 + 0.3)

    def test_laplace_noise_flags_nonpositive_uniforms(self):
        with np.errstate(all="raise"):  # no log(0) warning may fire
            noises, needs_exact = laplace_noise_from_uniforms(
                np.array([0.0, -1e-9, 0.7]), 1.0
            )
        assert needs_exact.tolist() == [True, True, False]
        assert np.isfinite(noises).all()

    def test_decision_thresholds(self):
        thresholds = decision_thresholds(np.array([2.0, 0.0, -1.0]), 1.0)
        assert thresholds[0] == 0.5
        assert np.isinf(thresholds[1]) and np.isinf(thresholds[2])

    def test_classify_three_ways(self):
        distances = np.array([0.0, 10.0, 1.0, 0.0, 0.0])
        noises = np.zeros(5)
        needs_exact = np.array([False, False, False, True, False])
        thresholds = np.array([1.0, 1.0, 1.0, 1.0, np.inf])
        verdicts = classify_decisions(
            distances, noises, needs_exact, thresholds, 1e-9
        )
        assert verdicts.tolist() == [
            CERTAIN_SKIP,
            CANDIDATE,
            BOUNDARY,  # inside the tolerance band
            BOUNDARY,  # u <= 0: only the real generator reproduces it
            CERTAIN_SKIP,  # zero budget skips whatever the randomness
        ]

    def test_zero_budget_overrides_needs_exact(self):
        verdicts = classify_decisions(
            np.array([5.0]),
            np.array([0.0]),
            np.array([True]),
            np.array([np.inf]),
            1e-9,
        )
        assert verdicts.tolist() == [CERTAIN_SKIP]

    def test_wider_margin_grows_boundary_band(self):
        distances = np.array([0.9999, 1.0001])
        verdicts_tight = classify_decisions(
            distances, np.zeros(2), np.zeros(2, bool), np.ones(2), 1e-9
        )
        verdicts_wide = classify_decisions(
            distances, np.zeros(2), np.zeros(2, bool), np.ones(2), 1e-2
        )
        assert verdicts_tight.tolist() == [CERTAIN_SKIP, CANDIDATE]
        assert verdicts_wide.tolist() == [BOUNDARY, BOUNDARY]


# ---------------------------------------------------------------------------
# Generator-word elision
# ---------------------------------------------------------------------------


def install_generator_counter(releaser):
    """Record every child-generator index the releaser installs."""
    requested = []
    pool = releaser._children
    original = pool.generator

    def counting(index):
        requested.append(index)
        return original(index)

    pool.generator = counting
    return requested


class TestGeneratorElision:
    @pytest.mark.parametrize("cls", [BudgetDistribution, BudgetAbsorption])
    def test_certified_skip_runs_touch_no_generator(self, cls):
        n = 300
        matrix = constant_matrix(n)
        mechanism = cls(1.0, w=20, scan="margin")
        releaser = mechanism.online_releaser(N_TYPES, rng=11, horizon=n)
        requested = install_generator_counter(releaser)
        releaser.step_block(matrix)
        published_rows = [
            t for t in range(n) if releaser.trace.published[t]
        ]
        # Only publishing timestamps install a child generator; every
        # certified-skip timestamp is resolved from the prefetched
        # uniforms alone.
        assert requested == published_rows
        assert len(requested) <= n // 2  # plenty of certified skips

    def test_below_prefetch_blocks_install_generator_per_drawing_row(self):
        # Blocks under prefetch_min get no uniform prefetch: every
        # budget-positive row must install its child generator, so
        # installs strictly exceed the scan path's publication-only set.
        n = 304
        matrix = constant_matrix(n)
        mechanism = BudgetDistribution(1.0, w=20, scan="margin")
        releaser = mechanism.online_releaser(N_TYPES, rng=11, horizon=n)
        requested = install_generator_counter(releaser)
        small = [
            releaser.step_block(matrix[row : row + 8])
            for row in range(0, n, 8)
        ]
        scanned = BudgetDistribution(
            1.0, w=20, scan="margin"
        ).online_releaser(N_TYPES, rng=11, horizon=n)
        assert np.array_equal(np.vstack(small), scanned.step_block(matrix))
        assert len(requested) > len(
            [t for t in range(n) if releaser.trace.published[t]]
        )

    def test_landmark_prepass_hops_regular_rows(self):
        n = 128
        mask = np.zeros(n, dtype=bool)
        mask[[5, 40, 90]] = True
        matrix = constant_matrix(n)
        mechanism = LandmarkPrivacy(
            2.0, landmarks=mask, rho=0.5, scan="margin"
        )
        releaser = mechanism.online_releaser(N_TYPES, rng=3, horizon=n)
        requested = install_generator_counter(releaser)
        releaser.advance_block(matrix)
        # The prepass needs randomness only for landmark timestamps
        # that actually publish; regular rows are hopped entirely.
        assert set(requested) <= {5, 40, 90}
        assert releaser.t == n


# ---------------------------------------------------------------------------
# The U == 0 retry path
# ---------------------------------------------------------------------------


class TestUniformZeroFallback:
    @pytest.mark.parametrize("cls", [BudgetDistribution, BudgetAbsorption])
    def test_zero_uniforms_fall_back_to_generator(self, cls, monkeypatch):
        """u <= 0 rows are BOUNDARY: numpy's laplace retries internally,
        so only the real generator path reproduces the draw — all scan
        modes must agree while consuming the same patched uniforms."""
        monkeypatch.setattr(
            IndexedRngPool,
            "first_uniforms",
            lambda self, start, stop: np.zeros(stop - start),
        )
        n = 64
        rng = np.random.default_rng(5)
        matrix = (rng.random((n, N_TYPES)) < 0.5).astype(float)
        outputs = {}
        for scan in ("off", "margin", "exact"):
            mechanism = cls(2.0, w=8, scan=scan)
            releaser = mechanism.online_releaser(
                N_TYPES, rng=17, horizon=n
            )
            outputs[scan] = releaser.step_block(matrix)
        np.testing.assert_array_equal(outputs["margin"], outputs["off"])
        np.testing.assert_array_equal(outputs["exact"], outputs["off"])


# ---------------------------------------------------------------------------
# Audit mode
# ---------------------------------------------------------------------------


class TestAuditMode:
    def test_bogus_certification_raises_scan_margin_error(
        self, monkeypatch
    ):
        """scan=exact re-verifies every certified skip with the scalar
        arithmetic; a classifier that certifies publishing rows as
        skips must be caught, not silently bulk-applied."""

        def certify_everything(
            distances, noises, needs_exact, thresholds, margin
        ):
            return np.full(
                np.shape(thresholds), CERTAIN_SKIP, dtype=np.uint8
            )

        monkeypatch.setattr(
            decisions_module, "classify_decisions", certify_everything
        )
        n = 64
        matrix = constant_matrix(n)
        matrix[40:] = 1.0  # a drift the schedule must publish
        mechanism = BudgetDistribution(8.0, w=4, scan="exact")
        releaser = mechanism.online_releaser(N_TYPES, rng=0, horizon=n)
        with pytest.raises(ScanMarginError, match="certified as a skip"):
            releaser.step_block(matrix)

    def test_honest_scan_passes_audit(self):
        n = 96
        rng = np.random.default_rng(8)
        matrix = (rng.random((n, N_TYPES)) < 0.4).astype(float)
        mechanism = BudgetDistribution(4.0, w=6, scan="exact")
        releaser = mechanism.online_releaser(N_TYPES, rng=2, horizon=n)
        baseline = BudgetDistribution(4.0, w=6, scan="off")
        expected = baseline.online_releaser(
            N_TYPES, rng=2, horizon=n
        ).step_block(matrix)
        np.testing.assert_array_equal(releaser.step_block(matrix), expected)


# ---------------------------------------------------------------------------
# Spec grammar integration
# ---------------------------------------------------------------------------


ALPHABET = ("e1", "e2", "e3", "e4")


def build_context():
    spec = ServiceSpec(
        alphabet=ALPHABET,
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="bd",
        seed=7,
    )
    return MechanismContext(
        alphabet=EventAlphabet(ALPHABET),
        private_patterns=spec.pattern_objects(),
    )


class TestSpecGrammar:
    def test_scan_keys_reach_the_mechanism(self):
        context = build_context()
        mechanism = build_mechanism_from_spec(
            "bd:epsilon=1.0,w=10,scan=off", context
        )
        assert mechanism.scan_config.mode == "off"
        mechanism = build_mechanism_from_spec(
            "ba:epsilon=0.5,w=8,scan=exact,margin=1e-8,prefetch=16",
            context,
        )
        assert mechanism.scan_config == ScanConfig(
            mode="exact", margin=1e-8, prefetch_min=16
        )

    def test_default_scan_config(self):
        mechanism = build_mechanism_from_spec(
            "bd:epsilon=1.0,w=10", build_context()
        )
        assert mechanism.scan_config == ScanConfig()

    def test_unknown_key_fails_at_parse_time_listing_keys(self):
        with pytest.raises(ValueError, match="valid keys.*scan"):
            build_mechanism_from_spec(
                "bd:epsilon=1.0,w=10,scam=off", build_context()
            )

    def test_unknown_scan_mode_lists_valid_modes(self):
        with pytest.raises(ValueError, match="margin, exact, off"):
            build_mechanism_from_spec(
                "bd:epsilon=1.0,w=10,scan=speedy", build_context()
            )


# ---------------------------------------------------------------------------
# Chunked trace storage
# ---------------------------------------------------------------------------


class TestTraceColumn:
    def test_append_extend_and_accessors(self):
        column = TraceColumn(dtype=np.float64)
        column.append(1.5)
        column.extend([2.5, 3.5])
        column.extend_constant(0.0, 3)
        assert len(column) == 6
        assert column[0] == 1.5 and isinstance(column[0], float)
        assert column[-1] == 0.0
        assert column[1:3] == [2.5, 3.5]
        assert list(column) == [1.5, 2.5, 3.5, 0.0, 0.0, 0.0]

    def test_growth_beyond_initial_chunk(self):
        column = TraceColumn(dtype=bool)
        for i in range(5000):
            column.append(i % 3 == 0)
        assert len(column) == 5000
        assert column[4999] == (4999 % 3 == 0)

    def test_equality(self):
        column = TraceColumn(dtype=np.float64)
        column.extend([1.0, 2.0])
        other = TraceColumn(dtype=np.float64)
        other.extend([1.0, 2.0])
        assert column == [1.0, 2.0]
        assert column == other
        assert column == np.array([1.0, 2.0])
        assert column != [1.0, 2.0, 3.0]

    def test_full_slice_assignment_replaces_content(self):
        # The snapshot-restore path: the restored trace may be shorter.
        column = TraceColumn(dtype=np.float64)
        column.extend([1.0, 2.0, 3.0, 4.0])
        column[:] = [9.0, 8.0]
        assert list(column) == [9.0, 8.0]

    def test_bool_and_asarray(self):
        column = TraceColumn(dtype=bool)
        assert not column
        column.append(True)
        assert column
        np.testing.assert_array_equal(
            np.asarray(column), np.array([True])
        )

    def test_version_bumps_on_every_mutation(self):
        column = TraceColumn(dtype=np.float64)
        seen = {column.version}
        column.append(1.0)
        seen.add(column.version)
        column.extend([2.0])
        seen.add(column.version)
        column.extend_constant(0.0, 2)
        seen.add(column.version)
        column[:] = [5.0]
        seen.add(column.version)
        assert len(seen) == 5


class TestSpendPrefixCache:
    def make_trace(self):
        trace = ReleaseTrace()
        for budget in (0.5, 0.0, 0.25):
            trace.published.append(budget > 0)
            trace.publication_budgets.append(budget)
            trace.dissimilarity_budgets.append(0.1)
        return trace

    def test_prefix_is_cached_until_mutation(self):
        trace = self.make_trace()
        first = trace._spend_prefix()
        assert trace._spend_prefix() is first  # cache hit
        trace.publication_budgets.append(0.75)
        trace.dissimilarity_budgets.append(0.1)
        trace.published.append(True)
        second = trace._spend_prefix()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_spent_in_window_reflects_mutations(self):
        trace = self.make_trace()
        assert trace.spent_in_window(0, 3) == pytest.approx(
            0.5 + 0.25 + 3 * 0.1
        )
        trace.published.append(True)
        trace.publication_budgets.append(1.0)
        trace.dissimilarity_budgets.append(0.1)
        assert trace.spent_in_window(2, 2) == pytest.approx(
            0.25 + 1.0 + 2 * 0.1
        )
