"""Tests for repro.service.service — the StreamService lifecycle."""

import asyncio

import numpy as np
import pytest

from repro.baselines.conversion import BudgetConverter
from repro.mechanisms.accountant import BudgetExceededError
from repro.service import (
    MechanismContext,
    ServiceSpec,
    StreamService,
    build_executor_from_spec,
    build_mechanism_from_spec,
    register_executor,
    register_mechanism,
    registered_executors,
    registered_mechanisms,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = ("e1", "e2", "e3", "e4")


def spec_for(**overrides) -> ServiceSpec:
    kwargs = dict(
        alphabet=ALPHABET,
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        seed=7,
    )
    kwargs.update(overrides)
    return ServiceSpec(**kwargs)


@pytest.fixture
def stream():
    rng = np.random.default_rng(3)
    return IndicatorStream(
        EventAlphabet(ALPHABET), rng.random((80, 4)) < 0.45
    )


class TestConstruction:
    def test_accepts_spec_dict_and_json(self, stream):
        spec = spec_for()
        reference = StreamService(spec).run(stream)
        for form in (spec.to_dict(), spec.to_json()):
            report = StreamService(form).run(stream)
            assert np.array_equal(
                report.perturbed.matrix_view(),
                reference.perturbed.matrix_view(),
            )

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="ServiceSpec"):
            StreamService(42)

    def test_spec_build_equals_constructor(self, stream):
        spec = spec_for()
        assert np.array_equal(
            spec.build().run(stream).perturbed.matrix_view(),
            StreamService(spec).run(stream).perturbed.matrix_view(),
        )

    def test_unprotected_service_passes_stream_through(self, stream):
        spec = spec_for(mechanism=None, mechanism_options={})
        report = spec.build().run(stream)
        assert report.perturbed == stream
        assert spec.build().mechanism is None

    def test_executor_options_forwarded(self):
        service = spec_for(
            executor="chunked",
            executor_options={"chunk_size": 16, "materialize": False},
        ).build()
        assert service.executor.chunk_size == 16
        assert service.executor.materialize is False

    def test_sharded_executor_spec_forms(self):
        service = spec_for(
            executor="sharded:process:3",
            executor_options={"n_shards": 6, "min_shard_size": 2},
        ).build()
        executor = service.executor
        assert executor.backend == "process"
        assert executor.n_workers == 3
        assert executor.n_shards == 6
        assert executor.min_shard_size == 2
        # The process backend ships shards zero-copy by default.
        assert executor.zero_copy is None
        assert executor.uses_zero_copy is True

    def test_sharded_transport_flags(self):
        # ``:copy`` opts a process-backend spec out of shared-memory
        # transport (the debugging escape hatch); ``:zerocopy`` spells
        # the default out loud; threads never use the segment plane.
        copying = build_executor_from_spec("sharded:process:8:copy")
        assert copying.zero_copy is False
        assert copying.uses_zero_copy is False
        explicit = build_executor_from_spec("sharded:zerocopy:process:2")
        assert explicit.zero_copy is True
        assert explicit.uses_zero_copy is True
        threaded = build_executor_from_spec("sharded:thread:2:zerocopy")
        assert threaded.uses_zero_copy is False

    def test_conflicting_sharded_spec_rejected(self):
        with pytest.raises(ValueError, match="two worker counts"):
            build_executor_from_spec("sharded:2:4")
        with pytest.raises(ValueError, match="two backends"):
            build_executor_from_spec("sharded:thread:process")
        with pytest.raises(ValueError, match="two transport flags"):
            build_executor_from_spec("sharded:process:copy:zerocopy")


class TestMechanismFactories:
    def test_adaptive_without_history_is_pointed_error(self):
        spec = spec_for(
            mechanism="adaptive-ppm", mechanism_options={"epsilon": 2.0}
        )
        with pytest.raises(ValueError, match="history"):
            spec.build()

    def test_adaptive_with_history_builds(self, stream):
        spec = spec_for(
            mechanism="adaptive-ppm", mechanism_options={"epsilon": 2.0}
        )
        service = spec.build(history=stream)
        assert service.mechanism.ppms[0].fit_result is not None

    def test_ppm_without_private_patterns_rejected(self):
        spec = spec_for(patterns=())
        with pytest.raises(ValueError, match="private patterns"):
            spec.build()

    def test_exactly_one_budget_source_required(self):
        context = MechanismContext(
            alphabet=EventAlphabet(ALPHABET),
            private_patterns=spec_for().pattern_objects(),
        )
        with pytest.raises(ValueError, match="exactly one"):
            build_mechanism_from_spec("uniform-ppm", context)
        with pytest.raises(ValueError, match="exactly one"):
            build_mechanism_from_spec(
                "uniform-ppm", context, epsilon=1.0, pattern_epsilon=1.0
            )

    def test_bd_pattern_epsilon_converted(self):
        spec = spec_for(
            mechanism="bd",
            mechanism_options={"pattern_epsilon": 2.0, "w": 10},
        )
        mechanism = spec.build().mechanism
        converter = BudgetConverter(2)  # longest private pattern has m=2
        assert mechanism.epsilon == pytest.approx(
            converter.bd_native(2.0, 10)
        )
        assert mechanism.w == 10

    def test_bd_without_w_rejected(self):
        spec = spec_for(mechanism="bd", mechanism_options={"epsilon": 1.0})
        with pytest.raises(ValueError, match="w-event window"):
            spec.build()

    def test_landmark_pattern_epsilon_needs_mask(self):
        spec = spec_for(
            mechanism="landmark",
            mechanism_options={"pattern_epsilon": 2.0},
        )
        with pytest.raises(ValueError, match="landmark mask"):
            spec.build()

    def test_user_rr_pattern_epsilon_needs_horizon(self, stream):
        spec = spec_for(
            mechanism="user-rr",
            mechanism_options={"pattern_epsilon": 2.0},
        )
        with pytest.raises(ValueError, match="horizon"):
            spec.build()
        # The history length is NOT the evaluation horizon; building
        # with history must not silently substitute it.
        with pytest.raises(ValueError, match="horizon"):
            spec.build(history=stream)

    def test_user_rr_explicit_horizon_calibrates_split(self, stream):
        from repro.baselines.conversion import BudgetConverter

        spec = spec_for(
            mechanism="user-rr",
            mechanism_options={
                "pattern_epsilon": 2.0,
                "n_windows": stream.n_windows,
            },
        )
        converter = BudgetConverter(2)
        assert spec.build().mechanism.epsilon == pytest.approx(
            converter.user_level_native(
                2.0, stream.n_windows, len(ALPHABET)
            )
        )

    def test_mechanism_spec_colon_arguments(self, stream):
        # Colon arguments feed the factory positionally: epsilon first.
        via_colon = spec_for(
            mechanism="uniform-ppm:2.0", mechanism_options={}
        ).build()
        via_options = spec_for().build()
        assert np.array_equal(
            via_colon.run(stream).perturbed.matrix_view(),
            via_options.run(stream).perturbed.matrix_view(),
        )

    def test_unknown_mechanism_option_rejected(self):
        spec = spec_for(
            mechanism_options={"epsilon": 2.0, "epsilonn": 1.0}
        )
        with pytest.raises(TypeError):
            spec.build()


class TestAccounting:
    def test_budget_charged_and_enforced(self, stream):
        # Each uniform-ppm release spends its pattern-level ε = 2.
        service = spec_for(accounting=3.0).build()
        service.run(stream)
        assert service.accountant is not None
        assert service.accountant.spent() == pytest.approx(2.0)
        with pytest.raises(BudgetExceededError):
            service.run(stream)

    def test_no_accounting_by_default(self, stream):
        service = spec_for().build()
        service.run(stream)
        assert service.accountant is None


class TestSessions:
    def test_open_session_matches_batch_run(self, stream):
        service = spec_for().build()
        session = service.open_session()
        positives = 0
        for index in range(stream.n_windows):
            positives += session.push(stream.window_types(index))["q"]
        batch = spec_for().build().run(stream)
        assert positives == batch.answers["q"].detection_count()
        assert service.session is session

    def test_async_session_matches_sync_session(self, stream):
        sync_answers = spec_for().build().open_session().run(stream)

        async def drive():
            service = spec_for().build()
            async with service.open_async_session() as session:
                return await session.run(
                    [
                        stream.window_types(index)
                        for index in range(stream.n_windows)
                    ]
                )

        async_answers = asyncio.run(drive())
        assert async_answers == sync_answers


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "mechanism, options",
        [
            ("uniform-ppm", {"epsilon": 2.0}),
            ("bd", {"epsilon": 1.0, "w": 10}),
        ],
    )
    def test_resume_continues_bit_identically(
        self, stream, mechanism, options
    ):
        spec = spec_for(mechanism=mechanism, mechanism_options=options)
        uninterrupted = spec.build().open_session().run(stream)

        service = spec.build()
        session = service.open_session()
        for index in range(30):
            session.push(stream.window_types(index))
        checkpoint = service.checkpoint()

        resumed = StreamService.resume(spec, checkpoint)
        tail = {name: [] for name in uninterrupted}
        for index in range(30, stream.n_windows):
            for name, value in resumed.session.push(
                stream.window_types(index)
            ).items():
                tail[name].append(value)
        for name, values in tail.items():
            assert values == uninterrupted[name][30:]

    def test_resume_async_checkpoint(self, stream):
        spec = spec_for()

        async def first_half():
            service = spec.build()
            async with service.open_async_session() as session:
                await session.run(
                    [stream.window_types(index) for index in range(30)]
                )
                return service.checkpoint()

        checkpoint = asyncio.run(first_half())
        assert checkpoint["kind"] == "async"

        async def second_half():
            service = StreamService.resume(spec, checkpoint)
            async with service.session as session:
                return await session.run(
                    [
                        stream.window_types(index)
                        for index in range(30, stream.n_windows)
                    ]
                )

        tail = asyncio.run(second_half())
        uninterrupted = spec.build().open_session().run(stream)
        for name, values in tail.items():
            assert values == uninterrupted[name][30:]

    def test_resume_preserves_async_session_options(self, stream):
        spec = spec_for()

        async def first_half():
            service = spec.build()
            async with service.open_async_session(
                record=True, max_pending=32, max_batch=8
            ) as session:
                await session.run(
                    [stream.window_types(index) for index in range(10)]
                )
                return service.checkpoint()

        checkpoint = asyncio.run(first_half())
        assert checkpoint["session_options"] == {
            "max_pending": 32,
            "max_batch": 8,
            "record": True,
        }

        async def second_half():
            service = StreamService.resume(spec, checkpoint)
            async with service.session as session:
                await session.run(
                    [stream.window_types(index) for index in range(10, 15)]
                )
                return session.released_matrix  # requires record=True

        released = asyncio.run(second_half())
        assert released.shape == (5, len(ALPHABET))

    def test_checkpoint_without_session_rejected(self):
        with pytest.raises(RuntimeError, match="no open session"):
            spec_for().build().checkpoint()

    def test_resume_spec_mismatch_rejected(self, stream):
        service = spec_for().build()
        service.open_session()
        checkpoint = service.checkpoint()
        with pytest.raises(ValueError, match="different spec"):
            StreamService.resume(spec_for(seed=8), checkpoint)

    def test_checkpoint_round_trips_through_pickle(self, stream):
        import pickle

        spec = spec_for(mechanism="bd", mechanism_options={"epsilon": 1.0, "w": 10})
        service = spec.build()
        session = service.open_session()
        for index in range(10):
            session.push(stream.window_types(index))
        checkpoint = pickle.loads(pickle.dumps(service.checkpoint()))
        resumed = StreamService.resume(spec, checkpoint)
        assert resumed.session.windows_processed == 10


class TestSweep:
    def test_sweep_bridges_into_workload_evaluation(self, stream):
        service = spec_for().build()
        results = service.sweep(
            [1.0, 4.0],
            stream=stream,
            mechanisms=("uniform-ppm", "event-rr"),
            n_trials=1,
        )
        assert len(results) == 4
        kinds = {result.mechanism for result in results}
        assert kinds == {"uniform-ppm", "event-rr"}
        for result in results:
            assert result.workload == "service"
            assert 0.0 <= result.mre

    def test_sweep_matches_direct_runner_sweep(self, stream):
        from repro.datasets.workload import Workload
        from repro.experiments.runner import WorkloadEvaluation

        spec = spec_for()
        service = spec.build()
        via_service = service.sweep(
            [2.0],
            stream=stream,
            mechanisms=("uniform-ppm",),
            n_trials=2,
        )
        workload = Workload(
            name="service",
            stream=stream,
            history=stream,
            private_patterns=list(spec.pattern_objects()),
            target_patterns=[
                query.pattern for query in spec.query_objects()
            ],
            w=10,
        )
        direct = WorkloadEvaluation(workload).sweep(
            epsilon_grid=[2.0],
            mechanisms=["uniform-ppm"],
            n_trials=2,
            rng=spec.seed,
        )
        assert via_service == direct

    def test_sweep_adaptive_without_history_rejected(self, stream):
        service = spec_for().build()
        with pytest.raises(ValueError, match="historical windows"):
            service.sweep(
                [1.0],
                stream=stream,
                mechanisms=("uniform-ppm", "adaptive-ppm"),
                n_trials=1,
            )

    def test_sweep_adaptive_with_history_runs(self, stream):
        rng = np.random.default_rng(8)
        history = IndicatorStream(
            EventAlphabet(ALPHABET), rng.random((40, 4)) < 0.45
        )
        results = spec_for().build().sweep(
            [1.0],
            stream=stream,
            mechanisms=("adaptive-ppm",),
            history=history,
            n_trials=1,
        )
        assert len(results) == 1

    def test_sweep_accepts_executor_spec_string(self, stream):
        service = spec_for().build()
        sharded = service.sweep(
            [2.0],
            stream=stream,
            mechanisms=("uniform-ppm",),
            n_trials=1,
            executor="sharded:thread:2",
        )
        batch = service.sweep(
            [2.0],
            stream=stream,
            mechanisms=("uniform-ppm",),
            n_trials=1,
            executor="batch",
        )
        assert sharded == batch


class TestPluginRegistries:
    def test_third_party_mechanism_and_executor_hook_in(self, stream):
        @register_mechanism("test-identityish")
        def _build_test_mechanism(context, strength=1.0):
            """A do-nothing mechanism for registry tests."""

            class _Identity:
                name = "test-identityish"
                epsilon = strength

                def perturb(self, indicator_stream, *, rng=None):
                    return indicator_stream

            return _Identity()

        @register_executor("test-batchish")
        def _build_test_executor():
            """A thin wrapper over the batch executor for registry tests."""
            from repro.runtime.executors import BatchExecutor

            return BatchExecutor()

        assert "test-identityish" in registered_mechanisms()
        assert "test-batchish" in registered_executors()
        spec = spec_for(
            mechanism="test-identityish",
            mechanism_options={"strength": 3.0},
            executor="test-batchish",
        )
        report = spec.build().run(stream)
        assert report.perturbed == stream

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_mechanism("uniform-ppm")
            def _clash(context):
                """Never registered."""

    def test_native_only_plugin_participates_in_sweeps(self, stream):
        from repro.core.uniform import UniformPatternPPM

        @register_mechanism("test-native-only")
        def _build_native_only(context, *, epsilon):
            """A plugin taking only its native budget."""
            return UniformPatternPPM(context.private_patterns[0], epsilon)

        results = spec_for().build().sweep(
            [2.0],
            stream=stream,
            mechanisms=("test-native-only",),
            n_trials=1,
        )
        assert len(results) == 1
        assert results[0].mechanism == "test-native-only"

    def test_alias_collision_leaves_no_partial_registration(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_mechanism("test-fresh-name", aliases=("uniform",))
            def _half_registered(context):
                """Never registered."""

        # The non-colliding key must not have been inserted either.
        assert "test-fresh-name" not in registered_mechanisms()
