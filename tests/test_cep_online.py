"""Tests for repro.cep.online — push-based service sessions."""

import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.event_level import EventLevelRR
from repro.cep.engine import CEPEngine
from repro.cep.online import OnlineSession
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM


@pytest.fixture
def engine(alphabet6, private_pattern, target_pattern):
    engine = CEPEngine(alphabet6)
    engine.register_private_pattern(private_pattern)
    engine.register_query(ContinuousQuery("q", target_pattern))
    return engine


class TestSessionBasics:
    def test_requires_queries(self, alphabet6):
        with pytest.raises(ValueError):
            OnlineSession(CEPEngine(alphabet6))

    def test_no_mechanism_passthrough(self, engine, stream200):
        session = OnlineSession(engine)
        answers = session.run(stream200)
        truth = stream200.detect_all(["e2", "e3", "e4"])
        assert answers["q"] == list(truth)

    def test_counts_pushes(self, engine, stream200):
        session = OnlineSession(engine)
        session.run(stream200)
        assert session.windows_processed == stream200.n_windows

    def test_unknown_types_ignored(self, engine):
        session = OnlineSession(engine)
        answers = session.push({"e2", "e3", "e4", "not-in-alphabet"})
        assert answers["q"] is True

    def test_unsupported_mechanism_rejected(self, engine):
        class Opaque:
            def perturb(self, stream, rng=None):
                return stream

        engine.attach_mechanism(Opaque())
        with pytest.raises(TypeError):
            OnlineSession(engine)


class TestBatchEquivalence:
    def test_single_ppm_matches_batch_bitwise(
        self, engine, stream200, private_pattern
    ):
        ppm = UniformPatternPPM(private_pattern, 2.0)
        engine.attach_mechanism(ppm)
        batch = engine.process_indicators(stream200, rng=42)
        online = OnlineSession(engine, rng=42).run(stream200)
        assert online["q"] == list(batch.answers["q"].detections)

    @pytest.mark.parametrize(
        "mechanism_cls", [BudgetDistribution, BudgetAbsorption]
    )
    def test_w_event_matches_batch_bitwise(
        self, engine, stream200, mechanism_cls
    ):
        mechanism = mechanism_cls(1.0, w=10)
        engine.attach_mechanism(mechanism)
        session = OnlineSession(engine, rng=7)
        online = session.run(stream200)
        # Re-run batch with the session's derivation so seeds align.
        from repro.utils.rng import derive_rng

        batch_released = mechanism.perturb(
            stream200, rng=derive_rng(7, "online")
        )
        expected = list(batch_released.detect_all(["e2", "e3", "e4"]))
        assert online["q"] == expected

    def test_multi_ppm_session_runs(self, engine, stream200, private_pattern):
        other = Pattern.of_types("other", "e5", "e6")
        engine.attach_mechanism(
            MultiPatternPPM(
                [
                    UniformPatternPPM(private_pattern, 2.0),
                    UniformPatternPPM(other, 2.0),
                ]
            )
        )
        answers = OnlineSession(engine, rng=3).run(stream200)
        assert len(answers["q"]) == stream200.n_windows

    def test_event_level_session_runs(self, engine, stream200):
        engine.attach_mechanism(EventLevelRR(1.0))
        answers = OnlineSession(engine, rng=3).run(stream200)
        assert len(answers["q"]) == stream200.n_windows


class TestSessionCheckpointResume:
    @pytest.mark.parametrize(
        "make_mechanism",
        [
            lambda pattern: UniformPatternPPM(pattern, 2.0),
            lambda pattern: BudgetDistribution(1.0, w=10),
            lambda pattern: BudgetAbsorption(1.0, w=10),
            lambda pattern: EventLevelRR(1.0),
        ],
        ids=["uniform", "bd", "ba", "event-level"],
    )
    def test_restored_session_matches_uninterrupted(
        self, engine, stream200, private_pattern, make_mechanism
    ):
        import pickle

        engine.attach_mechanism(make_mechanism(private_pattern))
        straight = OnlineSession(engine, rng=5).run(stream200)

        crashed = OnlineSession(engine, rng=5)
        head = [
            crashed.push(stream200.window_types(index))
            for index in range(80)
        ]
        snapshot = pickle.loads(pickle.dumps(crashed.snapshot()))
        # "Crash": a brand-new session over the same configuration and
        # seed, restored mid-stream, continues with exactly the
        # randomness and budget state the uninterrupted run had.
        resumed = OnlineSession(engine, rng=5)
        resumed.restore(snapshot)
        assert resumed.windows_processed == 80
        tail = [
            resumed.push(stream200.window_types(index))
            for index in range(80, stream200.n_windows)
        ]
        combined = [answers["q"] for answers in head + tail]
        assert combined == straight["q"]

    def test_w_event_resume_preserves_trace(self, engine, stream200):
        mechanism = BudgetDistribution(1.0, w=10)
        engine.attach_mechanism(mechanism)
        OnlineSession(engine, rng=3).run(stream200)
        straight_trace = (
            list(mechanism.last_trace.published),
            list(mechanism.last_trace.publication_budgets),
        )
        crashed = OnlineSession(engine, rng=3)
        for index in range(60):
            crashed.push(stream200.window_types(index))
        snapshot = crashed.snapshot()
        resumed = OnlineSession(engine, rng=3)
        resumed.restore(snapshot)
        for index in range(60, stream200.n_windows):
            resumed.push(stream200.window_types(index))
        assert (
            list(mechanism.last_trace.published),
            list(mechanism.last_trace.publication_budgets),
        ) == straight_trace

    def test_restore_rejects_mechanism_mismatch(self, engine, stream200):
        unprotected = OnlineSession(engine)
        snapshot = unprotected.snapshot()
        engine.attach_mechanism(BudgetDistribution(1.0, w=5))
        protected = OnlineSession(engine, rng=1)
        with pytest.raises(ValueError, match="mechanism"):
            protected.restore(snapshot)


class TestOnlineAccounting:
    def test_session_charges_once(self, engine, stream200, private_pattern):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 1.0))
        engine.enable_accounting(2.5)
        session = OnlineSession(engine, rng=0)
        session.run(stream200)
        # One spend for the whole session, not one per window.
        assert engine.accountant.spent() == pytest.approx(1.0)

    def test_session_refused_when_over_budget(
        self, engine, stream200, private_pattern
    ):
        from repro.mechanisms.accountant import BudgetExceededError

        engine.attach_mechanism(UniformPatternPPM(private_pattern, 1.0))
        engine.enable_accounting(1.5)
        OnlineSession(engine, rng=0)
        with pytest.raises(BudgetExceededError):
            OnlineSession(engine, rng=1)


class TestOnlineStatistics:
    def test_flip_rate_matches_mechanism(self, engine, stream200, private_pattern):
        # Protected single-column query: the per-window answer differs
        # from truth at roughly the configured flip rate.
        engine_q = CEPEngine(stream200.alphabet)
        engine_q.register_query(
            ContinuousQuery("q1", Pattern.of_types("t1", "e1"))
        )
        ppm = UniformPatternPPM(Pattern.of_types("p", "e1"), 2.0)
        engine_q.attach_mechanism(ppm)
        expected_p = ppm.flip_probability_by_type()["e1"]
        disagreements = 0
        trials = 25
        for seed in range(trials):
            answers = OnlineSession(engine_q, rng=seed).run(stream200)
            truth = list(stream200.column("e1"))
            disagreements += sum(
                a != t for a, t in zip(answers["q1"], truth)
            )
        rate = disagreements / (trials * stream200.n_windows)
        assert rate == pytest.approx(expected_p, abs=0.03)
