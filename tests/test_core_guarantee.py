"""Tests for repro.core.guarantee — the Definition 4 guarantee object."""

import math

import pytest

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.guarantee import PatternLevelGuarantee


@pytest.fixture
def guarantee(private_pattern):
    return PatternLevelGuarantee(private_pattern, epsilon=3.0)


class TestConstruction:
    def test_fields(self, guarantee, private_pattern):
        assert guarantee.pattern is private_pattern
        assert guarantee.epsilon == 3.0
        assert guarantee.pattern_length == 3

    def test_invalid_epsilon(self, private_pattern):
        with pytest.raises(Exception):
            PatternLevelGuarantee(private_pattern, epsilon=0.0)

    def test_invalid_pattern(self):
        with pytest.raises(TypeError):
            PatternLevelGuarantee("p", epsilon=1.0)  # type: ignore[arg-type]

    def test_statement_mentions_pattern_and_epsilon(self, guarantee):
        text = guarantee.statement()
        assert "3" in text and "private" in text


class TestChecks:
    def test_satisfied_by_exact_allocation(self, guarantee):
        assert guarantee.satisfied_by(BudgetAllocation.uniform(3.0, 3))

    def test_satisfied_by_smaller_allocation(self, guarantee):
        assert guarantee.satisfied_by(BudgetAllocation.uniform(2.0, 3))

    def test_violated_by_larger_allocation(self, guarantee):
        assert not guarantee.satisfied_by(BudgetAllocation.uniform(3.5, 3))

    def test_length_mismatch_raises(self, guarantee):
        with pytest.raises(ValueError):
            guarantee.satisfied_by(BudgetAllocation.uniform(3.0, 2))

    def test_worst_case_single_event_epsilon(self, guarantee):
        allocation = BudgetAllocation((0.5, 2.0, 0.5))
        assert guarantee.worst_case_single_event_epsilon(
            allocation
        ) == pytest.approx(2.0)

    def test_max_likelihood_ratio(self, guarantee):
        assert guarantee.max_likelihood_ratio() == pytest.approx(math.exp(3.0))

    def test_privacy_loss_of_flips(self, guarantee):
        allocation = BudgetAllocation.uniform(3.0, 3)
        loss = guarantee.privacy_loss_of(allocation.flip_probabilities())
        assert loss == pytest.approx(3.0)
