"""Tests for repro.mechanisms.exponential — the exponential mechanism."""

import numpy as np
import pytest

from repro.mechanisms.exponential import ExponentialMechanism


class TestSelectionProbabilities:
    def test_sum_to_one(self):
        mechanism = ExponentialMechanism(1.0)
        probabilities = mechanism.selection_probabilities([1.0, 2.0, 3.0])
        assert probabilities.sum() == pytest.approx(1.0)

    def test_higher_score_more_likely(self):
        mechanism = ExponentialMechanism(1.0)
        probabilities = mechanism.selection_probabilities([0.0, 5.0])
        assert probabilities[1] > probabilities[0]

    def test_ratio_matches_formula(self):
        mechanism = ExponentialMechanism(2.0, sensitivity=1.0)
        probabilities = mechanism.selection_probabilities([0.0, 1.0])
        # ratio = exp(eps * (s1 - s0) / (2 * sens)) = e.
        assert probabilities[1] / probabilities[0] == pytest.approx(np.e)

    def test_numerically_stable_for_large_scores(self):
        mechanism = ExponentialMechanism(1.0)
        probabilities = mechanism.selection_probabilities([1e6, 1e6 + 1])
        assert np.isfinite(probabilities).all()

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(1.0).selection_probabilities([])


class TestSelect:
    def test_deterministic_under_seed(self):
        mechanism = ExponentialMechanism(1.0)
        a = mechanism.select(["x", "y", "z"], [1, 2, 3], rng=0)
        b = mechanism.select(["x", "y", "z"], [1, 2, 3], rng=0)
        assert a == b

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(1.0).select(["x"], [1, 2], rng=0)

    def test_strong_epsilon_picks_best(self):
        mechanism = ExponentialMechanism(200.0)
        picks = {
            mechanism.select(["bad", "good"], [0.0, 1.0], rng=seed)
            for seed in range(20)
        }
        assert picks == {"good"}

    def test_weak_epsilon_explores(self):
        mechanism = ExponentialMechanism(0.01)
        picks = {
            mechanism.select(["a", "b"], [0.0, 1.0], rng=seed)
            for seed in range(50)
        }
        assert picks == {"a", "b"}
