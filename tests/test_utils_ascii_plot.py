"""Tests for repro.utils.ascii_plot — terminal line charts."""

import pytest

from repro.utils.ascii_plot import line_chart


@pytest.fixture
def two_series():
    return {
        "down": [(1.0, 0.9), (2.0, 0.5), (3.0, 0.1)],
        "flat": [(1.0, 0.5), (2.0, 0.5), (3.0, 0.5)],
    }


class TestLineChart:
    def test_contains_legend_and_labels(self, two_series):
        text = line_chart(
            two_series, title="demo", x_label="eps", y_label="mre"
        )
        assert "demo" in text
        assert "legend:" in text
        assert "o=down" in text and "x=flat" in text
        assert "eps" in text and "mre" in text

    def test_y_axis_bounds_printed(self, two_series):
        text = line_chart(two_series)
        assert "0.900" in text
        assert "0.100" in text

    def test_dimensions_respected(self, two_series):
        text = line_chart(two_series, width=40, height=10)
        plot_rows = [line for line in text.splitlines() if "|" in line]
        assert len(plot_rows) == 10
        for row in plot_rows:
            assert len(row.split("|", 1)[1]) <= 40

    def test_markers_plotted(self, two_series):
        text = line_chart(two_series)
        body = text.split("legend:")[0]
        assert "o" in body and "x" in body

    def test_monotone_series_renders_monotone(self):
        text = line_chart({"down": [(0, 1.0), (1, 0.0)]}, width=20, height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        first_col = min(
            row.split("|", 1)[1].find("o")
            for row in rows
            if "o" in row.split("|", 1)[1]
        )
        top_row = next(i for i, row in enumerate(rows) if "o" in row)
        bottom_row = max(i for i, row in enumerate(rows) if "o" in row)
        assert top_row < bottom_row  # high value plotted above low value

    def test_constant_y_padded(self):
        line_chart({"flat": [(0, 0.5), (1, 0.5)]})  # must not divide by 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"empty": []})

    def test_too_small_rejected(self, two_series):
        with pytest.raises(ValueError):
            line_chart(two_series, width=5, height=2)


class TestFig4Chart:
    def test_chart_from_fig4_result(self, tiny_workload):
        from repro.experiments import ExperimentConfig, fig4_ascii_chart
        from repro.experiments.fig4 import run_fig4_on_workload

        config = ExperimentConfig(
            epsilon_grid=(1.0, 4.0), mechanisms=("uniform", "bd"), n_trials=1
        )
        panel = run_fig4_on_workload(tiny_workload, config)
        text = fig4_ascii_chart(panel)
        assert "MRE vs pattern-level epsilon" in text
        assert "uniform" in text and "bd" in text
