"""Bit-identity of the pooled fast paths against the seed release loops.

The runtime replaced the per-window ``derive_rng`` loops of BD/BA and
landmark privacy with vectorized child derivation.  The refactor is
only valid because it is *exactly* output-preserving; these tests pin
that against the reference implementations for every parent-rng kind
(shared generator, int seed, default None).
"""

import numpy as np
import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.landmark import LandmarkPrivacy
from repro.runtime.reference import (
    reference_landmark_perturb,
    reference_perturb,
    reference_w_event_perturb,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)


@pytest.fixture
def stream():
    rng = np.random.default_rng(31)
    return IndicatorStream(ALPHABET, rng.random((90, 5)) < 0.35)


def rngs(seed):
    yield seed
    yield np.random.default_rng(seed)
    if seed == 0:
        yield None


class TestWEventParity:
    @pytest.mark.parametrize("mechanism_cls", [BudgetDistribution, BudgetAbsorption])
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_fast_equals_reference(self, mechanism_cls, seed, stream):
        mechanism = mechanism_cls(1.2, w=8)
        for rng in rngs(seed):
            reference = reference_w_event_perturb(
                mechanism, stream, rng=np.random.default_rng(seed)
                if isinstance(rng, np.random.Generator)
                else rng
            )
            fast = mechanism.perturb(
                stream,
                rng=np.random.default_rng(seed)
                if isinstance(rng, np.random.Generator)
                else rng,
            )
            assert fast == reference


class TestLandmarkParity:
    @pytest.mark.parametrize("seed", [0, 5, 99])
    def test_fast_equals_reference(self, seed, stream):
        mask = stream.column("e1")
        mechanism = LandmarkPrivacy(1.5, landmarks=mask)
        reference = reference_landmark_perturb(
            mechanism, stream, mask, rng=np.random.default_rng(seed)
        )
        fast = mechanism.perturb(stream, rng=np.random.default_rng(seed))
        assert fast == reference

    def test_int_seed_parent(self, stream):
        mask = stream.column("e2")
        mechanism = LandmarkPrivacy(0.8, landmarks=mask)
        assert mechanism.perturb(stream, rng=4) == reference_landmark_perturb(
            mechanism, stream, mask, rng=4
        )


class TestDispatch:
    def test_reference_perturb_dispatches(self, stream):
        bd = BudgetDistribution(1.0, w=5)
        assert reference_perturb(bd, stream, rng=3) == bd.perturb(
            stream, rng=3
        )
        landmark = LandmarkPrivacy(1.0, landmarks=stream.column("e1"))
        assert reference_perturb(
            landmark, stream, rng=3
        ) == landmark.perturb(stream, rng=3)
