"""Tests for repro.core.event_ppm — Definition 5 over raw event streams."""

import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.event_ppm import EventStreamPPM
from repro.core.ppm import apply_randomized_response
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows

ALPHABET = EventAlphabet(["a", "b", "c"])


@pytest.fixture
def event_stream():
    rng = np.random.default_rng(3)
    events = []
    for window in range(40):
        base = window * 10.0
        for offset, name in enumerate(("a", "b", "c")):
            if rng.random() < 0.5:
                events.append(Event(name, base + offset))
    return EventStream(events)


@pytest.fixture
def ppm():
    return EventStreamPPM(
        Pattern.of_types("p", "a", "b"), BudgetAllocation((1.0, 2.0))
    )


class TestConstruction:
    def test_uniform_constructor(self):
        ppm = EventStreamPPM.uniform(Pattern.of_types("p", "a", "b"), 4.0)
        assert ppm.allocation.epsilons == (2.0, 2.0)
        assert ppm.epsilon == pytest.approx(4.0)

    def test_requires_element_list(self):
        from repro.cep.patterns import OR

        with pytest.raises(ValueError):
            EventStreamPPM(
                Pattern("p", OR("a", "b")), BudgetAllocation((1.0, 1.0))
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EventStreamPPM(
                Pattern.of_types("p", "a"), BudgetAllocation((1.0, 1.0))
            )

    def test_guarantee_totals_budget(self, ppm):
        assert ppm.guarantee.epsilon == pytest.approx(3.0)


class TestPerturbation:
    def test_unprotected_events_untouched(self, ppm, event_stream):
        perturbed = ppm.perturb(event_stream, TumblingWindows(10.0), rng=0)
        original_c = [e.timestamp for e in event_stream if e.event_type == "c"]
        perturbed_c = [e.timestamp for e in perturbed if e.event_type == "c"]
        assert original_c == perturbed_c

    def test_output_is_valid_event_stream(self, ppm, event_stream):
        perturbed = ppm.perturb(event_stream, TumblingWindows(10.0), rng=0)
        timestamps = perturbed.timestamps()
        assert timestamps == sorted(timestamps)

    def test_injected_events_marked_synthetic(self, ppm, event_stream):
        perturbed = ppm.perturb(event_stream, TumblingWindows(10.0), rng=1)
        injected = [
            e for e in perturbed if e.attribute("synthetic") is True
        ]
        assert injected  # with p ~ 0.2 over 40 windows some injections occur
        assert all(e.event_type in ("a", "b") for e in injected)

    def test_suppression_removes_whole_type_in_window(self, ppm):
        # Two a-events in one window: a suppression must remove both
        # (the existence indicator is all-or-nothing).
        events = EventStream([Event("a", 1.0), Event("a", 2.0)])
        windows = TumblingWindows(10.0).assign(events)
        for seed in range(50):
            perturbed = ppm.perturb_windows(windows, rng=seed)
            count = sum(
                1 for e in perturbed[0].events if e.event_type == "a"
            )
            assert count in (0, 2)

    def test_deterministic_under_seed(self, ppm, event_stream):
        first = ppm.perturb(event_stream, TumblingWindows(10.0), rng=9)
        second = ppm.perturb(event_stream, TumblingWindows(10.0), rng=9)
        assert first == second


class TestCommutativity:
    """Event-level perturbation commutes exactly with the reduction."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_perturb_then_reduce_equals_reduce_then_perturb(
        self, ppm, event_stream, seed
    ):
        windows = TumblingWindows(10.0, emit_empty=True).assign(event_stream)
        # Path 1: perturb events, then reduce to indicators.
        via_events = ppm.perturb_to_indicators(ALPHABET, windows, rng=seed)
        # Path 2: reduce to indicators, then flip columns.
        reduced = IndicatorStream.from_event_windows(
            ALPHABET, windows, strict=False
        )
        via_indicators = apply_randomized_response(
            reduced, ppm.flip_probability_by_type(), rng=seed
        )
        assert via_events == via_indicators

    def test_windowed_ppm_equivalence(self, event_stream):
        # The windowed PatternLevelPPM and the event-stream PPM with the
        # same pattern/allocation/seed release identical indicators.
        from repro.core.ppm import PatternLevelPPM

        pattern = Pattern.of_types("p", "a", "b")
        allocation = BudgetAllocation((1.5, 0.5))
        windowed = PatternLevelPPM(pattern, allocation)
        eventwise = EventStreamPPM(pattern, allocation)
        windows = TumblingWindows(10.0, emit_empty=True).assign(event_stream)
        reduced = IndicatorStream.from_event_windows(
            ALPHABET, windows, strict=False
        )
        assert eventwise.perturb_to_indicators(
            ALPHABET, windows, rng=7
        ) == windowed.perturb(reduced, rng=7)
