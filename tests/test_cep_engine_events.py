"""Tests for CEPEngine.process_events — the raw-events service path."""

import numpy as np
import pytest

from repro.cep.engine import CEPEngine
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.uniform import UniformPatternPPM
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows


@pytest.fixture
def alphabet():
    return EventAlphabet(["a", "b", "c"])


@pytest.fixture
def engine(alphabet):
    engine = CEPEngine(alphabet)
    engine.register_private_pattern(Pattern.of_types("priv", "a", "b"))
    engine.register_query(
        ContinuousQuery("q", Pattern.of_types("tar", "b", "c"))
    )
    return engine


@pytest.fixture
def event_stream():
    rng = np.random.default_rng(5)
    events = []
    for window in range(30):
        base = window * 10.0
        for offset, name in enumerate(("a", "b", "c")):
            if rng.random() < 0.5:
                events.append(Event(name, base + offset))
    return EventStream(events)


class TestProcessEvents:
    def test_matches_manual_reduction(self, engine, event_stream, alphabet):
        report = engine.process_events(
            event_stream, TumblingWindows(10.0), rng=3
        )
        windows = TumblingWindows(10.0).assign(event_stream)
        indicators = IndicatorStream.from_event_windows(
            alphabet, windows, strict=False
        )
        manual = engine.process_indicators(indicators, rng=3)
        assert np.array_equal(
            report.answers["q"].detections,
            manual.answers["q"].detections,
        )

    def test_with_mechanism(self, engine, event_stream):
        engine.attach_mechanism(
            UniformPatternPPM(Pattern.of_types("priv", "a", "b"), 2.0)
        )
        report = engine.process_events(
            event_stream, TumblingWindows(10.0), rng=3
        )
        # Column c is not protected, so released answers can only differ
        # from truth through the protected b column.
        true_answers = report.true_answers["q"].detections
        released = report.answers["q"].detections
        b_changed = (
            report.original.column("b") != report.perturbed.column("b")
        )
        differs = true_answers != released
        assert not (differs & ~b_changed).any()

    def test_events_outside_alphabet_ignored(self, engine):
        events = EventStream(
            [Event("a", 0.0), Event("unknown", 1.0), Event("b", 2.0)]
        )
        report = engine.process_events(events, TumblingWindows(10.0))
        assert report.original.n_windows == 1

    def test_empty_stream_yields_no_windows(self, engine):
        report = engine.process_events(
            EventStream([]), TumblingWindows(10.0)
        )
        assert report.original.n_windows == 0
        assert report.answers["q"].n_windows == 0
