"""The cluster executor: fleet protocol, bit-identity, fault recovery.

The :class:`~repro.runtime.cluster.ClusterExecutor` ships shard work to
spawned worker processes over a framed message protocol — shared-memory
descriptors on the ``shm`` transport, framed matrix bytes on
``framed`` — and must be bit-identical to :class:`BatchExecutor` on
both transports, for seekable mechanisms and for the
checkpoint-prepass (budget-distribution) path, *including* runs where
a worker is killed or frozen mid-shard: the heartbeat/timeout loop
reaps the worker and requeues its shard, so no window is ever lost.

Worker faults are injected through ``cluster._TASK_FAULT_HOOK``, a
module global the forked workers inherit: the hook runs in the worker
process right before it executes a task, and a sentinel file makes the
fault one-shot (first worker to claim it dies; the requeued shard then
completes normally).
"""

import os
import signal

import numpy as np
import pytest

from repro.baselines.budget_distribution import BudgetDistribution
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.uniform import UniformPatternPPM
from repro.runtime import BatchExecutor, ClusterExecutor, StreamPipeline
from repro.runtime import cluster
from repro.runtime.shm import leaked_segments
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)
QUERIES = [
    ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e2")),
    ContinuousQuery("q2", Pattern.of_types("q2", "e3")),
]

TRANSPORTS = ("shm", "framed")


def make_stream(n_windows, seed=9):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n_windows, 5)) < 0.35)


def make_pipeline(kind):
    if kind == "seekable":
        mechanism = UniformPatternPPM(Pattern.of_types("p", "e1", "e4"), 1.5)
    else:
        mechanism = BudgetDistribution(1.0, w=4)
    return StreamPipeline(ALPHABET, queries=QUERIES, mechanism=mechanism)


def assert_bit_identical(left, right):
    assert left.original == right.original
    assert left.released == right.released
    assert set(left.answers) == set(right.answers)
    for name, detections in right.answers.items():
        assert np.array_equal(left.answers[name], detections)
        assert np.array_equal(
            left.true_answers[name], right.true_answers[name]
        )
    assert left.quality() == right.quality()


@pytest.fixture
def fault_hook():
    """Install a worker-side fault hook; always restore the global."""
    def install(hook):
        cluster._TASK_FAULT_HOOK = hook

    yield install
    cluster._TASK_FAULT_HOOK = None


def one_shot(sentinel, fault):
    """A hook whose fault fires in exactly one worker, once.

    The sentinel file is the claim: ``os.unlink`` succeeds in exactly
    one process, so concurrent workers cannot both die and the
    requeued shard runs clean.
    """

    def hook(message):
        try:
            os.unlink(sentinel)
        except FileNotFoundError:
            return
        fault()

    return hook


class TestClusterBitIdentity:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("kind", ["seekable", "checkpointed"])
    def test_matches_batch(self, transport, kind):
        pipeline = make_pipeline(kind)
        stream = make_stream(300)
        batch = BatchExecutor().run(pipeline, stream, rng=17)
        clustered = ClusterExecutor(
            3, transport=transport, n_shards=5
        ).run(pipeline, stream, rng=17)
        assert_bit_identical(clustered, batch)
        assert leaked_segments() == ()

    @pytest.mark.parametrize("kind", ["seekable", "checkpointed"])
    def test_single_shard_runs_in_process(self, kind):
        pipeline = make_pipeline(kind)
        stream = make_stream(40)
        batch = BatchExecutor().run(pipeline, stream, rng=5)
        clustered = ClusterExecutor(2, n_shards=1).run(
            pipeline, stream, rng=5
        )
        assert_bit_identical(clustered, batch)

    def test_empty_stream(self):
        pipeline = make_pipeline("seekable")
        stream = make_stream(0)
        batch = BatchExecutor().run(pipeline, stream, rng=3)
        clustered = ClusterExecutor(2).run(pipeline, stream, rng=3)
        assert_bit_identical(clustered, batch)

    def test_unsharded_mechanism_is_refused(self):
        # A mechanism matching none of the streamable protocols (only
        # batch perturb) can neither seek nor checkpoint; it must be
        # refused up front, not silently run non-bit-identically.
        class BatchOnly:
            def perturb(self, stream, *, rng=None):
                return stream

        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=BatchOnly()
        )
        with pytest.raises(TypeError, match="supports only batch"):
            ClusterExecutor(2).run(pipeline, make_stream(20), rng=1)


class TestClusterValidation:
    def test_bad_transport(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ClusterExecutor(2, transport="tcp")

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            ClusterExecutor(0)

    def test_timeout_must_exceed_heartbeat(self):
        with pytest.raises(ValueError):
            ClusterExecutor(
                2, heartbeat_interval=1.0, worker_timeout=0.5
            )


class TestClusterFaults:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("kind", ["seekable", "checkpointed"])
    def test_killed_worker_requeues_shard(
        self, tmp_path, fault_hook, transport, kind
    ):
        """A worker dying mid-shard never loses the shard."""
        sentinel = tmp_path / "die-once"
        sentinel.touch()
        fault_hook(one_shot(str(sentinel), lambda: os._exit(1)))
        pipeline = make_pipeline(kind)
        stream = make_stream(240)
        batch = BatchExecutor().run(pipeline, stream, rng=29)
        executor = ClusterExecutor(2, transport=transport, n_shards=4)
        clustered = executor.run(pipeline, stream, rng=29)
        assert executor.last_restarts >= 1
        assert not sentinel.exists()  # the fault actually fired
        assert_bit_identical(clustered, batch)
        assert leaked_segments() == ()

    def test_frozen_worker_times_out_and_requeues(
        self, tmp_path, fault_hook
    ):
        """A hung (SIGSTOPped) worker trips the heartbeat timeout."""
        sentinel = tmp_path / "freeze-once"
        sentinel.touch()
        fault_hook(
            one_shot(
                str(sentinel),
                lambda: os.kill(os.getpid(), signal.SIGSTOP),
            )
        )
        pipeline = make_pipeline("seekable")
        stream = make_stream(160)
        batch = BatchExecutor().run(pipeline, stream, rng=31)
        executor = ClusterExecutor(
            2,
            n_shards=4,
            heartbeat_interval=0.1,
            worker_timeout=1.0,
        )
        clustered = executor.run(pipeline, stream, rng=31)
        assert executor.last_restarts >= 1
        assert not sentinel.exists()
        assert_bit_identical(clustered, batch)
        assert leaked_segments() == ()

    def test_persistent_fault_exhausts_restart_budget(self, fault_hook):
        """A fault that never clears fails loudly, not forever."""
        fault_hook(lambda message: os._exit(1))
        pipeline = make_pipeline("seekable")
        executor = ClusterExecutor(2, n_shards=4, max_restarts=3)
        with pytest.raises(RuntimeError, match="restart"):
            executor.run(pipeline, make_stream(120), rng=7)
        assert leaked_segments() == ()

    def test_worker_exception_propagates(self, fault_hook):
        def boom(message):
            raise RuntimeError("shard exploded for the test")

        fault_hook(boom)
        pipeline = make_pipeline("seekable")
        executor = ClusterExecutor(2, n_shards=4)
        with pytest.raises(RuntimeError, match="shard exploded"):
            executor.run(pipeline, make_stream(120), rng=7)
        assert leaked_segments() == ()
