"""Tests for repro.mechanisms.accountant — budget accounting."""

import math

import pytest

from repro.mechanisms.accountant import (
    BudgetExceededError,
    PrivacyAccountant,
    composed_epsilon,
)


class TestComposedEpsilon:
    def test_sequential_adds(self):
        assert composed_epsilon([0.5, 0.3, 0.2]) == pytest.approx(1.0)

    def test_parallel_takes_max(self):
        assert composed_epsilon([0.5, 0.3], mode="parallel") == 0.5

    def test_parallel_empty_is_zero(self):
        assert composed_epsilon([], mode="parallel") == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            composed_epsilon([0.1], mode="magic")

    def test_negative_spend_rejected(self):
        with pytest.raises(Exception):
            composed_epsilon([-0.1])


class TestPrivacyAccountant:
    def test_spend_and_remaining(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend("a", 0.4)
        assert accountant.spent() == pytest.approx(0.4)
        assert accountant.remaining() == pytest.approx(0.6)

    def test_overspend_raises_before_recording(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend("a", 0.8)
        with pytest.raises(BudgetExceededError):
            accountant.spend("b", 0.3)
        # The failed spend is not recorded.
        assert accountant.spent() == pytest.approx(0.8)

    def test_exact_budget_allowed(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend("a", 0.5)
        accountant.spend("b", 0.5)
        assert accountant.remaining() == pytest.approx(0.0)

    def test_float_accumulation_tolerance(self):
        accountant = PrivacyAccountant(1.0)
        for i in range(10):
            accountant.spend(f"s{i}", 0.1)
        assert accountant.remaining() == pytest.approx(0.0, abs=1e-9)

    def test_can_spend(self):
        accountant = PrivacyAccountant(1.0)
        assert accountant.can_spend(1.0)
        accountant.spend("a", 0.9)
        assert not accountant.can_spend(0.2)

    def test_by_label_aggregates(self):
        accountant = PrivacyAccountant(2.0)
        accountant.spend("pub", 0.5)
        accountant.spend("pub", 0.3)
        accountant.spend("dis", 0.1)
        totals = accountant.by_label()
        assert totals["pub"] == pytest.approx(0.8)
        assert totals["dis"] == pytest.approx(0.1)

    def test_reset(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend("a", 1.0)
        accountant.reset()
        assert accountant.spent() == 0.0
        accountant.spend("b", 1.0)

    def test_infinite_budget_allowed(self):
        accountant = PrivacyAccountant(math.inf)
        accountant.spend("a", 1000.0)
        assert accountant.can_spend(1e9)

    def test_zero_spend_allowed(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend("noop", 0.0)
        assert accountant.spent() == 0.0

    def test_spends_are_copies(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend("a", 0.1)
        accountant.spends.clear()
        assert len(accountant.spends) == 1

    def test_invalid_total_rejected(self):
        with pytest.raises(Exception):
            PrivacyAccountant(0.0)
