"""Tests for repro.cep.nfa — expression compilation and automatons."""

import pytest

from repro.cep.nfa import (
    CompileError,
    DisjAutomaton,
    ProductAutomaton,
    SeqAutomaton,
    compile_expr,
    compile_to_nfa,
)
from repro.cep.patterns import AND, KLEENE, NEG, OR, SEQ, Atom
from repro.streams.events import Event


def e(event_type, timestamp=0.0):
    return Event(event_type, timestamp)


def run_accepts(automaton, symbols):
    """Whether consuming exactly `symbols` (no skips) reaches acceptance."""
    states = list(automaton.initials())
    for position, symbol in enumerate(symbols):
        next_states = []
        for state in states:
            next_states.extend(automaton.step(state, e(symbol, float(position))))
        states = next_states
        if not states:
            return False
    return any(automaton.is_accepting(state) for state in states)


class TestAtomAndSeq:
    def test_atom_accepts_single_event(self):
        nfa = compile_to_nfa(Atom("a"))
        assert run_accepts(nfa, ["a"])
        assert not run_accepts(nfa, ["b"])

    def test_seq_order_matters(self):
        nfa = compile_to_nfa(SEQ("a", "b"))
        assert run_accepts(nfa, ["a", "b"])
        assert not run_accepts(nfa, ["b", "a"])

    def test_seq_incomplete_not_accepting(self):
        nfa = compile_to_nfa(SEQ("a", "b", "c"))
        assert not run_accepts(nfa, ["a", "b"])

    def test_no_transition_on_mismatch(self):
        nfa = compile_to_nfa(SEQ("a", "b"))
        state = nfa.initials()[0]
        assert nfa.step(state, e("b")) == []


class TestDisjunction:
    def test_or_accepts_either(self):
        nfa = compile_to_nfa(OR("a", "b"))
        assert run_accepts(nfa, ["a"])
        assert run_accepts(nfa, ["b"])
        assert not run_accepts(nfa, ["c"])

    def test_or_of_sequences(self):
        nfa = compile_to_nfa(OR(SEQ("a", "b"), SEQ("c", "d")))
        assert run_accepts(nfa, ["a", "b"])
        assert run_accepts(nfa, ["c", "d"])
        assert not run_accepts(nfa, ["a", "d"])


class TestKleene:
    def test_unbounded_plus(self):
        nfa = compile_to_nfa(KLEENE("a"))
        assert run_accepts(nfa, ["a"])
        assert run_accepts(nfa, ["a", "a", "a"])
        assert not run_accepts(nfa, [])

    def test_at_least(self):
        nfa = compile_to_nfa(KLEENE("a", 2))
        assert not run_accepts(nfa, ["a"])
        assert run_accepts(nfa, ["a", "a"])
        assert run_accepts(nfa, ["a", "a", "a"])

    def test_bounded(self):
        nfa = compile_to_nfa(KLEENE("a", 1, 2))
        assert run_accepts(nfa, ["a"])
        assert run_accepts(nfa, ["a", "a"])
        # A third consuming step must find no transition.
        assert not run_accepts(nfa, ["a", "a", "a"])

    def test_kleene_inside_seq(self):
        nfa = compile_to_nfa(SEQ("a", KLEENE("b"), "c"))
        assert run_accepts(nfa, ["a", "b", "c"])
        assert run_accepts(nfa, ["a", "b", "b", "c"])
        assert not run_accepts(nfa, ["a", "c"])


class TestNegGuards:
    def test_guard_detected_while_parked(self):
        nfa = compile_to_nfa(SEQ("a", NEG("z"), "b"))
        state = nfa.initials()[0]
        (after_a,) = nfa.step(state, e("a"))
        assert nfa.forbidden_matches(after_a, e("z"))
        assert not nfa.forbidden_matches(after_a, e("q"))

    def test_guard_not_active_before_first_step(self):
        nfa = compile_to_nfa(SEQ("a", NEG("z"), "b"))
        state = nfa.initials()[0]
        assert not nfa.forbidden_matches(state, e("z"))

    def test_leading_neg_guard_active_initially(self):
        nfa = compile_to_nfa(SEQ(NEG("z"), "a"))
        state = nfa.initials()[0]
        assert nfa.forbidden_matches(state, e("z"))

    def test_seq_of_only_neg_rejected(self):
        with pytest.raises(CompileError):
            compile_to_nfa(SEQ(NEG("z")))

    def test_neg_outside_seq_rejected(self):
        with pytest.raises(CompileError):
            compile_to_nfa(NEG("z"))


class TestConjunction:
    def test_and_any_order(self):
        automaton = compile_expr(AND("a", "b"))
        assert run_accepts(automaton, ["a", "b"])
        assert run_accepts(automaton, ["b", "a"])
        assert not run_accepts(automaton, ["a", "a"])

    def test_and_of_sequences(self):
        automaton = compile_expr(AND(SEQ("a", "b"), "c"))
        assert run_accepts(automaton, ["a", "c", "b"])
        assert run_accepts(automaton, ["c", "a", "b"])
        assert not run_accepts(automaton, ["a", "c"])

    def test_shared_event_advances_both(self):
        # One event may satisfy both operands at once.
        automaton = compile_expr(AND("a", "a"))
        assert run_accepts(automaton, ["a"])

    def test_and_inside_seq(self):
        automaton = compile_expr(SEQ("x", AND("a", "b")))
        assert run_accepts(automaton, ["x", "a", "b"])
        assert run_accepts(automaton, ["x", "b", "a"])
        assert not run_accepts(automaton, ["a", "b", "x"])

    def test_and_inside_or(self):
        automaton = compile_expr(OR(AND("a", "b"), "c"))
        assert run_accepts(automaton, ["c"])
        assert run_accepts(automaton, ["b", "a"])

    def test_nested_and(self):
        automaton = compile_expr(AND("a", AND("b", "c")))
        assert run_accepts(automaton, ["c", "a", "b"])

    def test_kleene_over_and_rejected(self):
        with pytest.raises(CompileError):
            compile_expr(KLEENE(AND("a", "b")))

    def test_neg_beside_and_rejected(self):
        with pytest.raises(CompileError):
            compile_expr(SEQ(NEG("z"), AND("a", "b")))

    def test_product_requires_two_operands(self):
        with pytest.raises(ValueError):
            ProductAutomaton([compile_to_nfa(Atom("a"))])


class TestFastPath:
    def test_conj_free_uses_thompson(self):
        from repro.cep.nfa import Nfa

        assert isinstance(compile_expr(SEQ("a", "b")), Nfa)

    def test_conj_uses_product(self):
        assert isinstance(compile_expr(AND("a", "b")), ProductAutomaton)

    def test_seq_with_conj_uses_seq_automaton(self):
        assert isinstance(
            compile_expr(SEQ("x", AND("a", "b"))), SeqAutomaton
        )

    def test_or_with_conj_uses_disj_automaton(self):
        assert isinstance(
            compile_expr(OR(AND("a", "b"), "c")), DisjAutomaton
        )


class TestTypePureFastPath:
    def test_annotated_composite_predicate_uses_general_path(self):
        # A predicate may carry event_type= purely as an annotation for
        # pattern analyses while testing more than the type; the
        # table-driven fast path must not bypass its test.
        from repro.cep.matcher import PatternMatcher
        from repro.cep.patterns import Atom, Pattern
        from repro.cep.predicates import EventPredicate
        from repro.streams.events import Event
        from repro.streams.stream import EventStream

        predicate = EventPredicate(
            lambda e: e.event_type == "A" and (e.attribute("x") or 0) > 0,
            name="A(x>0)",
            event_type="A",
        )
        pattern = Pattern("q", Atom(predicate))
        rejected = EventStream([Event("A", 1.0, attributes={"x": -5})])
        assert len(PatternMatcher(pattern).match_stream(rejected)) == 0
        accepted = EventStream([Event("A", 1.0, attributes={"x": 5})])
        assert len(PatternMatcher(pattern).match_stream(accepted)) == 1

    def test_of_type_predicates_enable_tables(self):
        from repro.cep.nfa import compile_to_nfa
        from repro.cep.patterns import Pattern

        nfa = compile_to_nfa(Pattern.of_types("p", "a", "b").expr)
        assert nfa.type_pure
        (initial,) = nfa.initials()
        assert "a" in nfa.successors_by_type(initial)
