"""Tests for StreamGateway: tenancy, isolation, checkpoint/resume."""

import asyncio

import numpy as np
import pytest

from repro.io import CallbackSink, QueueSource, write_indicator_csv
from repro.mechanisms.accountant import BudgetExceededError
from repro.service import ServiceSpec, StreamGateway, StreamService
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)


def make_stream(seed, n=100):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n, 5)) < 0.4)


def make_spec(seed=7, **overrides):
    kwargs = dict(
        alphabet=ALPHABET,
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        seed=seed,
    )
    kwargs.update(overrides)
    return ServiceSpec(**kwargs)


@pytest.fixture
def csv_specs(tmp_path):
    """Two tenants' specs over distinct csv files."""
    specs = {}
    for name, seed, mech, opts in [
        ("a", 7, "uniform-ppm", {"epsilon": 2.0}),
        ("b", 8, "bd", {"epsilon": 1.0, "w": 10}),
    ]:
        path = str(tmp_path / f"{name}.csv")
        write_indicator_csv(make_stream(seed + 100), path)
        specs[name] = make_spec(
            seed, mechanism=mech, mechanism_options=opts,
            source=f"csv:{path}",
        )
    return specs


class TestTenancy:
    def test_duplicate_tenant_rejected(self, csv_specs):
        gateway = StreamGateway()
        gateway.add_tenant("a", csv_specs["a"])
        with pytest.raises(ValueError, match="already registered"):
            gateway.add_tenant("a", csv_specs["b"])

    def test_empty_name_rejected(self, csv_specs):
        with pytest.raises(ValueError, match="name"):
            StreamGateway().add_tenant("", csv_specs["a"])

    def test_sourceless_tenant_rejected(self):
        with pytest.raises(ValueError, match="no source"):
            StreamGateway().add_tenant("a", make_spec())

    def test_unknown_tenant_lookup(self, csv_specs):
        gateway = StreamGateway()
        gateway.add_tenant("a", csv_specs["a"])
        with pytest.raises(KeyError, match="unknown tenant"):
            gateway.service("nope")

    def test_serving_empty_gateway_rejected(self):
        with pytest.raises(RuntimeError, match="no tenants"):
            asyncio.run(StreamGateway().serve())

    def test_tenant_names_in_registration_order(self, csv_specs):
        gateway = StreamGateway()
        gateway.add_tenant("b", csv_specs["b"])
        gateway.add_tenant("a", csv_specs["a"])
        assert gateway.tenant_names == ["b", "a"]


class TestIsolation:
    def test_per_tenant_budgets_are_independent(self, tmp_path):
        path = str(tmp_path / "s.csv")
        write_indicator_csv(make_stream(1, 40), path)
        # Tenant "small" can afford exactly one ε=2 release; tenant
        # "large" has plenty.  Serving both must charge each ledger
        # separately.
        gateway = StreamGateway()
        gateway.add_tenant(
            "small",
            make_spec(1, source=f"csv:{path}", accounting=2.0),
        )
        gateway.add_tenant(
            "large",
            make_spec(2, source=f"csv:{path}", accounting=100.0),
        )
        gateway.run()
        small = gateway.service("small").accountant
        large = gateway.service("large").accountant
        assert small.remaining() == pytest.approx(0.0)
        assert large.remaining() == pytest.approx(98.0)
        # The exhausted tenant refuses another session; the other works.
        with pytest.raises(BudgetExceededError):
            gateway.service("small").open_session()
        gateway.service("large").open_session()

    def test_seeds_do_not_leak_between_tenants(self, tmp_path):
        # Same data, same seed → identical outputs even when served
        # concurrently with a third, different tenant.
        path = str(tmp_path / "s.csv")
        write_indicator_csv(make_stream(1, 60), path)
        twin_spec = make_spec(5, source=f"csv:{path}")

        solo = StreamGateway()
        solo.add_tenant("twin", twin_spec)
        expected = solo.run()["twin"]

        crowded = StreamGateway()
        crowded.add_tenant("twin", twin_spec)
        crowded.add_tenant(
            "noisy",
            make_spec(
                6,
                source="synthetic:bernoulli:200:3",
                mechanism="event-rr",
                mechanism_options={"epsilon": 0.5},
            ),
        )
        assert crowded.run()["twin"] == expected


class TestQueueAndCallbackTenants:
    def test_live_queue_source_and_callback_sink(self):
        stream = make_stream(42, 30)
        egressed = []

        async def drive():
            queue = asyncio.Queue(maxsize=8)
            gateway = StreamGateway()
            gateway.add_tenant(
                "live",
                make_spec(3, source="queue"),
                source=QueueSource(queue),
                sink=CallbackSink(
                    lambda index, row, answers: egressed.append(index)
                ),
            )

            async def produce():
                for index in range(stream.n_windows):
                    await queue.put(stream.window_types(index))
                await queue.put(None)

            producer = asyncio.ensure_future(produce())
            await gateway.serve()
            await producer
            return gateway.results()

        results = asyncio.run(drive())
        assert len(results["live"]["q"]) == stream.n_windows
        assert egressed == list(range(stream.n_windows))
        # Identical to feeding the same windows in memory.
        alone = asyncio.run(make_spec(3).build().pump(stream))
        assert results["live"] == alone


class TestCheckpointResume:
    def test_sliced_serving_resumes_bit_identically(self, csv_specs):
        uninterrupted = StreamGateway()
        for name, spec in csv_specs.items():
            uninterrupted.add_tenant(name, spec)
        expected = uninterrupted.run()

        gateway = StreamGateway()
        for name, spec in csv_specs.items():
            gateway.add_tenant(name, spec)
        asyncio.run(gateway.serve(max_windows=35))
        checkpoint = gateway.checkpoint()

        # ... the process dies; a fresh gateway resumes mid-stream.
        resumed = StreamGateway.resume(checkpoint)
        assert resumed.tenant_names == list(csv_specs)
        asyncio.run(resumed.serve())
        for name in csv_specs:
            combined = {
                query: gateway.results()[name][query]
                + resumed.results()[name][query]
                for query in expected[name]
            }
            assert combined == expected[name], name

    def test_checkpoint_records_source_offsets(self, csv_specs):
        gateway = StreamGateway()
        for name, spec in csv_specs.items():
            gateway.add_tenant(name, spec)
        asyncio.run(gateway.serve(max_windows=20))
        checkpoint = gateway.checkpoint()
        for name in csv_specs:
            assert checkpoint["tenants"][name]["source_offset"] == 20

    def test_checkpoint_before_serving_rejected(self, csv_specs):
        gateway = StreamGateway()
        gateway.add_tenant("a", csv_specs["a"])
        with pytest.raises(RuntimeError, match="no open session"):
            gateway.checkpoint()

    def test_resumed_csv_sink_appends(self, csv_specs, tmp_path):
        from repro.io import read_indicator_csv

        out = str(tmp_path / "released.csv")
        spec = csv_specs["a"].with_(sink=f"csv:{out}")

        gateway = StreamGateway()
        gateway.add_tenant("a", spec)
        asyncio.run(gateway.serve(max_windows=40))
        checkpoint = gateway.checkpoint()
        resumed = StreamGateway.resume(checkpoint)
        asyncio.run(resumed.serve())

        released = read_indicator_csv(out)
        assert released.n_windows == 100
        # Identical to an uninterrupted run's released stream.
        alone = StreamGateway()
        alone_out = str(tmp_path / "alone.csv")
        alone.add_tenant("a", csv_specs["a"].with_(sink=f"csv:{alone_out}"))
        alone.run()
        assert released == read_indicator_csv(alone_out)

    def test_windows_served_counts(self, csv_specs):
        gateway = StreamGateway()
        for name, spec in csv_specs.items():
            gateway.add_tenant(name, spec)
        asyncio.run(gateway.serve(max_windows=10))
        assert gateway.windows_served() == {"a": 10, "b": 10}


class TestCrossLoopSlicedServing:
    """Sliced serving spans asyncio.run calls: each run() tears down
    its loop (killing drainer tasks), so the next slice must rebuild
    sessions from their quiescent snapshots."""

    def test_two_serve_calls_on_separate_loops(self, csv_specs):
        expected = StreamGateway()
        for name, spec in csv_specs.items():
            expected.add_tenant(name, spec)
        uninterrupted = expected.run()

        gateway = StreamGateway()
        for name, spec in csv_specs.items():
            gateway.add_tenant(name, spec)
        asyncio.run(gateway.serve(max_windows=30))  # loop 1
        asyncio.run(gateway.serve(max_windows=30))  # loop 2
        asyncio.run(gateway.serve())                # loop 3
        assert gateway.results() == uninterrupted

    def test_service_pump_across_loops(self, csv_specs):
        service = csv_specs["b"].build()
        first = asyncio.run(service.pump(max_windows=40))
        second = asyncio.run(service.pump())
        alone = asyncio.run(csv_specs["b"].build().pump())
        for name in alone:
            assert first[name] + second[name] == alone[name]


class TestCancelledPumpConsistency:
    """A cancelled pump must leave sink, session counters and
    checkpoint offsets mutually consistent: every released window is
    egressed, no unreleased window is skipped on resume."""

    def test_cancel_mid_pump_keeps_sink_and_offset_consistent(
        self, tmp_path
    ):
        from repro.io import read_indicator_csv

        path = str(tmp_path / "in.csv")
        stream = make_stream(55, 200)
        write_indicator_csv(stream, path)
        out = str(tmp_path / "out.csv")
        # A paced replay (≈2 ms/window) keeps the pump mid-stream when
        # the cancel lands, whatever the host speed.
        spec = make_spec(9, source=f"replay:{path}:500", sink=f"csv:{out}")

        async def drive():
            service = spec.build()
            task = asyncio.ensure_future(
                service.pump(max_pending=8, max_batch=4)
            )
            await asyncio.sleep(0.08)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return service

        service = asyncio.run(drive())
        session = service.session
        # Quiescent and mutually consistent after the cancel.
        assert session.windows_submitted == session.windows_processed
        assert 0 < session.windows_processed < stream.n_windows
        released = read_indicator_csv(out)
        assert released.n_windows == session.windows_processed
        checkpoint = service.checkpoint()
        assert checkpoint["source_offset"] == session.windows_processed

        # Resume completes the stream; the appended sink equals an
        # uninterrupted run's released output.
        resumed = StreamService.resume(spec, checkpoint)
        asyncio.run(resumed.pump(append_sink=True))
        alone_out = str(tmp_path / "alone.csv")
        alone = spec.with_(sink=f"csv:{alone_out}").build()
        asyncio.run(alone.pump())
        assert read_indicator_csv(out) == read_indicator_csv(alone_out)


class TestResumeEgressConsistency:
    """Review hardening pins: resumed sinks append, queue offsets
    carry across generations, cancelled submits lose no window."""

    def test_direct_resume_appends_to_file_sink(self, tmp_path):
        from repro.io import read_indicator_csv

        path = str(tmp_path / "in.csv")
        write_indicator_csv(make_stream(31, 100), path)
        out = str(tmp_path / "out.csv")
        spec = make_spec(9, source=f"csv:{path}", sink=f"csv:{out}")

        service = spec.build()
        asyncio.run(service.pump(max_windows=50))
        checkpoint = service.checkpoint()
        assert checkpoint["sink_opened"] is True
        resumed = StreamService.resume(spec, checkpoint)
        asyncio.run(resumed.pump())  # no explicit append_sink=

        released = read_indicator_csv(out)
        assert released.n_windows == 100
        alone_out = str(tmp_path / "alone.csv")
        alone = spec.with_(sink=f"csv:{alone_out}").build()
        asyncio.run(alone.pump())
        assert released == read_indicator_csv(alone_out)

    def test_queue_resume_carries_offset_into_next_checkpoint(self):
        stream = make_stream(44, 90)
        spec = make_spec(3, source="queue")

        def feed(indices):
            queue = asyncio.Queue()
            for index in indices:
                queue.put_nowait(stream.window_types(index))
            queue.put_nowait(None)
            return queue

        service = spec.build()
        asyncio.run(service.pump(QueueSource(feed(range(45)))))
        first = service.checkpoint()
        assert first["source_offset"] == 45

        resumed = StreamService.resume(
            spec, first, source=QueueSource(feed(range(45, 90)))
        )
        asyncio.run(resumed.pump())
        second = resumed.checkpoint()
        assert second["source_offset"] == 90
        assert resumed.session.windows_processed == 90

    def test_cancelled_submit_window_is_not_lost_on_reused_source(self):
        stream = make_stream(12, 10)
        spec = make_spec(4, sink="memory")

        async def go():
            service = spec.build()
            session = service.open_async_session(
                max_pending=2, max_batch=1
            )
            # Stall the drainer so the third submit suspends, then
            # cancel the pump mid-submit.
            gate = asyncio.Event()
            original_drain = session._drain

            async def gated_drain():
                await gate.wait()
                await original_drain()

            session._drain = gated_drain
            task = asyncio.ensure_future(service.pump(stream))
            for _ in range(20):
                await asyncio.sleep(0)
            assert not task.done()  # suspended inside submit
            task.cancel()
            gate.set()  # let accepted windows drain for the sink
            with pytest.raises(asyncio.CancelledError):
                await task
            source = service.last_source
            # The cancelled row was pushed back, not dropped.
            assert source.offset == service.session.windows_processed
            # A later pump on the SAME source re-emits it.
            rest = await service.pump()
            return service, rest

        service, _rest = asyncio.run(go())
        assert service.session.windows_processed == stream.n_windows
        result = service.last_sink.result()
        assert result["released"].n_windows == stream.n_windows
        # Released stream identical to an uninterrupted run.
        alone = spec.build()
        asyncio.run(alone.pump(stream))
        assert result["released"] == alone.last_sink.result()["released"]

    def test_cancelled_sinkless_pump_stays_checkpointable(self, tmp_path):
        path = str(tmp_path / "in.csv")
        write_indicator_csv(make_stream(17, 200), path)
        spec = make_spec(9, source=f"replay:{path}:500")

        async def drive():
            service = spec.build()
            task = asyncio.ensure_future(
                service.pump(max_pending=8, max_batch=4)
            )
            await asyncio.sleep(0.08)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return service

        service = asyncio.run(drive())
        session = service.session
        assert session.windows_submitted == session.windows_processed
        checkpoint = service.checkpoint()  # must not be wedged
        assert checkpoint["source_offset"] == session.windows_processed
        resumed = StreamService.resume(spec, checkpoint)
        second = asyncio.run(resumed.pump())
        # Counters are cumulative across restore: the resumed pump
        # answers exactly the windows the cancelled one never drew.
        assert len(second["q"]) == 200 - session.windows_processed
        assert resumed.session.windows_processed == 200


class TestCrossLoopBudgetAccounting:
    def test_sliced_serving_charges_the_budget_once(self, tmp_path):
        # ε=2 cap, ε=2 session charge: the sliced pattern must charge
        # once like an uninterrupted run, not once per rebuilt loop.
        path = str(tmp_path / "s.csv")
        write_indicator_csv(make_stream(3, 90), path)
        spec = make_spec(5, source=f"csv:{path}", accounting=2.0)

        gateway = StreamGateway()
        gateway.add_tenant("t", spec)
        asyncio.run(gateway.serve(max_windows=30))  # loop 1
        asyncio.run(gateway.serve(max_windows=30))  # loop 2 (rebuild)
        asyncio.run(gateway.serve())                # loop 3 (rebuild)
        accountant = gateway.service("t").accountant
        assert accountant.spent() == pytest.approx(2.0)

        alone = StreamGateway()
        alone.add_tenant("t", spec)
        assert gateway.results() == alone.run()


class TestBatchRunSessionSeparation:
    """Batch run() passes are independent of the session's streaming
    position: they never move the checkpointed offset, and egress on a
    resumed service appends rather than truncates."""

    def test_run_does_not_pollute_checkpoint_offset(self, tmp_path):
        path = str(tmp_path / "in.csv")
        write_indicator_csv(make_stream(23, 20), path)
        spec = make_spec(5, source=f"csv:{path}")
        service = spec.build()
        service.run()  # a full batch pass consumes its own source
        service.open_async_session()
        checkpoint = service.checkpoint()
        assert "source_offset" not in checkpoint
        resumed = StreamService.resume(spec, checkpoint)
        answers = asyncio.run(resumed.pump())
        assert len(answers["q"]) == 20  # nothing silently skipped

    def test_resumed_run_appends_to_file_sink(self, tmp_path):
        from repro.io import read_indicator_csv

        path = str(tmp_path / "in.csv")
        write_indicator_csv(make_stream(24, 30), path)
        out = str(tmp_path / "out.csv")
        spec = make_spec(6, source=f"csv:{path}", sink=f"csv:{out}")
        service = spec.build()
        asyncio.run(service.pump(max_windows=10))
        checkpoint = service.checkpoint()
        resumed = StreamService.resume(spec, checkpoint)
        resumed.run()  # an independent batch release over all 30
        # 10 pre-crash pump rows + 30 batch rows, nothing truncated.
        assert read_indicator_csv(out).n_windows == 40

    def test_callback_sink_cannot_corrupt_pump_answers(self):
        stream = make_stream(25, 20)
        spec = make_spec(7)

        def vandal(index, row, answers):
            answers.clear()
            answers["q"] = "CORRUPTED"

        service = spec.build()
        answers = asyncio.run(
            service.pump(stream, sink=CallbackSink(vandal))
        )
        expected = asyncio.run(spec.build().pump(stream))
        assert answers == expected

    def test_pathless_raw_tail_specs_rejected_pointedly(self):
        with pytest.raises(ValueError, match="csv:<path>"):
            make_spec(1, source="csv")
        with pytest.raises(ValueError, match="jsonl:<path>"):
            make_spec(1, sink="jsonl")
        from repro.io import resolve_source

        with pytest.raises(ValueError, match="needs a path"):
            resolve_source("csv:")


class TestElasticity:
    """PR 7: tenant scheduling, rate limits, shed surfacing, scatter."""

    def _declarative_spec(self, seed, n=60):
        return make_spec(
            seed,
            source=(
                f"synthetic:generator=bernoulli,windows={n},"
                f"seed={seed + 100},p=0.4"
            ),
            sink="metrics",
        )

    def test_add_tenant_accepts_tenant_spec(self):
        from repro.service import TenantSpec

        tenant = TenantSpec(
            name="t",
            service=self._declarative_spec(3),
            seed=11,
            budget=8.0,
        )
        gateway = StreamGateway()
        service = gateway.add_tenant(tenant)
        assert gateway.tenant_names == ["t"]
        assert service.spec.seed == 11
        assert service.spec.accounting == 8.0

    def test_tenant_spec_json_round_trip(self):
        from repro.service import TenantSpec

        tenant = TenantSpec(
            name="t",
            service=self._declarative_spec(3),
            seed=11,
            rate_limit=100.0,
            burst=5.0,
        )
        assert TenantSpec.from_json(tenant.to_json()) == tenant
        with pytest.raises(ValueError, match="unknown fields"):
            TenantSpec.from_dict({"name": "t", "bogus": 1})
        with pytest.raises(ValueError, match="burst without"):
            TenantSpec(
                name="t", service=self._declarative_spec(3), burst=2.0
            )

    def test_fleet_from_one_json_document(self):
        import json

        from repro.service import TenantSpec

        document = json.dumps(
            {
                "format": 1,
                "tenants": [
                    TenantSpec(
                        name="a", service=self._declarative_spec(1)
                    ).to_dict(),
                    TenantSpec(
                        name="b", service=self._declarative_spec(2)
                    ).to_dict(),
                ],
            }
        )
        gateway = StreamGateway.from_json(document)
        assert gateway.tenant_names == ["a", "b"]
        results = gateway.run()
        assert len(results["a"]["q"]) == 60
        assert len(results["b"]["q"]) == 60
        # Bit-identical to standing the fleet up by hand.
        reference = StreamGateway()
        reference.add_tenant("a", self._declarative_spec(1))
        reference.add_tenant("b", self._declarative_spec(2))
        assert reference.run() == results
        with pytest.raises(ValueError, match="unknown fields"):
            StreamGateway.from_json('{"format": 1, "tenants": [], "x": 1}')

    def test_rate_limited_tenant_sheds_and_surfaces(self):
        # A frozen clock admits exactly the burst, sheds the rest.
        clock = lambda: 0.0  # noqa: E731
        gateway = StreamGateway()
        gateway.add_tenant(
            "lim",
            self._declarative_spec(5),
            rate_limit=1.0,
            burst=10.0,
            clock=clock,
        )
        results = gateway.run()
        assert len(results["lim"]["q"]) == 10
        assert gateway.shed_windows() == {"lim": 50}
        sink_result = gateway.sink_result("lim")
        assert sink_result["windows"] == 10
        assert sink_result["shed"] == 50
        # The admitted prefix is bit-identical to an unlimited run.
        unlimited = StreamGateway()
        unlimited.add_tenant("lim", self._declarative_spec(5))
        assert (
            results["lim"]["q"] == unlimited.run()["lim"]["q"][:10]
        )

    def test_shed_windows_are_consumed_not_replayed(self):
        """A shed window is spent: resume continues past it."""
        clock = lambda: 0.0  # noqa: E731
        gateway = StreamGateway()
        gateway.add_tenant(
            "lim",
            self._declarative_spec(6),
            rate_limit=1.0,
            burst=5.0,
            clock=clock,
        )
        gateway.run()
        checkpoint = gateway.checkpoint()
        assert checkpoint["rate_limits"]["lim"] == {
            "rate_limit": 1.0,
            "burst": 5.0,
        }
        # All 60 source windows were consumed: 5 answered, 55 shed.
        assert checkpoint["tenants"]["lim"]["source_offset"] == 60
        assert gateway.shed_windows()["lim"] == 55
        resumed = StreamGateway.resume(checkpoint)
        assert resumed._tenants["lim"].rate_limit == 1.0
        resumed.run()
        # Nothing left to serve — shed windows are lost by design.
        assert resumed.results()["lim"]["q"] == []

    def test_serve_scattered_matches_local(self):
        reference = StreamGateway()
        for index, name in enumerate(["a", "b", "c"]):
            reference.add_tenant(name, self._declarative_spec(index))
        expected = reference.run()

        scattered = StreamGateway()
        for index, name in enumerate(["a", "b", "c"]):
            scattered.add_tenant(name, self._declarative_spec(index))
        results = scattered.serve_scattered(slots=2)
        assert results == expected
        assert scattered.windows_served() == {
            "a": 60, "b": 60, "c": 60,
        }
        sink_result = scattered.sink_result("a")
        assert sink_result["windows"] == 60

    def test_scattered_then_local_continuation(self):
        reference = StreamGateway()
        reference.add_tenant("a", self._declarative_spec(9))
        expected = reference.run()

        gateway = StreamGateway()
        gateway.add_tenant("a", self._declarative_spec(9))
        gateway.serve_scattered(slots=1, max_windows=25)
        gateway.run()
        assert gateway.results() == expected

    def test_scattered_rejects_runtime_connectors(self):
        gateway = StreamGateway()
        gateway.add_tenant(
            "live",
            make_spec(3),
            source=make_stream(3, n=20),
        )
        with pytest.raises(ValueError, match="fully declarative"):
            gateway.serve_scattered()

    def test_tenant_scheduler_round_robin(self):
        from repro.service.gateway import TenantScheduler

        scheduler = TenantScheduler(2)
        assert scheduler.assign(["a", "b", "c"]) == [["a", "c"], ["b"]]
        assert TenantScheduler(5).assign(["a"]) == [["a"]]
        with pytest.raises(ValueError, match="positive int"):
            TenantScheduler(0)

    def test_token_bucket_refill(self):
        from repro.service.gateway import TokenBucket

        now = [0.0]
        bucket = TokenBucket(2.0, 3.0, clock=lambda: now[0])
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        now[0] = 1.0  # two tokens accrue at rate 2/s
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        with pytest.raises(ValueError):
            TokenBucket(0.0)
