"""Tests for repro.experiments.runner — mechanism building and scoring."""

import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.conversion import BudgetConverter
from repro.baselines.event_level import EventLevelRR
from repro.baselines.landmark import LandmarkPrivacy
from repro.baselines.user_level import UserLevelRR
from repro.core.ppm import MultiPatternPPM
from repro.experiments.runner import (
    build_mechanism,
    evaluate_mechanism,
    measure_quality,
    sweep,
)


class TestBuildMechanism:
    def test_uniform_builds_one_ppm_per_private_pattern(self, tiny_workload):
        mechanism = build_mechanism("uniform", tiny_workload, 2.0)
        assert isinstance(mechanism, MultiPatternPPM)
        assert len(mechanism.ppms) == len(tiny_workload.private_patterns)
        for ppm in mechanism.ppms:
            assert ppm.epsilon == pytest.approx(2.0)

    def test_adaptive_fits_on_history(self, tiny_workload):
        mechanism = build_mechanism("adaptive", tiny_workload, 2.0)
        assert isinstance(mechanism, MultiPatternPPM)
        for ppm in mechanism.ppms:
            assert ppm.fit_result is not None
            assert ppm.epsilon == pytest.approx(2.0)

    def test_bd_budget_converted(self, tiny_workload):
        mechanism = build_mechanism("bd", tiny_workload, 2.0)
        assert isinstance(mechanism, BudgetDistribution)
        converter = BudgetConverter(tiny_workload.max_private_length)
        assert mechanism.epsilon == pytest.approx(
            converter.bd_native(2.0, tiny_workload.w)
        )

    def test_ba_budget_converted(self, tiny_workload):
        mechanism = build_mechanism("ba", tiny_workload, 2.0)
        assert isinstance(mechanism, BudgetAbsorption)

    def test_landmark_gets_workload_mask(self, tiny_workload):
        mechanism = build_mechanism("landmark", tiny_workload, 2.0)
        assert isinstance(mechanism, LandmarkPrivacy)

    def test_event_and_user_level(self, tiny_workload):
        assert isinstance(
            build_mechanism("event-level", tiny_workload, 2.0), EventLevelRR
        )
        assert isinstance(
            build_mechanism("user-level", tiny_workload, 2.0), UserLevelRR
        )

    def test_unknown_kind_rejected(self, tiny_workload):
        with pytest.raises(ValueError, match="unknown mechanism"):
            build_mechanism("magic", tiny_workload, 2.0)

    def test_invalid_epsilon_rejected(self, tiny_workload):
        with pytest.raises(Exception):
            build_mechanism("uniform", tiny_workload, 0.0)


class TestMeasureQuality:
    def test_trial_count(self, tiny_workload):
        mechanism = build_mechanism("uniform", tiny_workload, 2.0)
        qualities = measure_quality(
            tiny_workload, mechanism, n_trials=4, rng=0
        )
        assert len(qualities) == 4

    def test_deterministic_under_seed(self, tiny_workload):
        mechanism = build_mechanism("uniform", tiny_workload, 2.0)
        a = measure_quality(tiny_workload, mechanism, n_trials=2, rng=5)
        b = measure_quality(tiny_workload, mechanism, n_trials=2, rng=5)
        assert [q.q for q in a] == [q.q for q in b]

    def test_huge_budget_perfect_quality(self, tiny_workload):
        mechanism = build_mechanism("uniform", tiny_workload, 1000.0)
        qualities = measure_quality(
            tiny_workload, mechanism, n_trials=2, rng=0
        )
        for quality in qualities:
            assert quality.q == pytest.approx(1.0, abs=1e-6)


class TestEvaluateMechanism:
    def test_result_fields(self, tiny_workload):
        result = evaluate_mechanism(
            tiny_workload, "uniform", 2.0, n_trials=2, rng=1
        )
        assert result.workload == tiny_workload.name
        assert result.mechanism == "uniform"
        assert result.pattern_epsilon == 2.0
        assert 0.0 <= result.mre <= 1.0
        assert result.n_trials == 2

    def test_pattern_level_beats_bd_here(self, tiny_workload):
        ours = evaluate_mechanism(
            tiny_workload, "uniform", 2.0, n_trials=2, rng=1
        )
        theirs = evaluate_mechanism(
            tiny_workload, "bd", 2.0, n_trials=2, rng=1
        )
        assert ours.mre < theirs.mre

    def test_mre_decreases_with_budget(self, tiny_workload):
        low = evaluate_mechanism(
            tiny_workload, "uniform", 0.5, n_trials=3, rng=1
        )
        high = evaluate_mechanism(
            tiny_workload, "uniform", 8.0, n_trials=3, rng=1
        )
        assert high.mre < low.mre


class TestSweep:
    def test_grid_coverage(self, tiny_workload):
        results = sweep(
            tiny_workload,
            epsilon_grid=(1.0, 2.0),
            mechanisms=("uniform", "bd"),
            n_trials=1,
            rng=0,
        )
        cells = {(r.mechanism, r.pattern_epsilon) for r in results}
        assert cells == {
            ("uniform", 1.0),
            ("uniform", 2.0),
            ("bd", 1.0),
            ("bd", 2.0),
        }
