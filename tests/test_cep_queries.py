"""Tests for repro.cep.queries — continuous queries and answers."""

import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery, QueryAnswer


class TestContinuousQuery:
    def test_construction(self):
        query = ContinuousQuery("q1", Pattern.of_types("p", "a"))
        assert query.name == "q1"

    def test_for_pattern_names_after_pattern(self):
        query = ContinuousQuery.for_pattern(Pattern.of_types("p", "a"))
        assert query.name == "q:p"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ContinuousQuery("", Pattern.of_types("p", "a"))

    def test_non_pattern_rejected(self):
        with pytest.raises(TypeError):
            ContinuousQuery("q", "not-a-pattern")  # type: ignore[arg-type]

    def test_invalid_within_rejected(self):
        with pytest.raises(ValueError):
            ContinuousQuery("q", Pattern.of_types("p", "a"), within=0.0)


class TestQueryAnswer:
    def test_detection_accessors(self):
        answer = QueryAnswer("q", np.array([True, False, True]))
        assert answer.n_windows == 3
        assert answer.detected(0) is True
        assert answer.detected(1) is False
        assert answer.detection_count() == 2

    def test_coerces_to_bool(self):
        answer = QueryAnswer("q", np.array([1, 0, 1]))
        assert answer.detections.dtype == bool
