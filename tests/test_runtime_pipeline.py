"""Tests for the runtime pipeline stages, adapters and executors."""

import numpy as np
import pytest

from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.event_level import EventLevelRR
from repro.baselines.landmark import LandmarkPrivacy
from repro.baselines.user_level import UserLevelRR
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.runtime import (
    BatchExecutor,
    ChunkedExecutor,
    IndicatorExtractor,
    MetricsSink,
    QueryMatcher,
    StreamPipeline,
    WindowStage,
    runtime_mechanism,
)
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import SessionWindows, TumblingWindows


@pytest.fixture
def queries(target_pattern):
    return [ContinuousQuery("q", target_pattern)]


class TestIndicatorExtractor:
    def test_matches_from_window_sets(self, alphabet6):
        windows = [
            {"e1", "e3"},
            set(),
            {"e2"},
            {"e1", "e2", "e3", "e6"},
        ]
        extractor = IndicatorExtractor(alphabet6)
        reference = IndicatorStream.from_window_sets(
            alphabet6, windows, strict=False
        )
        assert extractor.extract(windows) == reference

    def test_strict_rejects_unknown_types(self, alphabet6):
        extractor = IndicatorExtractor(alphabet6, strict=True)
        with pytest.raises(KeyError):
            extractor.extract([{"e1"}, {"nope"}])

    def test_lenient_ignores_unknown_types(self, alphabet6):
        extractor = IndicatorExtractor(alphabet6)
        stream = extractor.extract([{"e1", "nope"}])
        assert stream.window_types(0) == {"e1"}

    def test_empty_input(self, alphabet6):
        assert IndicatorExtractor(alphabet6).extract([]).n_windows == 0


class TestWindowStage:
    def _events(self, spec):
        return EventStream([Event(name, ts) for name, ts in spec])

    @pytest.mark.parametrize("emit_empty", [False, True])
    def test_tumbling_fast_path_matches_assign(self, emit_empty):
        stream = self._events(
            [("a", 0.0), ("b", 0.4), ("a", 2.5), ("c", 7.9), ("b", 8.0)]
        )
        assigner = TumblingWindows(1.0, emit_empty=emit_empty)
        stage = WindowStage(assigner)
        reference = [
            window.event_types() for window in assigner.assign(stream)
        ]
        assert stage.type_sets(stream) == reference

    def test_tumbling_origin_violation(self):
        stream = self._events([("a", 1.0)])
        stage = WindowStage(TumblingWindows(1.0, origin=5.0))
        with pytest.raises(ValueError):
            stage.type_sets(stream)

    def test_general_assigner_falls_back(self):
        stream = self._events([("a", 0.0), ("b", 0.5), ("c", 10.0)])
        assigner = SessionWindows(gap=2.0)
        stage = WindowStage(assigner)
        reference = [
            window.event_types() for window in assigner.assign(stream)
        ]
        assert stage.type_sets(stream) == reference

    def test_rejects_non_assigner(self):
        with pytest.raises(TypeError):
            WindowStage(object())


class TestQueryMatcher:
    def test_answers_match_detect_all(self, alphabet6, stream200, queries):
        matcher = QueryMatcher(alphabet6, queries)
        answers = matcher.answer(stream200.matrix_view())
        expected = stream200.detect_all(["e2", "e3", "e4"])
        assert np.array_equal(answers["q"], expected)

    def test_rejects_non_sequential_pattern(self, alphabet6):
        from repro.cep.patterns import OR

        pattern = Pattern("or", OR("e1", "e2"))
        with pytest.raises(ValueError, match="non-sequential"):
            QueryMatcher(alphabet6, [ContinuousQuery("q", pattern)])


class TestMetricsSink:
    def test_micro_average_and_mre(self):
        sink = MetricsSink(alpha=0.5)
        truth = {"a": np.array([1, 0, 1, 1], bool)}
        released = {"a": np.array([1, 1, 0, 1], bool)}
        sink.update(truth, released)
        quality = sink.quality()
        assert quality.precision == pytest.approx(2 / 3)
        assert quality.recall == pytest.approx(2 / 3)
        assert sink.mre(1.0) == pytest.approx(1 - quality.q)


class TestAdapters:
    def test_identity(self, alphabet6, stream200):
        adapter = runtime_mechanism(None)
        assert adapter.perturb_batch(stream200) is stream200
        stepper = adapter.stepper(alphabet6)
        matrix = stream200.matrix_view()
        assert np.array_equal(stepper.step_block(matrix), matrix)

    def test_batch_only_mechanism_rejected_for_stepping(self, alphabet6):
        class Opaque:
            def perturb(self, stream, rng=None):
                return stream

        adapter = runtime_mechanism(Opaque())
        with pytest.raises(TypeError):
            adapter.stepper(alphabet6)

    def test_missing_perturb_rejected(self):
        with pytest.raises(TypeError):
            runtime_mechanism(object())

    def test_user_level_needs_horizon(self, alphabet6):
        adapter = runtime_mechanism(UserLevelRR(1.0))
        with pytest.raises(TypeError):
            adapter.stepper(alphabet6, rng=0, horizon=None)
        stepper = adapter.stepper(alphabet6, rng=0, horizon=10)
        assert stepper is not None

    def test_flip_stepper_rejects_foreign_elements(self, stream200):
        small = EventAlphabet(["e1", "e2"])
        ppm = UniformPatternPPM(Pattern.of_types("p", "e1", "e3"), 2.0)
        adapter = runtime_mechanism(ppm)
        with pytest.raises(ValueError):
            adapter.stepper(small, rng=0)


MECHANISMS = {
    "uniform": lambda: UniformPatternPPM(
        Pattern.of_types("p", "e1", "e2", "e3"), 2.0
    ),
    "multi": lambda: MultiPatternPPM(
        [
            UniformPatternPPM(Pattern.of_types("p", "e1", "e2"), 2.0),
            UniformPatternPPM(Pattern.of_types("r", "e2", "e5"), 1.0),
        ]
    ),
    "event-level": lambda: EventLevelRR(1.0),
    "user-level": lambda: UserLevelRR(2.0),
    "bd": lambda: BudgetDistribution(1.0, w=10),
}


class TestChunkedMatchesBatch:
    @pytest.mark.parametrize("kind", sorted(MECHANISMS))
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 1000])
    def test_bit_identity(
        self, kind, chunk_size, alphabet6, stream200, queries
    ):
        pipeline = StreamPipeline(
            alphabet6, queries=queries, mechanism=MECHANISMS[kind]()
        )
        batch = BatchExecutor().run(pipeline, stream200, rng=42)
        chunked = ChunkedExecutor(chunk_size).run(pipeline, stream200, rng=42)
        assert chunked.released == batch.released
        assert chunked.original == batch.original
        for name in batch.answers:
            assert np.array_equal(chunked.answers[name], batch.answers[name])
            assert np.array_equal(
                chunked.true_answers[name], batch.true_answers[name]
            )
        assert chunked.quality() == batch.quality()

    def test_landmark_bit_identity(self, alphabet6, stream200, queries):
        mask = stream200.column("e1")
        pipeline = StreamPipeline(
            alphabet6,
            queries=queries,
            mechanism=LandmarkPrivacy(1.0, landmarks=mask),
        )
        batch = BatchExecutor().run(pipeline, stream200, rng=9)
        chunked = ChunkedExecutor(13).run(pipeline, stream200, rng=9)
        assert chunked.released == batch.released

    def test_unmaterialized_keeps_metrics(self, alphabet6, stream200, queries):
        pipeline = StreamPipeline(
            alphabet6, queries=queries, mechanism=MECHANISMS["uniform"]()
        )
        batch = BatchExecutor().run(pipeline, stream200, rng=1)
        chunked = ChunkedExecutor(32, materialize=False).run(
            pipeline, stream200, rng=1
        )
        assert chunked.released is None and chunked.original is None
        assert chunked.quality() == batch.quality()
        assert chunked.n_windows == stream200.n_windows


class TestPipelineSources:
    def test_run_from_events_matches_engine(
        self, alphabet6, queries, target_pattern
    ):
        events = EventStream(
            [
                Event("e2", 0.1),
                Event("e3", 0.2),
                Event("e4", 0.3),
                Event("e2", 1.5),
                Event("e9", 1.6),
            ]
        )
        pipeline = StreamPipeline(
            alphabet6, queries=queries, windower=TumblingWindows(1.0)
        )
        result = pipeline.run(events)
        reference = IndicatorStream.from_event_windows(
            alphabet6, TumblingWindows(1.0).assign(events), strict=False
        )
        assert result.original == reference
        assert list(result.answers["q"]) == [True, False]

    def test_run_from_window_objects(self, alphabet6, queries):
        events = EventStream([Event("e2", 0.0), Event("e3", 0.1)])
        windows = TumblingWindows(1.0).assign(events)
        pipeline = StreamPipeline(alphabet6, queries=queries)
        result = pipeline.run(windows)
        assert result.original.window_types(0) == {"e2", "e3"}

    def test_run_from_type_sets_chunked(self, alphabet6, queries):
        type_sets = [{"e2", "e3", "e4"}, {"e1"}, {"e2", "e3", "e4"}]
        pipeline = StreamPipeline(alphabet6, queries=queries)
        result = pipeline.run(type_sets, executor=ChunkedExecutor(2))
        assert list(result.answers["q"]) == [True, False, True]

    def test_events_without_windower_rejected(self, alphabet6, queries):
        pipeline = StreamPipeline(alphabet6, queries=queries)
        with pytest.raises(ValueError, match="windower"):
            pipeline.run(EventStream([Event("e1", 0.0)]))

    def test_with_mechanism_shares_stages(self, alphabet6, queries):
        pipeline = StreamPipeline(alphabet6, queries=queries)
        clone = pipeline.with_mechanism(MECHANISMS["uniform"]())
        assert clone.matcher is pipeline.matcher
        assert clone.extractor is pipeline.extractor
        assert clone.mechanism is not None and pipeline.mechanism is None


class TestSequentialTraceBookkeeping:
    def test_chunked_run_populates_last_trace(
        self, alphabet6, stream200, queries
    ):
        from repro.cep.engine import CEPEngine

        engine = CEPEngine(alphabet6)
        engine.register_query(queries[0])
        mechanism = BudgetDistribution(1.0, w=5)
        engine.attach_mechanism(mechanism)
        engine.process_indicators(
            stream200, rng=3, executor=ChunkedExecutor(17)
        )
        assert mechanism.last_trace is not None
        assert len(mechanism.last_trace.published) == stream200.n_windows


class TestEngineExecutorPlumbing:
    def test_engine_accepts_chunked_executor(
        self, alphabet6, stream200, private_pattern, target_pattern
    ):
        from repro.cep.engine import CEPEngine

        engine = CEPEngine(alphabet6)
        engine.register_private_pattern(private_pattern)
        engine.register_query(ContinuousQuery("q", target_pattern))
        engine.attach_mechanism(
            UniformPatternPPM(private_pattern, 2.0)
        )
        batch = engine.process_indicators(stream200, rng=5)
        chunked = engine.process_indicators(
            stream200, rng=5, executor=ChunkedExecutor(17)
        )
        assert list(batch.answers["q"].detections) == list(
            chunked.answers["q"].detections
        )
        assert batch.perturbed == chunked.perturbed
