"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
from repro.runtime.shm import leaked_segments
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream


@pytest.fixture(scope="session", autouse=True)
def _no_shared_memory_leaks():
    """Fail the run if any test leaves a ``repro_shm_*`` segment behind.

    The zero-copy shard transport guarantees the parent unlinks every
    segment it creates on every exit path; a name still present under
    ``/dev/shm`` after the suite is a lifecycle regression (and leaked
    host memory).  Pre-existing segments (a concurrent pytest run, a
    crashed earlier session) are excluded so the guard only blames this
    process.
    """
    before = set(leaked_segments())
    yield
    stray = sorted(set(leaked_segments()) - before)
    assert not stray, (
        f"test run leaked shared-memory segments: {stray} — some "
        "SegmentPlane was never closed"
    )


@pytest.fixture
def alphabet6():
    """A six-symbol alphabet e1..e6."""
    return EventAlphabet.numbered(6)


@pytest.fixture
def stream200(alphabet6):
    """A deterministic 200-window indicator stream over e1..e6."""
    rng = np.random.default_rng(42)
    matrix = rng.random((200, 6)) < 0.4
    return IndicatorStream(alphabet6, matrix)


@pytest.fixture
def private_pattern():
    """A private pattern over e1, e2, e3."""
    return Pattern.of_types("private", "e1", "e2", "e3")


@pytest.fixture
def target_pattern():
    """A target pattern overlapping the private one on e2, e3."""
    return Pattern.of_types("target", "e2", "e3", "e4")


@pytest.fixture
def abc_stream():
    """A small event stream over types a, b, c, x."""
    types = ["a", "x", "b", "c", "a", "b", "x", "c"]
    return EventStream(
        [Event(name, float(i)) for i, name in enumerate(types)]
    )


@pytest.fixture
def tiny_workload():
    """A small but realistic synthetic workload (Algorithm 2)."""
    return synthesize_dataset(
        SyntheticConfig(n_windows=150, n_history_windows=100), rng=7
    )
