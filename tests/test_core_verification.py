"""Tests for repro.core.verification — exact DP checking."""


import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.ppm import PatternLevelPPM
from repro.core.uniform import UniformPatternPPM
from repro.core.verification import (
    empirical_flip_rates,
    response_distribution,
    verify_instance_dp,
    verify_single_event_dp,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream


@pytest.fixture
def small_stream():
    alphabet = EventAlphabet(["a", "b", "c", "d"])
    matrix = np.array(
        [
            [1, 0, 1, 0],
            [0, 1, 1, 1],
            [1, 1, 0, 0],
        ],
        dtype=bool,
    )
    return IndicatorStream(alphabet, matrix)


@pytest.fixture
def small_ppm():
    pattern = Pattern.of_types("p", "a", "b")
    return PatternLevelPPM(pattern, BudgetAllocation((1.0, 2.0)))


class TestResponseDistribution:
    def test_sums_to_one(self, small_ppm, small_stream):
        distribution = response_distribution(small_ppm, small_stream, 0)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_enumerates_all_outcomes(self, small_ppm, small_stream):
        distribution = response_distribution(small_ppm, small_stream, 0)
        assert len(distribution) == 4  # 2 protected bits

    def test_truthful_outcome_most_likely(self, small_ppm, small_stream):
        # Window 0 truth for (a, b) is (True, False); with p < 1/2 the
        # truthful response has the largest mass.
        distribution = response_distribution(small_ppm, small_stream, 0)
        assert max(distribution, key=distribution.get) == (True, False)

    def test_factorizes_over_bits(self, small_ppm, small_stream):
        distribution = response_distribution(small_ppm, small_stream, 0)
        flips = small_ppm.flip_probability_by_type()
        # P[(True, False)] = (1-p_a)(1-p_b) given truth (True, False).
        expected = (1 - flips["a"]) * (1 - flips["b"])
        assert distribution[(True, False)] == pytest.approx(expected)


class TestSingleEventVerification:
    def test_holds_and_is_tight(self, small_ppm, small_stream):
        report = verify_single_event_dp(small_ppm, small_stream)
        assert report.holds
        # Worst single-event loss is the largest per-element budget.
        assert report.epsilon_observed == pytest.approx(2.0)
        assert report.epsilon_claimed == pytest.approx(2.0)

    def test_counts_enumeration(self, small_ppm, small_stream):
        report = verify_single_event_dp(small_ppm, small_stream)
        # 3 windows x 2 elements.
        assert report.neighbors_checked == 6

    def test_single_window_restriction(self, small_ppm, small_stream):
        report = verify_single_event_dp(
            small_ppm, small_stream, window_index=1
        )
        assert report.neighbors_checked == 2

    def test_uniform_ppm_single_event_loss_is_share(self, small_stream):
        pattern = Pattern.of_types("p", "a", "b")
        ppm = UniformPatternPPM(pattern, epsilon=4.0)
        report = verify_single_event_dp(ppm, small_stream, window_index=0)
        assert report.epsilon_observed == pytest.approx(2.0)  # ε/m


class TestInstanceVerification:
    def test_theorem1_sum_is_tight(self, small_ppm, small_stream):
        report = verify_instance_dp(small_ppm, small_stream)
        assert report.holds
        assert report.epsilon_observed == pytest.approx(3.0)
        assert report.epsilon_claimed == pytest.approx(3.0)

    def test_repeated_elements_pool(self, small_stream):
        pattern = Pattern.of_types("p", "a", "a")
        ppm = PatternLevelPPM(pattern, BudgetAllocation((1.0, 1.0)))
        report = verify_instance_dp(ppm, small_stream, window_index=0)
        # Both occurrences pool on one column: total ε = 2 on one bit.
        assert report.epsilon_observed == pytest.approx(2.0)

    def test_instance_loss_exceeds_single_event_loss(
        self, small_ppm, small_stream
    ):
        single = verify_single_event_dp(small_ppm, small_stream)
        instance = verify_instance_dp(small_ppm, small_stream)
        assert instance.epsilon_observed >= single.epsilon_observed


class TestEmpiricalFlipRates:
    def test_rates_near_configured(self, small_stream):
        pattern = Pattern.of_types("p", "a", "b")
        ppm = UniformPatternPPM(pattern, epsilon=2.0)
        rates = empirical_flip_rates(
            ppm, small_stream, n_trials=3000, rng=0
        )
        expected = ppm.flip_probability_by_type()
        for element, rate in rates.items():
            assert rate == pytest.approx(expected[element], abs=0.03)

    def test_invalid_trials(self, small_ppm, small_stream):
        with pytest.raises(ValueError):
            empirical_flip_rates(small_ppm, small_stream, n_trials=0)


class TestReportRendering:
    def test_repr_shows_verdict(self, small_ppm, small_stream):
        report = verify_single_event_dp(small_ppm, small_stream)
        assert "holds" in repr(report)
