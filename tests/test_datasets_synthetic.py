"""Tests for repro.datasets.synthetic — Algorithm 2."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    SyntheticConfig,
    synthesize_dataset,
    synthesize_many,
)


class TestSyntheticConfig:
    def test_paper_defaults(self):
        config = SyntheticConfig()
        assert config.n_event_types == 20
        assert config.n_windows == 1000
        assert config.n_patterns == 20
        assert config.pattern_length == 3
        assert config.n_private == 3
        assert config.n_target == 5

    def test_pattern_length_bounded_by_alphabet(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_event_types=2, pattern_length=3)

    def test_role_counts_bounded_by_pool(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_patterns=5, n_private=3, n_target=5)

    def test_non_disjoint_roles_relax_bound(self):
        SyntheticConfig(
            n_patterns=5, n_private=3, n_target=5, disjoint_roles=False
        )


class TestSynthesizeDataset:
    @pytest.fixture
    def workload(self):
        return synthesize_dataset(
            SyntheticConfig(n_windows=200, n_history_windows=100), rng=3
        )

    def test_shapes(self, workload):
        assert workload.stream.n_windows == 200
        assert workload.history.n_windows == 100
        assert len(workload.stream.alphabet) == 20

    def test_role_counts(self, workload):
        assert len(workload.private_patterns) == 3
        assert len(workload.target_patterns) == 5

    def test_patterns_have_three_distinct_elements(self, workload):
        for pattern in workload.private_patterns + workload.target_patterns:
            assert len(pattern.elements) == 3
            assert len(set(pattern.elements)) == 3

    def test_roles_disjoint_by_default(self, workload):
        private_names = {p.name for p in workload.private_patterns}
        target_names = {p.name for p in workload.target_patterns}
        assert not private_names & target_names

    def test_deterministic_under_seed(self):
        config = SyntheticConfig(n_windows=50, n_history_windows=20)
        a = synthesize_dataset(config, rng=9)
        b = synthesize_dataset(config, rng=9)
        assert a.stream == b.stream
        assert [p.elements for p in a.private_patterns] == [
            p.elements for p in b.private_patterns
        ]

    def test_occurrence_rates_match_probabilities_statistically(self):
        # Windows are iid Bernoulli per event type; evaluation and
        # history rates should agree within sampling noise.
        workload = synthesize_dataset(
            SyntheticConfig(n_windows=4000, n_history_windows=4000), rng=13
        )
        eval_rates = workload.stream.occurrence_rates()
        hist_rates = workload.history.occurrence_rates()
        for name in workload.stream.alphabet:
            assert eval_rates[name] == pytest.approx(
                hist_rates[name], abs=0.05
            )

    def test_detection_rule_is_containment(self, workload):
        # Algorithm 2 line 14: detected iff all three events in window.
        pattern = workload.target_patterns[0]
        detections = workload.stream.detect_all(list(pattern.elements))
        matrix = workload.stream.matrix_view()
        columns = workload.stream.alphabet.indices(list(pattern.elements))
        assert np.array_equal(detections, matrix[:, columns].all(axis=1))


class TestSynthesizeMany:
    def test_count(self):
        config = SyntheticConfig(n_windows=30, n_history_windows=10)
        datasets = list(synthesize_many(4, config, rng=1))
        assert len(datasets) == 4

    def test_datasets_are_independent(self):
        config = SyntheticConfig(n_windows=30, n_history_windows=10)
        first, second = list(synthesize_many(2, config, rng=1))
        assert first.stream != second.stream

    def test_reproducible_collection(self):
        config = SyntheticConfig(n_windows=30, n_history_windows=10)
        a = [w.stream for w in synthesize_many(3, config, rng=5)]
        b = [w.stream for w in synthesize_many(3, config, rng=5)]
        assert a == b

    def test_names_enumerated(self):
        config = SyntheticConfig(n_windows=30, n_history_windows=10)
        names = [w.name for w in synthesize_many(2, config, rng=0)]
        assert names == ["synthetic-0", "synthetic-1"]

    def test_invalid_count(self):
        with pytest.raises(Exception):
            list(synthesize_many(0))
