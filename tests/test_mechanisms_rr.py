"""Tests for repro.mechanisms.randomized_response (Definition 5)."""

import math

import numpy as np
import pytest

from repro.mechanisms.randomized_response import (
    RandomizedResponse,
    epsilon_to_flip_probability,
    flip_probability_to_epsilon,
)


class TestBudgetFlipConversion:
    def test_epsilon_zero_is_fair_coin(self):
        assert epsilon_to_flip_probability(0.0) == pytest.approx(0.5)

    def test_large_epsilon_approaches_zero(self):
        assert epsilon_to_flip_probability(20.0) < 1e-8

    def test_round_trip(self):
        for epsilon in (0.1, 0.5, 1.0, 3.0, 8.0):
            p = epsilon_to_flip_probability(epsilon)
            assert flip_probability_to_epsilon(p) == pytest.approx(epsilon)

    def test_known_value(self):
        # p = 1/(1+e), eps = ln((1-p)/p) = 1.
        p = epsilon_to_flip_probability(1.0)
        assert p == pytest.approx(1.0 / (1.0 + math.e))

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            epsilon_to_flip_probability(-1.0)

    def test_flip_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            flip_probability_to_epsilon(0.0)
        with pytest.raises(ValueError):
            flip_probability_to_epsilon(0.6)

    def test_monotone_decreasing(self):
        probabilities = [
            epsilon_to_flip_probability(epsilon)
            for epsilon in (0.0, 0.5, 1.0, 2.0, 5.0)
        ]
        assert probabilities == sorted(probabilities, reverse=True)


class TestRandomizedResponse:
    def test_p_bounds_enforced(self):
        RandomizedResponse(0.5)
        with pytest.raises(ValueError):
            RandomizedResponse(0.0)
        with pytest.raises(ValueError):
            RandomizedResponse(0.51)

    def test_from_epsilon(self):
        mechanism = RandomizedResponse.from_epsilon(2.0)
        assert mechanism.epsilon == pytest.approx(2.0)

    def test_definition5_probabilities(self):
        # Pr(R = j | I = j) = 1 - p; Pr(R = j | I = k) = p.
        mechanism = RandomizedResponse(0.3)
        assert mechanism.truth_probability(True, True) == pytest.approx(0.7)
        assert mechanism.truth_probability(True, False) == pytest.approx(0.3)
        assert mechanism.truth_probability(False, False) == pytest.approx(0.7)

    def test_empirical_flip_rate(self):
        mechanism = RandomizedResponse(0.25)
        rng = np.random.default_rng(0)
        responses = mechanism.respond_vector([True] * 20000, rng=rng)
        flip_rate = 1.0 - responses.mean()
        assert 0.22 < flip_rate < 0.28

    def test_respond_deterministic_under_seed(self):
        mechanism = RandomizedResponse(0.3)
        assert mechanism.respond(True, rng=1) == mechanism.respond(True, rng=1)

    def test_respond_vector_shape(self):
        mechanism = RandomizedResponse(0.3)
        values = np.array([True, False, True])
        assert mechanism.respond_vector(values, rng=0).shape == (3,)

    def test_unbiased_rate_estimate(self):
        mechanism = RandomizedResponse(0.3)
        rng = np.random.default_rng(5)
        truth = rng.random(50000) < 0.4
        responses = mechanism.respond_vector(truth, rng=rng)
        estimate = mechanism.unbiased_rate_estimate(responses)
        assert 0.37 < estimate < 0.43

    def test_estimate_clipped_to_unit_interval(self):
        mechanism = RandomizedResponse(0.49)
        # All-true responses: raw estimate exceeds 1, must clip.
        assert mechanism.unbiased_rate_estimate([True] * 10) == 1.0

    def test_estimate_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomizedResponse(0.3).unbiased_rate_estimate([])

    def test_estimate_rejects_half(self):
        with pytest.raises(ValueError):
            RandomizedResponse(0.5).unbiased_rate_estimate([True])

    def test_epsilon_of_half_is_zero(self):
        assert RandomizedResponse(0.5).epsilon == pytest.approx(0.0)
