"""Tests for repro.io sinks: egress formats, appends, metrics."""

import json

import numpy as np
import pytest

from repro.io import (
    CallbackSink,
    CsvSink,
    JsonlSink,
    MemorySink,
    MetricsSink,
    read_indicator_csv,
    register_sink,
    registered_sinks,
    resolve_sink,
)
from repro.service.registry import UnknownSpecError
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(4)


@pytest.fixture
def stream():
    rng = np.random.default_rng(21)
    return IndicatorStream(ALPHABET, rng.random((30, 4)) < 0.5)


def drain(sink, stream, answers=None, truth=None, *, append=False):
    sink.open(alphabet=ALPHABET, query_names=("q",), append=append)
    matrix = stream.matrix_view()
    for index in range(matrix.shape[0]):
        sink.write(
            index,
            matrix[index],
            {"q": bool(answers[index])} if answers is not None else {},
            {"q": bool(truth[index])} if truth is not None else None,
        )
    sink.close()
    return sink


class TestRegistry:
    def test_builtin_sinks_registered(self):
        for name in ("memory", "csv", "jsonl", "metrics", "callback"):
            assert name in registered_sinks()

    def test_unknown_sink_lists_registered_names(self):
        with pytest.raises(UnknownSpecError) as excinfo:
            resolve_sink("s3:bucket")
        message = str(excinfo.value)
        assert "unknown sink spec 's3'" in message
        for name in registered_sinks():
            assert name in message

    def test_sink_object_passes_through(self):
        sink = MemorySink()
        assert resolve_sink(sink) is sink

    def test_third_party_sink_registers(self, stream):
        writes = []

        @register_sink("test-collect")
        class CollectSink(CallbackSink):
            """Collects written window indices."""

            def __init__(self):
                super().__init__(lambda i, row, answers: writes.append(i))

        try:
            drain(resolve_sink("test-collect"), stream)
            assert writes == list(range(stream.n_windows))
        finally:
            from repro.io.registry import _SINKS

            del _SINKS._factories["test-collect"]
            del _SINKS._canonical["test-collect"]

    def test_unopened_sink_fails_pointedly(self):
        with pytest.raises(RuntimeError, match="not open"):
            MemorySink().write(0, np.zeros(4, dtype=bool), {})


class TestMemorySink:
    def test_collects_stream_and_answers(self, stream):
        answers = [i % 3 == 0 for i in range(stream.n_windows)]
        sink = drain(MemorySink(), stream, answers)
        result = sink.result()
        assert result["released"] == stream
        assert result["answers"]["q"] == answers

    def test_append_keeps_accumulating(self, stream):
        sink = MemorySink()
        drain(sink, stream.slice_windows(0, 10), [True] * 10)
        drain(
            sink,
            stream.slice_windows(10, 30),
            [False] * 20,
            append=True,
        )
        result = sink.result()
        assert result["released"] == stream
        assert result["answers"]["q"] == [True] * 10 + [False] * 20

    def test_fresh_open_resets(self, stream):
        sink = MemorySink()
        drain(sink, stream, [True] * stream.n_windows)
        drain(sink, stream.slice_windows(0, 5), [False] * 5)
        assert sink.result()["released"] == stream.slice_windows(0, 5)

    def test_empty_result(self):
        sink = MemorySink()
        sink.open(alphabet=ALPHABET, query_names=("q",))
        result = sink.result()
        assert result["released"].n_windows == 0
        assert result["answers"]["q"] == []


class TestCsvSink:
    def test_output_is_the_indicator_csv_format(self, stream, tmp_path):
        path = str(tmp_path / "released.csv")
        drain(CsvSink(path), stream)
        assert read_indicator_csv(path) == stream

    def test_append_continues_without_second_header(
        self, stream, tmp_path
    ):
        path = str(tmp_path / "released.csv")
        drain(CsvSink(path), stream.slice_windows(0, 12))
        drain(CsvSink(path), stream.slice_windows(12, 30), append=True)
        assert read_indicator_csv(path) == stream

    def test_append_to_missing_file_starts_fresh(self, stream, tmp_path):
        path = str(tmp_path / "fresh.csv")
        drain(CsvSink(path), stream, append=True)
        assert read_indicator_csv(path) == stream

    def test_write_after_close_rejected(self, tmp_path):
        sink = CsvSink(str(tmp_path / "x.csv"))
        sink.open(alphabet=ALPHABET, query_names=())
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.write(0, np.zeros(4, dtype=bool), {})


class TestJsonlSink:
    def test_writes_types_and_answers(self, stream, tmp_path):
        path = str(tmp_path / "out.jsonl")
        answers = [i % 2 == 0 for i in range(stream.n_windows)]
        drain(JsonlSink(path), stream, answers)
        lines = [
            json.loads(line)
            for line in open(path).read().splitlines()
        ]
        assert len(lines) == stream.n_windows
        assert lines[3] == {
            "window": 3,
            "types": sorted(
                stream.window_types(3),
                key=ALPHABET.index,
            ),
            "answers": {"q": answers[3]},
        }

    def test_round_trips_through_jsonl_source(self, stream, tmp_path):
        from repro.io import JsonlSource

        path = str(tmp_path / "out.jsonl")
        drain(JsonlSink(path), stream)
        reloaded = JsonlSource(path).bind(ALPHABET).indicator_stream()
        assert reloaded == stream


class TestMetricsSink:
    def test_aggregates_confusion_and_quality(self, stream):
        truth = [i % 2 == 0 for i in range(stream.n_windows)]
        answers = list(truth)
        answers[0] = not answers[0]  # one false negative
        answers[1] = not answers[1]  # one false positive
        sink = drain(MetricsSink(), stream, answers, truth)
        result = sink.result()
        counts = result["confusion"]
        assert counts.fn == 1 and counts.fp == 1
        assert counts.total == stream.n_windows
        assert result["windows"] == stream.n_windows
        assert 0 < result["quality"].q < 1
        assert result["mre"] == pytest.approx(1 - result["quality"].q)
        assert set(result["per_query"]) == {"q"}

    def test_perfect_answers_zero_mre(self, stream):
        truth = [i % 2 == 0 for i in range(stream.n_windows)]
        sink = drain(MetricsSink(), stream, truth, truth)
        result = sink.result()
        assert result["quality"].q == 1.0
        assert result["mre"] == 0.0

    def test_wants_truth_and_missing_truth_rejected(self, stream):
        sink = MetricsSink()
        assert sink.wants_truth
        sink.open(alphabet=ALPHABET, query_names=("q",))
        with pytest.raises(ValueError, match="true answers"):
            sink.write(0, stream.matrix_view()[0], {"q": True})

    def test_alpha_weighting(self, stream):
        truth = [True] * stream.n_windows
        answers = [i != 0 for i in range(stream.n_windows)]  # 1 FN
        precision_only = drain(
            MetricsSink(alpha=1.0), stream, answers, truth
        ).result()
        assert precision_only["quality"].q == 1.0  # no false positives

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            MetricsSink(alpha=1.5)


class TestCallbackSink:
    def test_invokes_callable_per_window(self, stream):
        seen = []
        sink = CallbackSink(
            lambda index, row, answers: seen.append(
                (index, row.sum(), answers["q"])
            )
        )
        drain(sink, stream, [True] * stream.n_windows)
        assert len(seen) == stream.n_windows
        assert seen[0][0] == 0 and seen[0][2] is True
        assert sink.result() == {"windows": stream.n_windows}

    def test_unbound_callback_fails_pointedly(self, stream):
        sink = resolve_sink("callback")
        sink.open(alphabet=ALPHABET, query_names=("q",))
        with pytest.raises(ValueError, match="no callable"):
            sink.write(0, stream.matrix_view()[0], {"q": True})

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            CallbackSink("not-a-function")


class TestWindowsWrittenResets:
    def test_fresh_open_resets_the_counter(self, stream):
        sink = MetricsSink()
        truth = [True] * stream.n_windows
        drain(sink, stream, truth, truth)
        drain(sink, stream.slice_windows(0, 5), [True] * 5, [True] * 5)
        result = sink.result()
        assert result["windows"] == 5
        assert result["confusion"].total == 5

    def test_empty_tail_spec_rejected_at_validation(self):
        from repro.io.registry import validate_sink_spec

        with pytest.raises(ValueError, match="csv:<path>"):
            validate_sink_spec("csv:")
