"""Tests for repro.utils.validation — argument checks."""

import math

import pytest

from repro.utils.validation import (
    ValidationError,
    check_fraction,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching(self):
        assert check_type("x", 3, int) == 3

    def test_rejects_mismatch(self):
        with pytest.raises(ValidationError, match="x must be int"):
            check_type("x", "3", int)

    def test_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("eps", 0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive("eps", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("eps", -1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive("eps", float("nan"))

    def test_rejects_inf_by_default(self):
        with pytest.raises(ValidationError):
            check_positive("eps", math.inf)

    def test_allows_inf_when_asked(self):
        assert check_positive("eps", math.inf, allow_inf=True) == math.inf

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive("eps", True)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive("eps", "1.0")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValidationError):
            check_probability("p", value)

    def test_fraction_alias(self):
        assert check_fraction("f", 0.25) == 0.25


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_outside_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 3.0, 1.0, 2.0)


class TestIntChecks:
    def test_positive_int(self):
        assert check_positive_int("n", 3) == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int("n", 0)

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int("n", 3.0)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int("n", True)

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int("n", 0) == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int("n", -1)


class TestErrorMessages:
    def test_message_names_parameter(self):
        with pytest.raises(ValidationError, match="epsilon"):
            check_positive("epsilon", -2)

    def test_message_includes_value(self):
        with pytest.raises(ValidationError, match="-2"):
            check_positive("epsilon", -2)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
