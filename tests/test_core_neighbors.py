"""Tests for repro.core.neighbors — Definitions 1-3."""

import pytest

from repro.cep.matcher import PatternMatch
from repro.cep.patterns import Pattern
from repro.core.neighbors import (
    are_in_pattern_neighbors,
    are_pattern_level_neighbors,
    are_windowed_neighbors,
    differing_positions,
    enumerate_in_pattern_neighbors,
    enumerate_windowed_neighbors,
    instance_matches_type,
    windowed_instance_distance,
)
from repro.streams.events import Event


def match_of(*types):
    return PatternMatch(
        "p", tuple(Event(t, float(i)) for i, t in enumerate(types))
    )


class TestInPatternNeighbors:
    def test_single_difference_is_neighbor(self):
        assert are_in_pattern_neighbors(("a", "b", "c"), ("a", "x", "c"))

    def test_identical_not_neighbors(self):
        assert not are_in_pattern_neighbors(("a", "b"), ("a", "b"))

    def test_two_differences_not_neighbors(self):
        assert not are_in_pattern_neighbors(("a", "b"), ("x", "y"))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            are_in_pattern_neighbors(("a",), ("a", "b"))

    def test_works_on_pattern_matches(self):
        assert are_in_pattern_neighbors(
            match_of("a", "b"), match_of("a", "z")
        )

    def test_differing_positions(self):
        assert differing_positions(("a", "b", "c"), ("a", "x", "c")) == [1]


class TestInstanceMatchesType:
    def test_membership_by_element_types(self):
        pattern = Pattern.of_types("p", "a", "b")
        assert instance_matches_type(("a", "b"), pattern)
        assert not instance_matches_type(("a", "x"), pattern)

    def test_requires_element_list(self):
        from repro.cep.patterns import OR

        with pytest.raises(ValueError):
            instance_matches_type(("a",), Pattern("p", OR("a", "b")))


class TestPatternLevelNeighbors:
    @pytest.fixture
    def pattern(self):
        return Pattern.of_types("p", "a", "b")

    def test_one_instance_differs_in_one_element(self, pattern):
        first = [("a", "b"), ("c", "d")]
        second = [("a", "x"), ("c", "d")]
        assert are_pattern_level_neighbors(first, second, pattern)

    def test_identical_streams_not_neighbors(self, pattern):
        stream = [("a", "b"), ("c", "d")]
        assert not are_pattern_level_neighbors(stream, stream, pattern)

    def test_two_differing_instances_not_neighbors(self, pattern):
        first = [("a", "b"), ("a", "b")]
        second = [("a", "x"), ("a", "y")]
        assert not are_pattern_level_neighbors(first, second, pattern)

    def test_differing_instance_must_be_of_protected_type(self, pattern):
        # The changed instance is (c, d) — not of type p.
        first = [("a", "b"), ("c", "d")]
        second = [("a", "b"), ("c", "x")]
        assert not are_pattern_level_neighbors(first, second, pattern)

    def test_either_side_may_match_the_type(self, pattern):
        # The instance matches p *after* the change.
        first = [("a", "x"), ("c", "d")]
        second = [("a", "b"), ("c", "d")]
        assert are_pattern_level_neighbors(first, second, pattern)

    def test_length_mismatch_not_neighbors(self, pattern):
        assert not are_pattern_level_neighbors(
            [("a", "b")], [("a", "b"), ("c", "d")], pattern
        )

    def test_instance_length_change_not_neighbors(self, pattern):
        assert not are_pattern_level_neighbors(
            [("a", "b")], [("a", "b", "c")], pattern
        )


class TestEnumeration:
    def test_enumerate_in_pattern_neighbors_count(self):
        # 2 positions x 2 alternative symbols = 4 neighbours.
        neighbors = list(
            enumerate_in_pattern_neighbors(("a", "b"), ["a", "b", "c"])
        )
        assert len(neighbors) == 4
        assert ("c", "b") in neighbors
        assert ("a", "c") in neighbors

    def test_all_enumerated_are_neighbors(self):
        original = ("a", "b", "c")
        for neighbor in enumerate_in_pattern_neighbors(
            original, ["a", "b", "c", "d"]
        ):
            assert are_in_pattern_neighbors(original, neighbor)


class TestWindowedNeighbors:
    def test_flip_on_pattern_column_is_neighbor(
        self, stream200, private_pattern
    ):
        neighbor = stream200.flip(3, "e2")
        assert are_windowed_neighbors(stream200, neighbor, private_pattern)

    def test_flip_on_other_column_is_not(self, stream200, private_pattern):
        neighbor = stream200.flip(3, "e5")
        assert not are_windowed_neighbors(stream200, neighbor, private_pattern)

    def test_two_flips_are_not_neighbors(self, stream200, private_pattern):
        neighbor = stream200.flip(3, "e1").flip(4, "e2")
        assert not are_windowed_neighbors(stream200, neighbor, private_pattern)

    def test_identical_streams_not_neighbors(self, stream200, private_pattern):
        assert not are_windowed_neighbors(
            stream200, stream200, private_pattern
        )

    def test_instance_distance(self, stream200, private_pattern):
        assert windowed_instance_distance(
            stream200, stream200, private_pattern
        ) == 0
        flipped_all = stream200
        for element in ("e1", "e2", "e3"):
            flipped_all = flipped_all.flip(7, element)
        assert windowed_instance_distance(
            stream200, flipped_all, private_pattern
        ) == 3

    def test_enumerate_windowed_neighbors_single_window(
        self, stream200, private_pattern
    ):
        neighbors = list(
            enumerate_windowed_neighbors(
                stream200, private_pattern, window_index=0
            )
        )
        # One per distinct pattern element.
        assert len(neighbors) == 3
        for neighbor in neighbors:
            assert are_windowed_neighbors(stream200, neighbor, private_pattern)

    def test_enumerate_handles_repeated_elements(self, stream200):
        pattern = Pattern.of_types("rep", "e1", "e1")
        neighbors = list(
            enumerate_windowed_neighbors(stream200, pattern, window_index=0)
        )
        assert len(neighbors) == 1  # repeated type shares one column
