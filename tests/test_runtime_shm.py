"""Shared-memory segment lifecycle: no leaks on any executor path.

The zero-copy transport's contract is that the parent — and only the
parent — owns segment lifetime: every ``repro_shm_*`` segment a run
creates is closed *and unlinked* before ``run()`` returns, whether the
run succeeds, a worker raises mid-shard, or the pool tears down early.
These tests pin that contract directly against ``/dev/shm``, plus the
descriptor/plane/attach primitives it is built from.

Worker failures are injected by monkeypatching the worker-side task
helpers (``_seek_task`` / ``_replay_task``): the process pool forks
after the patch, so the children inherit the exploding version while
the submitted entry points still pickle by reference.
"""

import pickle

import numpy as np
import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.uniform import UniformPatternPPM
from repro.runtime import BatchExecutor, ShardedExecutor, StreamPipeline
from repro.runtime.shm import (
    SEGMENT_PREFIX,
    ArrayDescriptor,
    SegmentPlane,
    attach,
    leaked_segments,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(6)
QUERIES = [
    ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e3")),
    ContinuousQuery("q2", Pattern.of_types("q2", "e2")),
]


def make_pipeline(mechanism=None):
    if mechanism is None:
        mechanism = UniformPatternPPM(Pattern.of_types("p", "e1", "e2"), 1.0)
    return StreamPipeline(ALPHABET, queries=QUERIES, mechanism=mechanism)


def make_stream(n_windows, seed=5):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n_windows, 6)) < 0.3)


def _boom(*args, **kwargs):
    raise RuntimeError("worker exploded mid-shard")


class TestArrayDescriptor:
    def test_nbytes(self):
        descriptor = ArrayDescriptor("seg", "|b1", (100, 6))
        assert descriptor.nbytes == 600
        assert ArrayDescriptor("seg", "<f8", (3,)).nbytes == 24
        assert ArrayDescriptor("seg", "<i4", ()).nbytes == 4
        assert ArrayDescriptor("seg", "<f8", (0, 6)).nbytes == 0

    def test_pickles_small_and_round_trips(self):
        # The descriptor IS the wire format: its pickled size must not
        # scale with the array it describes.
        descriptor = ArrayDescriptor("repro_shm_x", "|b1", (10**9, 64))
        payload = pickle.dumps(descriptor)
        assert len(payload) < 200
        assert pickle.loads(payload) == descriptor


class TestSegmentPlane:
    def test_share_view_round_trip(self):
        array = np.arange(24, dtype=np.float64).reshape(4, 6)
        with SegmentPlane() as plane:
            descriptor = plane.share(array)
            assert descriptor.segment.startswith(SEGMENT_PREFIX)
            assert descriptor.shape == (4, 6)
            view = plane.view(descriptor)
            assert np.array_equal(view, array)
            # a view, not a copy: writes land in the shared pages
            view[0, 0] = -1.0
            assert plane.view(descriptor)[0, 0] == -1.0
        assert leaked_segments() == ()

    def test_close_unlinks_every_segment(self):
        plane = SegmentPlane()
        names = [
            plane.allocate((10, 3), np.bool_).segment for _ in range(3)
        ]
        assert set(names) <= set(leaked_segments())
        plane.close()
        assert len(plane) == 0
        assert not set(names) & set(leaked_segments())

    def test_close_is_idempotent(self):
        plane = SegmentPlane()
        plane.allocate((5,), np.float64)
        plane.close()
        plane.close()
        assert leaked_segments() == ()

    def test_close_runs_on_exception(self):
        with pytest.raises(RuntimeError):
            with SegmentPlane() as plane:
                descriptor = plane.allocate((8, 2), np.int64)
                raise RuntimeError("mid-run failure")
        assert descriptor.segment not in leaked_segments()

    def test_degenerate_shapes_are_mappable(self):
        with SegmentPlane() as plane:
            empty = plane.view(plane.allocate((0, 6), np.bool_))
            assert empty.shape == (0, 6)
            scalar = plane.view(plane.allocate((), np.int32))
            assert scalar.shape == ()
        assert leaked_segments() == ()


class TestAttach:
    def test_attach_views_shared_pages(self):
        array = np.arange(12, dtype=np.int64).reshape(3, 4)
        with SegmentPlane() as plane:
            descriptor = plane.share(array)
            attachment = attach(descriptor)
            with attachment as view:
                assert np.array_equal(view, array)
                view[2, 3] = 99
            assert attachment.array is None
            # the write crossed the attachment into the parent's view
            assert plane.view(descriptor)[2, 3] == 99
        assert leaked_segments() == ()

    def test_missing_segment_raises(self):
        descriptor = ArrayDescriptor("repro_shm_never_created", "|b1", (4,))
        with pytest.raises(FileNotFoundError):
            with attach(descriptor):
                pass


class TestExecutorLifecycle:
    def test_no_leak_on_success(self):
        executor = ShardedExecutor(4, backend="process")
        result = executor.run(make_pipeline(), make_stream(257), rng=42)
        assert result.n_windows == 257
        assert leaked_segments() == ()

    def test_no_leak_when_worker_raises_mid_shard(self, monkeypatch):
        import repro.runtime.sharding as sharding

        monkeypatch.setattr(sharding, "_seek_task", _boom)
        executor = ShardedExecutor(4, backend="process")
        with pytest.raises(RuntimeError, match="worker exploded"):
            executor.run(make_pipeline(), make_stream(200), rng=42)
        assert leaked_segments() == ()

    def test_no_leak_when_replay_worker_raises(self, monkeypatch):
        import repro.runtime.sharding as sharding

        monkeypatch.setattr(sharding, "_replay_task", _boom)
        executor = ShardedExecutor(2, backend="process")
        pipeline = make_pipeline(BudgetAbsorption(1.0, w=4))
        with pytest.raises(RuntimeError, match="worker exploded"):
            executor.run(pipeline, make_stream(60), rng=1)
        assert leaked_segments() == ()

    def test_no_leak_on_checkpointed_success(self):
        executor = ShardedExecutor(2, backend="process")
        pipeline = make_pipeline(BudgetAbsorption(1.0, w=4))
        batch = BatchExecutor().run(pipeline, make_stream(60), rng=1)
        sharded = executor.run(pipeline, make_stream(60), rng=1)
        assert sharded.released == batch.released
        assert leaked_segments() == ()

    def test_copy_opt_out_matches_zero_copy(self):
        pipeline = make_pipeline()
        stream = make_stream(150)
        batch = BatchExecutor().run(pipeline, stream, rng=9)
        for zero_copy in (True, False):
            executor = ShardedExecutor(
                3, backend="process", zero_copy=zero_copy
            )
            assert executor.uses_zero_copy is zero_copy
            result = executor.run(pipeline, stream, rng=9)
            assert result.released == batch.released
            assert result.quality() == batch.quality()
        assert leaked_segments() == ()

    def test_thread_backend_bypasses_shared_memory(self):
        # Threads share the parent's address space already; forcing
        # zero_copy=True must not create segments for them.
        executor = ShardedExecutor(
            2, backend="thread", zero_copy=True, measure_transport=True
        )
        assert executor.uses_zero_copy is False
        result = executor.run(make_pipeline(), make_stream(100), rng=4)
        assert result.n_windows == 100
        assert executor.last_transport.zero_copy is False
        assert executor.last_transport.bytes_pickled == 0
        assert leaked_segments() == ()

    def test_transport_measurement(self):
        pipeline = make_pipeline()
        stream = make_stream(400)
        stats = {}
        for name, zero_copy in (("zerocopy", True), ("copy", False)):
            executor = ShardedExecutor(
                4,
                backend="process",
                zero_copy=zero_copy,
                measure_transport=True,
            )
            executor.run(pipeline, stream, rng=8)
            stats[name] = executor.last_transport
        assert stats["zerocopy"].zero_copy
        assert not stats["copy"].zero_copy
        # descriptors are constant-size; matrix slices scale with the
        # stream — at 400 windows the gap is already decisive
        assert (
            stats["zerocopy"].bytes_pickled < stats["copy"].bytes_pickled
        )
        assert leaked_segments() == ()
