"""Tests for repro.utils.rng — deterministic randomness plumbing."""

import numpy as np
import pytest

from repro.utils.rng import (
    bernoulli,
    bernoulli_vector,
    derive_rng,
    ensure_rng,
    spawn_rngs,
    stable_subsample,
)


class TestEnsureRng:
    def test_none_gives_default_seeded_generator(self):
        first = ensure_rng(None).random()
        second = ensure_rng(None).random()
        assert first == second

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert ensure_rng(generator) is generator

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        assert ensure_rng(np.int64(5)).random() == ensure_rng(5).random()


class TestDeriveRng:
    def test_same_tokens_same_stream(self):
        a = derive_rng(1, "alpha", 3).random()
        b = derive_rng(1, "alpha", 3).random()
        assert a == b

    def test_different_tokens_differ(self):
        a = derive_rng(1, "alpha").random()
        b = derive_rng(1, "beta").random()
        assert a != b

    def test_different_parents_differ(self):
        a = derive_rng(1, "alpha").random()
        b = derive_rng(2, "alpha").random()
        assert a != b

    def test_int_and_str_tokens_allowed(self):
        derive_rng(0, "x", 5, "y", 0)

    def test_bad_token_type_rejected(self):
        with pytest.raises(TypeError):
            derive_rng(0, 1.5)  # type: ignore[arg-type]

    def test_derivation_does_not_disturb_parent_reuse(self):
        # Deriving from a seed twice must not change either child.
        first = derive_rng(9, "a").random()
        derive_rng(9, "b")
        second = derive_rng(9, "a").random()
        assert first == second


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 3)
        draws = {round(child.random(), 12) for child in children}
        assert len(draws) == 3

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestBernoulli:
    def test_extremes(self):
        generator = np.random.default_rng(0)
        assert bernoulli(generator, 1.0) is True
        assert bernoulli(generator, 0.0) is False

    def test_out_of_range_rejected(self):
        generator = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bernoulli(generator, 1.5)

    def test_empirical_rate(self):
        generator = np.random.default_rng(1)
        draws = sum(bernoulli(generator, 0.3) for _ in range(5000))
        assert 0.25 < draws / 5000 < 0.35

    def test_vector_shape_and_rate(self):
        generator = np.random.default_rng(2)
        draws = bernoulli_vector(generator, [0.5] * 4000)
        assert draws.shape == (4000,)
        assert 0.45 < draws.mean() < 0.55

    def test_vector_empty(self):
        generator = np.random.default_rng(0)
        assert bernoulli_vector(generator, []).size == 0

    def test_vector_out_of_range_rejected(self):
        generator = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bernoulli_vector(generator, [0.5, 2.0])


class TestStableSubsample:
    def test_fraction_zero_is_empty(self):
        assert stable_subsample(0, [1, 2, 3], 0.0) == []

    def test_fraction_one_is_everything(self):
        assert stable_subsample(0, [1, 2, 3], 1.0) == [1, 2, 3]

    def test_preserves_order(self):
        sample = stable_subsample(3, list(range(100)), 0.3)
        assert sample == sorted(sample)

    def test_deterministic(self):
        a = stable_subsample(5, list(range(50)), 0.5)
        b = stable_subsample(5, list(range(50)), 0.5)
        assert a == b

    def test_at_least_one_when_positive_fraction(self):
        assert len(stable_subsample(0, [1, 2, 3], 0.01)) == 1

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            stable_subsample(0, [1], 1.5)
