"""Tests for repro.datasets.workload — the workload bundle."""

import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.datasets.workload import Workload
from repro.streams.indicator import EventAlphabet, IndicatorStream


@pytest.fixture
def parts(alphabet6, stream200):
    history = stream200.slice_windows(0, 50)
    evaluation = stream200.slice_windows(50, 200)
    private = Pattern.of_types("private", "e1", "e2")
    target = Pattern.of_types("target", "e2", "e3")
    return evaluation, history, private, target


class TestConstruction:
    def test_valid_workload(self, parts):
        evaluation, history, private, target = parts
        workload = Workload(
            name="w",
            stream=evaluation,
            history=history,
            private_patterns=[private],
            target_patterns=[target],
        )
        assert workload.primary_private is private

    def test_requires_patterns(self, parts):
        evaluation, history, private, target = parts
        with pytest.raises(ValueError):
            Workload("w", evaluation, history, [], [target])
        with pytest.raises(ValueError):
            Workload("w", evaluation, history, [private], [])

    def test_alphabet_mismatch_rejected(self, parts):
        evaluation, _history, private, target = parts
        other = IndicatorStream(
            EventAlphabet(["x"]), np.zeros((3, 1), dtype=bool)
        )
        with pytest.raises(ValueError):
            Workload("w", evaluation, other, [private], [target])

    def test_pattern_outside_alphabet_rejected(self, parts):
        evaluation, history, private, _target = parts
        stranger = Pattern.of_types("t", "zz")
        with pytest.raises(ValueError):
            Workload("w", evaluation, history, [private], [stranger])


class TestDerivedProperties:
    @pytest.fixture
    def workload(self, parts):
        evaluation, history, private, target = parts
        other_private = Pattern.of_types("other", "e5", "e6", "e4")
        return Workload(
            name="w",
            stream=evaluation,
            history=history,
            private_patterns=[private, other_private],
            target_patterns=[target],
        )

    def test_max_private_length(self, workload):
        assert workload.max_private_length == 3

    def test_private_elements_union(self, workload):
        assert set(workload.private_elements()) == {
            "e1", "e2", "e5", "e6", "e4",
        }

    def test_landmark_mask_matches_private_columns(self, workload):
        mask = workload.landmark_mask()
        expected = np.zeros(workload.stream.n_windows, dtype=bool)
        for element in workload.private_elements():
            expected |= workload.stream.column(element)
        assert np.array_equal(mask, expected)

    def test_most_overlapping_private(self, workload):
        # "private" shares e2 with the target; "other" shares e4.  Both
        # share one element; ties break to the first.
        assert workload.most_overlapping_private().name == "private"

    def test_overlap_summary(self, workload):
        summary = workload.overlap_summary()
        assert summary["any_overlap"]
        assert "e2" in summary["shared_by_target"]["target"]

    def test_describe_mentions_counts(self, workload):
        text = workload.describe()
        assert "150" in text and "50" in text
