"""Tests for repro.cep.matcher — run-based pattern matching."""

import pytest

from repro.cep.matcher import PatternMatch, PatternMatcher, PatternStream, match_pattern
from repro.cep.patterns import AND, KLEENE, NEG, Pattern, SEQ
from repro.streams.events import Event
from repro.streams.stream import EventStream


def stream_of(types):
    return EventStream([Event(t, float(i)) for i, t in enumerate(types)])


class TestBasicMatching:
    def test_simple_sequence(self):
        matches = match_pattern(
            Pattern.of_types("p", "a", "b"), stream_of(["a", "b"])
        )
        assert len(matches) == 1
        assert matches[0].element_types() == ("a", "b")

    def test_skip_till_any_skips_noise(self):
        matches = match_pattern(
            Pattern.of_types("p", "a", "b"), stream_of(["a", "x", "x", "b"])
        )
        assert len(matches) == 1

    def test_all_combinations_found(self):
        # Two a's and one b: both (a1, b) and (a2, b) match.
        matches = match_pattern(
            Pattern.of_types("p", "a", "b"), stream_of(["a", "a", "b"])
        )
        assert len(matches) == 2

    def test_no_match_on_wrong_order(self):
        matches = match_pattern(
            Pattern.of_types("p", "a", "b"), stream_of(["b", "a"])
        )
        assert len(matches) == 0

    def test_single_event_pattern(self):
        matches = match_pattern(
            Pattern.of_types("p", "a"), stream_of(["x", "a", "a"])
        )
        assert len(matches) == 2

    def test_duplicate_matches_suppressed(self):
        # The same consumed tuple must be emitted once even if several
        # runs reach it.
        matches = match_pattern(
            Pattern.of_types("p", "a", "b", "c"),
            stream_of(["a", "b", "c"]),
        )
        assert len(matches) == 1


class TestStrictContiguity:
    def test_strict_requires_adjacency(self):
        pattern = Pattern.of_types("p", "a", "b")
        assert (
            len(
                match_pattern(
                    pattern, stream_of(["a", "x", "b"]), contiguity="strict"
                )
            )
            == 0
        )
        assert (
            len(
                match_pattern(
                    pattern, stream_of(["a", "b"]), contiguity="strict"
                )
            )
            == 1
        )

    def test_strict_can_start_anywhere(self):
        pattern = Pattern.of_types("p", "a", "b")
        matches = match_pattern(
            pattern, stream_of(["x", "a", "b"]), contiguity="strict"
        )
        assert len(matches) == 1

    def test_invalid_contiguity_rejected(self):
        with pytest.raises(ValueError):
            PatternMatcher(Pattern.of_types("p", "a"), contiguity="bogus")


class TestWithinWindow:
    def test_within_prunes_stale_runs(self):
        pattern = Pattern.of_types("p", "a", "b")
        events = EventStream([Event("a", 0.0), Event("b", 100.0)])
        assert len(PatternMatcher(pattern, within=10.0).feed(events)) == 0
        assert len(PatternMatcher(pattern, within=200.0).feed(events)) == 1

    def test_within_boundary_inclusive(self):
        pattern = Pattern.of_types("p", "a", "b")
        events = EventStream([Event("a", 0.0), Event("b", 10.0)])
        assert len(PatternMatcher(pattern, within=10.0).feed(events)) == 1

    def test_invalid_within_rejected(self):
        with pytest.raises(ValueError):
            PatternMatcher(Pattern.of_types("p", "a"), within=0.0)


class TestNegation:
    def test_negated_event_kills_run(self):
        pattern = Pattern("p", SEQ("a", NEG("z"), "b"))
        assert len(match_pattern(pattern, stream_of(["a", "z", "b"]))) == 0
        assert len(match_pattern(pattern, stream_of(["a", "q", "b"]))) == 1

    def test_consuming_event_beats_guard(self):
        # If the same event both violates a guard and advances the run,
        # the consuming interpretation wins (standard CEP negation).
        pattern = Pattern("p", SEQ("a", NEG("b"), "b"))
        matches = match_pattern(pattern, stream_of(["a", "b"]))
        assert len(matches) == 1

    def test_guard_only_applies_between_neighbours(self):
        pattern = Pattern("p", SEQ("a", NEG("z"), "b", "c"))
        # z after b is harmless.
        assert len(match_pattern(pattern, stream_of(["a", "b", "z", "c"]))) == 1


class TestKleeneMatching:
    def test_kleene_counts(self):
        pattern = Pattern("p", KLEENE("a", 2, 3))
        matches = match_pattern(pattern, stream_of(["a", "a", "a"]))
        # (a1,a2), (a2,a3), (a1,a3), (a1,a2,a3)
        assert len(matches) == 4

    def test_kleene_in_sequence(self):
        pattern = Pattern("p", SEQ("x", KLEENE("a", 2, 2)))
        matches = match_pattern(pattern, stream_of(["x", "a", "a"]))
        assert len(matches) == 1


class TestConjunctionMatching:
    def test_and_matches_any_interleaving(self):
        pattern = Pattern("p", AND(SEQ("a", "b"), "c"))
        assert len(match_pattern(pattern, stream_of(["a", "c", "b"]))) >= 1
        assert len(match_pattern(pattern, stream_of(["c", "a", "b"]))) >= 1
        assert len(match_pattern(pattern, stream_of(["a", "b"]))) == 0


class TestMatcherState:
    def test_reset_clears_runs_and_memory(self):
        matcher = PatternMatcher(Pattern.of_types("p", "a", "b"))
        matcher.process(Event("a", 0.0))
        assert matcher.active_runs > 0
        matcher.reset()
        assert matcher.active_runs == 0
        # After reset the same events match again.
        matcher.process(Event("a", 1.0))
        assert len(matcher.process(Event("b", 2.0))) == 1

    def test_max_active_runs_caps_state(self):
        matcher = PatternMatcher(
            Pattern.of_types("p", "a", "b"), max_active_runs=5
        )
        for i in range(100):
            matcher.process(Event("a", float(i)))
        assert matcher.active_runs <= 5

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            PatternMatcher(Pattern.of_types("p", "a"), max_active_runs=0)


class TestPatternMatchObject:
    def test_span_and_bounds(self):
        match = PatternMatch(
            "p", (Event("a", 1.0), Event("b", 4.0))
        )
        assert match.start == 1.0
        assert match.end == 4.0
        assert match.span == 3.0
        assert len(match) == 2

    def test_element_types(self):
        match = PatternMatch("p", (Event("a", 0.0), Event("b", 1.0)))
        assert match.element_types() == ("a", "b")


class TestPatternStream:
    def test_of_pattern_filters(self):
        stream = PatternStream(
            [
                PatternMatch("p", (Event("a", 0.0),)),
                PatternMatch("q", (Event("b", 1.0),)),
            ]
        )
        assert len(stream.of_pattern("p")) == 1

    def test_overlapping_pairs(self):
        shared = Event("a", 0.0)
        stream = PatternStream(
            [
                PatternMatch("p", (shared, Event("b", 1.0))),
                PatternMatch("q", (shared, Event("c", 2.0))),
                PatternMatch("r", (Event("d", 3.0),)),
            ]
        )
        pairs = stream.overlapping_pairs()
        assert len(pairs) == 1
        assert {pairs[0][0].pattern_name, pairs[0][1].pattern_name} == {"p", "q"}

    def test_indexing(self):
        stream = PatternStream([PatternMatch("p", (Event("a", 0.0),))])
        assert stream[0].pattern_name == "p"
