"""Tests for repro.streams.events — Event and DataTuple."""

import pytest

from repro.streams.events import DataTuple, Event


class TestDataTuple:
    def test_basic_fields(self):
        t = DataTuple(5.0, values={"x": 1, "y": 2}, source="s1")
        assert t.timestamp == 5.0
        assert t.values == {"x": 1, "y": 2}
        assert t.source == "s1"

    def test_value_lookup(self):
        t = DataTuple(0, values={"x": 1})
        assert t.value("x") == 1
        assert t.value("missing") is None
        assert t.value("missing", 7) == 7

    def test_values_is_a_copy(self):
        t = DataTuple(0, values={"x": 1})
        t.values["x"] = 99
        assert t.value("x") == 1

    def test_empty_payload(self):
        assert DataTuple(0).values == {}

    def test_hashable_and_equal(self):
        a = DataTuple(1, values={"x": 1}, source="s")
        b = DataTuple(1, values={"x": 1}, source="s")
        assert a == b
        assert hash(a) == hash(b)

    def test_payload_order_does_not_matter(self):
        a = DataTuple(1, values={"x": 1, "y": 2})
        b = DataTuple(1, values={"y": 2, "x": 1})
        assert a == b


class TestEvent:
    def test_basic_fields(self):
        e = Event("gps", 3.0, attributes={"cell": 7}, source="taxi-1")
        assert e.event_type == "gps"
        assert e.timestamp == 3.0
        assert e.attribute("cell") == 7
        assert e.source == "taxi-1"

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            Event("", 0.0)

    def test_non_string_type_rejected(self):
        with pytest.raises(ValueError):
            Event(7, 0.0)  # type: ignore[arg-type]

    def test_equality_covers_all_fields(self):
        base = Event("a", 1.0, attributes={"k": 1}, source="s")
        assert base == Event("a", 1.0, attributes={"k": 1}, source="s")
        assert base != Event("b", 1.0, attributes={"k": 1}, source="s")
        assert base != Event("a", 2.0, attributes={"k": 1}, source="s")
        assert base != Event("a", 1.0, attributes={"k": 2}, source="s")
        assert base != Event("a", 1.0, attributes={"k": 1}, source="t")

    def test_hashable(self):
        events = {Event("a", 1.0), Event("a", 1.0), Event("b", 1.0)}
        assert len(events) == 2

    def test_attributes_is_a_copy(self):
        e = Event("a", 0.0, attributes={"k": 1})
        e.attributes["k"] = 2
        assert e.attribute("k") == 1

    def test_with_timestamp(self):
        e = Event("a", 1.0, attributes={"k": 1}, source="s")
        moved = e.with_timestamp(9.0)
        assert moved.timestamp == 9.0
        assert moved.event_type == "a"
        assert moved.attribute("k") == 1
        assert e.timestamp == 1.0  # original untouched

    def test_with_type_is_the_definition1_edit(self):
        # Replacing one event's type is the elementary edit behind
        # in-pattern neighbouring (Definition 1).
        e = Event("a", 1.0, attributes={"k": 1})
        neighbour = e.with_type("b")
        assert neighbour.event_type == "b"
        assert neighbour.timestamp == e.timestamp
        assert neighbour.attributes == e.attributes

    def test_attribute_default(self):
        assert Event("a", 0.0).attribute("none", "d") == "d"
