"""Tests for repro.experiments.dual — minimal budget for a quality floor."""

import pytest

from repro.experiments.dual import compare_budget_needs, min_epsilon_for_quality


class TestMinEpsilonForQuality:
    def test_feasible_search(self, tiny_workload):
        result = min_epsilon_for_quality(
            tiny_workload,
            "uniform",
            max_mre=0.4,
            n_trials=2,
            precision=0.5,
            rng=0,
        )
        assert result.feasible
        assert result.epsilon is not None
        assert result.achieved_mre <= 0.4 + 1e-9

    def test_infeasible_reported(self, tiny_workload):
        result = min_epsilon_for_quality(
            tiny_workload,
            "bd",
            max_mre=0.01,
            epsilon_high=5.0,
            n_trials=2,
            precision=1.0,
            rng=0,
        )
        assert not result.feasible
        assert result.epsilon is None

    def test_trivially_feasible_returns_low(self, tiny_workload):
        result = min_epsilon_for_quality(
            tiny_workload,
            "uniform",
            max_mre=1.0,
            n_trials=1,
            precision=0.5,
            rng=0,
        )
        assert result.feasible
        assert result.epsilon == pytest.approx(0.05)

    def test_invalid_bounds_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            min_epsilon_for_quality(
                tiny_workload, "uniform", 0.3, epsilon_low=2.0, epsilon_high=1.0
            )

    def test_pattern_level_needs_less_budget_than_bd(self, tiny_workload):
        results = compare_budget_needs(
            tiny_workload,
            ["uniform", "bd"],
            max_mre=0.5,
            n_trials=2,
            precision=0.5,
            rng=0,
        )
        by_name = {r.mechanism: r for r in results}
        assert by_name["uniform"].feasible
        if by_name["bd"].feasible:
            assert by_name["uniform"].epsilon < by_name["bd"].epsilon
