"""Tests for repro.core.uniform — the uniform pattern-level PPM."""

import pytest

from repro.cep.patterns import OR, Pattern
from repro.core.uniform import UniformPatternPPM
from repro.mechanisms.randomized_response import epsilon_to_flip_probability


class TestUniformPPM:
    def test_even_split(self, private_pattern):
        ppm = UniformPatternPPM(private_pattern, epsilon=3.0)
        assert ppm.allocation.epsilons == (1.0, 1.0, 1.0)

    def test_flip_probability_formula(self, private_pattern):
        # p_i = 1 / (1 + e^{eps/m}) for every element (Fig. 3).
        ppm = UniformPatternPPM(private_pattern, epsilon=3.0)
        expected = epsilon_to_flip_probability(1.0)
        for probability in ppm.flip_probability_by_type().values():
            assert probability == pytest.approx(expected)

    def test_guarantee_totals_epsilon(self, private_pattern):
        ppm = UniformPatternPPM(private_pattern, epsilon=2.5)
        assert ppm.guarantee.epsilon == pytest.approx(2.5)

    def test_single_element_pattern(self):
        ppm = UniformPatternPPM(Pattern.of_types("p", "e1"), epsilon=1.0)
        assert ppm.allocation.epsilons == (1.0,)

    def test_name(self, private_pattern):
        assert UniformPatternPPM(private_pattern, 1.0).name == "uniform"

    def test_invalid_epsilon(self, private_pattern):
        with pytest.raises(Exception):
            UniformPatternPPM(private_pattern, 0.0)

    def test_requires_element_list(self):
        with pytest.raises(ValueError):
            UniformPatternPPM(Pattern("p", OR("a", "b")), 1.0)

    def test_longer_patterns_get_noisier_elements(self):
        # Same total budget over more elements => higher flip probability
        # per element (the Theorem 1 split).
        short = UniformPatternPPM(Pattern.of_types("s", "e1"), 2.0)
        long = UniformPatternPPM(
            Pattern.of_types("l", "e1", "e2", "e3", "e4"), 2.0
        )
        p_short = short.flip_probability_by_type()["e1"]
        p_long = long.flip_probability_by_type()["e1"]
        assert p_long > p_short
