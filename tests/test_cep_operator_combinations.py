"""Operator-nesting matrix tests for the CEP pattern algebra.

The NFA combinators (Thompson core + product/seq/disj automatons) are
the subtlest code in the repository; these tests pin the semantics of
every supported nesting with hand-worked cases.
"""

import pytest

from repro.cep.matcher import match_pattern
from repro.cep.nfa import CompileError, compile_expr
from repro.cep.patterns import AND, KLEENE, NEG, OR, Pattern, SEQ
from repro.streams.events import Event
from repro.streams.stream import EventStream


def stream_of(*types):
    return EventStream([Event(t, float(i)) for i, t in enumerate(types)])


def detects(expr, *types):
    return len(match_pattern(Pattern("p", expr), stream_of(*types))) > 0


class TestSeqNesting:
    def test_seq_of_seq_flattens_semantically(self):
        expr = SEQ(SEQ("a", "b"), SEQ("c", "d"))
        assert detects(expr, "a", "b", "c", "d")
        assert detects(expr, "a", "x", "b", "c", "x", "d")
        assert not detects(expr, "a", "c", "b", "d")

    def test_seq_of_or(self):
        expr = SEQ(OR("a", "b"), "c")
        assert detects(expr, "a", "c")
        assert detects(expr, "b", "c")
        assert not detects(expr, "c", "a")

    def test_or_of_seq_and_atom(self):
        expr = OR(SEQ("a", "b"), "z")
        assert detects(expr, "z")
        assert detects(expr, "a", "b")
        assert not detects(expr, "a")

    def test_seq_with_kleene_middle(self):
        expr = SEQ("a", KLEENE("b", 2), "c")
        assert detects(expr, "a", "b", "b", "c")
        assert detects(expr, "a", "b", "b", "b", "c")
        assert not detects(expr, "a", "b", "c")

    def test_nested_neg_scopes(self):
        expr = SEQ("a", NEG("x"), "b", NEG("y"), "c")
        assert detects(expr, "a", "b", "c")
        assert not detects(expr, "a", "x", "b", "c")
        assert not detects(expr, "a", "b", "y", "c")
        # x after its guarded gap is harmless.
        assert detects(expr, "a", "b", "x", "c")
        # y before its guarded gap is harmless.
        assert detects(expr, "y", "a", "b", "c")


class TestOrNesting:
    def test_or_of_or(self):
        expr = OR(OR("a", "b"), "c")
        for symbol in ("a", "b", "c"):
            assert detects(expr, symbol)
        assert not detects(expr, "z")

    def test_or_of_kleene(self):
        expr = OR(KLEENE("a", 2), "b")
        assert detects(expr, "b")
        assert detects(expr, "a", "a")
        assert not detects(expr, "a")


class TestKleeneNesting:
    def test_kleene_of_seq(self):
        expr = KLEENE(SEQ("a", "b"), 2)
        assert detects(expr, "a", "b", "a", "b")
        assert not detects(expr, "a", "b")
        # Interleaved noise is fine under skip-till-any.
        assert detects(expr, "a", "x", "b", "a", "b")

    def test_kleene_of_or(self):
        expr = KLEENE(OR("a", "b"), 2, 2)
        assert detects(expr, "a", "b")
        assert detects(expr, "b", "b")
        assert not detects(expr, "a")

    def test_kleene_exact_bound(self):
        expr = SEQ(KLEENE("a", 2, 2), "b")
        assert detects(expr, "a", "a", "b")
        # A third 'a' can simply be skipped; the bound limits the
        # consumed count, not the stream content.
        assert detects(expr, "a", "a", "a", "b")
        assert not detects(expr, "a", "b")


class TestAndNesting:
    def test_and_of_three(self):
        expr = AND("a", "b", "c")
        assert detects(expr, "c", "a", "b")
        assert detects(expr, "b", "c", "a")
        assert not detects(expr, "a", "b")

    def test_and_of_seqs(self):
        expr = AND(SEQ("a", "b"), SEQ("c", "d"))
        assert detects(expr, "a", "c", "b", "d")
        assert detects(expr, "c", "d", "a", "b")
        assert not detects(expr, "b", "a", "c", "d")

    def test_and_inside_seq_inside_or(self):
        expr = OR(SEQ("x", AND("a", "b")), "z")
        assert detects(expr, "z")
        assert detects(expr, "x", "b", "a")
        assert not detects(expr, "a", "b", "x")

    def test_and_of_kleene(self):
        expr = AND(KLEENE("a", 2), "b")
        assert detects(expr, "a", "b", "a")
        assert not detects(expr, "a", "b")

    def test_and_with_or_operand(self):
        expr = AND(OR("a", "b"), "c")
        assert detects(expr, "c", "a")
        assert detects(expr, "b", "c")
        assert not detects(expr, "a", "b")


class TestUnsupportedNestings:
    def test_kleene_over_and(self):
        with pytest.raises(CompileError):
            compile_expr(KLEENE(AND("a", "b")))

    def test_neg_beside_and(self):
        with pytest.raises(CompileError):
            compile_expr(SEQ("x", NEG("z"), AND("a", "b")))

    def test_supported_nestings_compile(self):
        # The full supported matrix must at least compile.
        for expr in (
            SEQ("a", OR("b", KLEENE("c", 1, 3)), NEG("z"), "d"),
            AND(SEQ("a", "b"), OR("c", "d"), "e"),
            OR(AND("a", "b"), SEQ("c", NEG("x"), "d")),
            SEQ(AND("a", "b"), AND("c", "d")),
        ):
            compile_expr(expr)


class TestWithinAcrossOperators:
    def test_within_applies_to_and(self):
        pattern = Pattern("p", AND("a", "b"))
        events = EventStream([Event("a", 0.0), Event("b", 100.0)])
        assert (
            len(match_pattern(pattern, events, within=10.0)) == 0
        )
        assert (
            len(match_pattern(pattern, events, within=200.0)) == 1
        )

    def test_within_applies_to_kleene(self):
        pattern = Pattern("p", KLEENE("a", 3))
        events = EventStream(
            [Event("a", 0.0), Event("a", 5.0), Event("a", 50.0)]
        )
        assert len(match_pattern(pattern, events, within=10.0)) == 0
        assert len(match_pattern(pattern, events, within=100.0)) >= 1
