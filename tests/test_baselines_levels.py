"""Tests for event-level and user-level RR baselines."""

import numpy as np
import pytest

from repro.baselines.event_level import EventLevelRR
from repro.baselines.user_level import UserLevelRR
from repro.mechanisms.randomized_response import epsilon_to_flip_probability
from repro.streams.indicator import EventAlphabet, IndicatorStream


@pytest.fixture
def indicator_stream():
    rng = np.random.default_rng(31)
    alphabet = EventAlphabet.numbered(4)
    return IndicatorStream(alphabet, rng.random((100, 4)) < 0.5)


class TestEventLevelRR:
    def test_flip_probability_formula(self):
        mechanism = EventLevelRR(2.0)
        assert mechanism.flip_probability == pytest.approx(
            epsilon_to_flip_probability(2.0)
        )

    def test_perturbs_all_columns(self, indicator_stream):
        mechanism = EventLevelRR(0.5)
        released = mechanism.perturb(indicator_stream, rng=0)
        for name in indicator_stream.alphabet:
            assert not np.array_equal(
                released.column(name), indicator_stream.column(name)
            )

    def test_empirical_flip_rate(self, indicator_stream):
        mechanism = EventLevelRR(1.0)
        expected = mechanism.flip_probability
        disagreements = 0
        trials = 30
        for seed in range(trials):
            released = mechanism.perturb(indicator_stream, rng=seed)
            disagreements += int(
                (released.matrix_view() != indicator_stream.matrix_view()).sum()
            )
        rate = disagreements / (trials * indicator_stream.matrix_view().size)
        assert rate == pytest.approx(expected, abs=0.02)

    def test_deterministic_under_seed(self, indicator_stream):
        mechanism = EventLevelRR(1.0)
        assert mechanism.perturb(indicator_stream, rng=7) == mechanism.perturb(
            indicator_stream, rng=7
        )


class TestUserLevelRR:
    def test_per_bit_epsilon(self, indicator_stream):
        mechanism = UserLevelRR(4.0)
        expected = 4.0 / indicator_stream.matrix_view().size
        assert mechanism.per_bit_epsilon(indicator_stream) == pytest.approx(
            expected
        )

    def test_noise_is_near_total_at_realistic_budgets(self, indicator_stream):
        # User-level protection over 400 bits with ε=1: per-bit budget
        # 0.0025, flip probability ≈ 0.4994 — the stream is destroyed.
        mechanism = UserLevelRR(1.0)
        released = mechanism.perturb(indicator_stream, rng=0)
        agreement = (
            released.matrix_view() == indicator_stream.matrix_view()
        ).mean()
        assert 0.4 < agreement < 0.6

    def test_much_weaker_than_event_level(self, indicator_stream):
        # Same ε: user-level must flip far more bits than event-level —
        # the granularity hierarchy the paper's related work describes.
        user = UserLevelRR(2.0).perturb(indicator_stream, rng=1)
        event = EventLevelRR(2.0).perturb(indicator_stream, rng=1)
        user_flips = (
            user.matrix_view() != indicator_stream.matrix_view()
        ).sum()
        event_flips = (
            event.matrix_view() != indicator_stream.matrix_view()
        ).sum()
        assert user_flips > event_flips

    def test_empty_stream_passthrough(self):
        alphabet = EventAlphabet(["a"])
        empty = IndicatorStream(alphabet, np.zeros((0, 1), dtype=bool))
        released = UserLevelRR(1.0).perturb(empty, rng=0)
        assert released.n_windows == 0

    def test_per_bit_epsilon_empty_rejected(self):
        alphabet = EventAlphabet(["a"])
        empty = IndicatorStream(alphabet, np.zeros((0, 1), dtype=bool))
        with pytest.raises(ValueError):
            UserLevelRR(1.0).per_bit_epsilon(empty)
