"""Tests for repro.baselines.conversion — pattern-level budget conversion."""

import pytest

from repro.baselines.conversion import (
    BudgetConverter,
    ba_timestep_coefficient,
    bd_timestep_coefficient,
    event_level_timestep_coefficient,
    landmark_timestep_coefficient,
    native_epsilon_for_pattern,
    pattern_epsilon_from_native,
    user_level_timestep_coefficient,
)


class TestCoefficients:
    def test_bd_worst_case_formula(self):
        # ε_2/2 / ε + dissimilarity share: 1/4 + 1/(2w).
        assert bd_timestep_coefficient(10) == pytest.approx(0.25 + 0.05)

    def test_ba_worst_case_formula(self):
        # Full absorption: 1/2 + 1/(2w).
        assert ba_timestep_coefficient(10) == pytest.approx(0.5 + 0.05)

    def test_nominal_mode_shrinks_with_w(self):
        assert bd_timestep_coefficient(
            100, mode="nominal"
        ) < bd_timestep_coefficient(10, mode="nominal")

    def test_ba_worst_exceeds_bd_worst(self):
        # BA can concentrate more budget on one timestamp than BD.
        assert ba_timestep_coefficient(10) > bd_timestep_coefficient(10)

    def test_nominal_modes_agree_for_bd_ba(self):
        assert bd_timestep_coefficient(10, mode="nominal") == pytest.approx(
            ba_timestep_coefficient(10, mode="nominal")
        )

    def test_landmark_worst_case(self):
        # rho/2 + rho/(2L).
        assert landmark_timestep_coefficient(
            5, rho=0.5
        ) == pytest.approx(0.25 + 0.05)

    def test_landmark_nominal(self):
        assert landmark_timestep_coefficient(
            5, rho=0.5, mode="nominal"
        ) == pytest.approx(0.1)

    def test_event_level_is_identity(self):
        assert event_level_timestep_coefficient() == 1.0

    def test_user_level_divides_by_stream_size(self):
        assert user_level_timestep_coefficient(100, 20) == pytest.approx(
            1.0 / 2000.0
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            bd_timestep_coefficient(10, mode="magic")


class TestConversionInversion:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    @pytest.mark.parametrize("coefficient", [0.05, 0.3, 1.0])
    def test_round_trip(self, m, coefficient):
        native = native_epsilon_for_pattern(2.0, m, coefficient)
        recovered = pattern_epsilon_from_native(native, m, coefficient)
        assert recovered == pytest.approx(2.0)

    def test_monotone_in_pattern_epsilon(self):
        smaller = native_epsilon_for_pattern(1.0, 3, 0.3)
        larger = native_epsilon_for_pattern(2.0, 3, 0.3)
        assert larger > smaller

    def test_longer_patterns_get_less_native_budget(self):
        # Same pattern-level ε must be shared by more elements.
        short = native_epsilon_for_pattern(2.0, 1, 0.3)
        long = native_epsilon_for_pattern(2.0, 4, 0.3)
        assert long == pytest.approx(short / 4)


class TestBudgetConverter:
    @pytest.fixture
    def converter(self):
        return BudgetConverter(3, mode="worst_case")

    def test_bd_round_trip(self, converter):
        native = converter.bd_native(2.0, w=10)
        record = converter.bd_pattern(native, w=10)
        assert record.pattern_epsilon == pytest.approx(2.0)
        assert record.mechanism == "bd"

    def test_ba_round_trip(self, converter):
        native = converter.ba_native(2.0, w=10)
        assert converter.ba_pattern(native, w=10).pattern_epsilon == pytest.approx(2.0)

    def test_landmark_round_trip(self, converter):
        native = converter.landmark_native(2.0, n_landmarks=7)
        record = converter.landmark_pattern(native, n_landmarks=7)
        assert record.pattern_epsilon == pytest.approx(2.0)

    def test_event_level(self, converter):
        # Group privacy over m events: per-event budget is ε/m.
        assert converter.event_level_native(3.0) == pytest.approx(1.0)

    def test_user_level(self, converter):
        native = converter.user_level_native(3.0, n_windows=10, n_types=5)
        assert native == pytest.approx(3.0 / 3 * 50)

    def test_ba_gets_less_native_budget_than_bd(self, converter):
        # BA's worst-case per-timestamp loss is larger, so the same
        # pattern-level ε allows a smaller native budget.
        assert converter.ba_native(2.0, w=10) < converter.bd_native(2.0, w=10)

    def test_conversion_direction_can_go_both_ways(self):
        # The paper: "an increase or a decrease of privacy budgets are
        # both possible after a conversion".
        converter = BudgetConverter(1)
        assert converter.bd_native(2.0, w=10) > 2.0  # increase
        converter_long = BudgetConverter(8)
        assert converter_long.ba_native(2.0, w=2) < 2.0  # decrease

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            BudgetConverter(3, mode="magic")

    def test_invalid_length(self):
        with pytest.raises(Exception):
            BudgetConverter(0)
