"""Tests for repro.experiments.reporting."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import run_fig4_on_workload
from repro.experiments.reporting import (
    fig4_markdown_section,
    fig4_wide_table,
    results_to_table,
    table_to_markdown,
)
from repro.experiments.runner import sweep
from repro.utils.tables import ResultTable


@pytest.fixture(scope="module")
def panel(request):
    tiny = request.getfixturevalue("tiny_workload")
    config = ExperimentConfig(
        epsilon_grid=(1.0, 4.0),
        mechanisms=("uniform", "bd"),
        n_trials=1,
    )
    return run_fig4_on_workload(tiny, config)


@pytest.fixture(scope="module")
def tiny_workload():
    from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset

    return synthesize_dataset(
        SyntheticConfig(n_windows=120, n_history_windows=80), rng=7
    )


class TestResultsToTable:
    def test_columns(self, tiny_workload):
        results = sweep(
            tiny_workload,
            epsilon_grid=(1.0,),
            mechanisms=("uniform",),
            n_trials=1,
            rng=0,
        )
        table = results_to_table(results)
        assert "mre" in table.columns
        assert len(table) == 1


class TestWideTable:
    def test_one_row_per_epsilon(self, panel):
        wide = fig4_wide_table(panel)
        assert wide.column("epsilon") == [1.0, 4.0]
        assert "mre_uniform" in wide.columns
        assert "mre_bd" in wide.columns


class TestMarkdown:
    def test_table_to_markdown_structure(self):
        table = ResultTable(["a", "b"])
        table.add_row(a=1, b=0.5)
        text = table_to_markdown(table)
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "0.5000" in lines[2]

    def test_fig4_markdown_section(self, panel):
        text = fig4_markdown_section(panel)
        assert "### Fig. 4" in text
        assert "mre_uniform" in text

    def test_fig4_markdown_reports_shape_verdict(self, panel):
        text = fig4_markdown_section(panel)
        # On this workload the shape holds, so the pass message appears.
        assert "Shape check" in text or "Shape violations" in text

    def test_fig4_markdown_lists_violations_when_present(self, panel):
        from repro.experiments.fig4 import Fig4Result, Fig4Series
        from repro.utils.tables import ResultTable

        # Construct a pathological panel: uniform WORSE than bd.
        table = ResultTable(["epsilon"])
        broken = Fig4Result(
            dataset="broken",
            table=table,
            series={
                "uniform": Fig4Series("uniform", [1.0], [0.9], [0.0]),
                "bd": Fig4Series("bd", [1.0], [0.1], [0.0]),
            },
        )
        text = fig4_markdown_section(broken)
        assert "Shape violations" in text
        assert "uniform" in text
