"""Async ingestion sessions: parity, backpressure and flush-on-close."""

import asyncio

import numpy as np
import pytest

from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.user_level import UserLevelRR
from repro.cep import (
    AsyncSession,
    CEPEngine,
    ContinuousQuery,
    OnlineSession,
    Pattern,
)
from repro.core.uniform import UniformPatternPPM
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows

ALPHABET = EventAlphabet.numbered(5)


def make_engine(mechanism="uniform"):
    engine = CEPEngine(ALPHABET)
    engine.register_query(
        ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e2"))
    )
    engine.register_query(ContinuousQuery("q2", Pattern.of_types("q2", "e3")))
    if mechanism == "uniform":
        engine.attach_mechanism(
            UniformPatternPPM(Pattern.of_types("p", "e1"), 1.0)
        )
    elif mechanism is not None:
        engine.attach_mechanism(mechanism)
    return engine


def make_stream(n_windows, seed=3):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n_windows, 5)) < 0.4)


def type_sets_of(stream):
    return [stream.window_types(i) for i in range(stream.n_windows)]


class TestAsyncSession:
    def test_matches_online_session_bit_for_bit(self):
        stream = make_stream(150)
        sync_answers = OnlineSession(make_engine(), rng=11).run(stream)

        async def go():
            async with AsyncSession(
                make_engine(), rng=11, max_pending=8, max_batch=16
            ) as session:
                return await session.run(type_sets_of(stream))

        assert asyncio.run(go()) == sync_answers

    def test_batch_boundaries_do_not_change_answers(self):
        stream = make_stream(97)

        async def go(max_pending, max_batch):
            async with AsyncSession(
                make_engine(),
                rng=5,
                max_pending=max_pending,
                max_batch=max_batch,
            ) as session:
                return await session.run(type_sets_of(stream))

        one_by_one = asyncio.run(go(1, 1))
        large_batches = asyncio.run(go(64, 64))
        assert one_by_one == large_batches

    def test_backpressure_bounds_backlog(self):
        async def go():
            session = AsyncSession(
                make_engine(), rng=2, max_pending=4, max_batch=2
            )
            async with session:
                for window in type_sets_of(make_stream(50)):
                    await session.submit(window)
                    assert session.backlog <= 4
            return session.windows_processed

        assert asyncio.run(go()) == 50

    def test_flush_on_close_resolves_every_future(self):
        async def go():
            session = AsyncSession(
                make_engine(), rng=4, max_pending=8, max_batch=4
            )
            session._ensure_started()
            futures = [
                await session.submit(window)
                for window in type_sets_of(make_stream(37))
            ]
            await session.aclose()
            assert session.windows_processed == 37
            return [await future for future in futures]

        answers = asyncio.run(go())
        assert len(answers) == 37
        assert all(set(a) == {"q1", "q2"} for a in answers)

    def test_submit_after_close_raises(self):
        async def go():
            session = AsyncSession(make_engine(), rng=1)
            async with session:
                await session.process(["e1"])
            with pytest.raises(RuntimeError, match="closed"):
                await session.submit(["e2"])

        asyncio.run(go())

    def test_identity_engine_releases_truth(self):
        stream = make_stream(40)

        async def go():
            async with AsyncSession(make_engine(None), rng=0) as session:
                return await session.run(type_sets_of(stream))

        answers = asyncio.run(go())
        matcher_truth = make_engine(None).service_pipeline().matcher.answer(
            stream.matrix_view()
        )
        for name, vector in matcher_truth.items():
            assert answers[name] == [bool(v) for v in vector]

    def test_recorded_streams_require_flag(self):
        async def go():
            async with AsyncSession(make_engine(), rng=1) as session:
                await session.process(["e1", "e3"])
                with pytest.raises(RuntimeError, match="record"):
                    session.released_matrix

        asyncio.run(go())

    def test_close_races_with_blocked_producers(self):
        # Producers suspended inside submit() when aclose() starts must
        # land and be flushed — not stranded behind the close sentinel.
        async def go():
            session = AsyncSession(
                make_engine(), rng=6, max_pending=1, max_batch=1
            )
            windows = type_sets_of(make_stream(6))

            async def producer(window):
                future = await session.submit(window)
                return await future

            async with session:
                tasks = [
                    asyncio.create_task(producer(window))
                    for window in windows
                ]
                # Let every producer start (most block in queue.put).
                await asyncio.sleep(0)
            # aclose() ran with producers mid-put; all must resolve.
            answers = await asyncio.wait_for(asyncio.gather(*tasks), 5)
            assert len(answers) == len(windows)
            assert session.windows_processed == len(windows)

        asyncio.run(go())

    def test_user_level_rejected(self):
        with pytest.raises(TypeError):
            AsyncSession(make_engine(UserLevelRR(100.0)))

    def test_rejected_mechanism_charges_no_budget(self):
        engine = make_engine(UserLevelRR(5.0))
        accountant = engine.enable_accounting(10.0)
        for _ in range(3):
            with pytest.raises(TypeError):
                AsyncSession(engine)
        assert accountant.spent() == 0.0
        with pytest.raises(TypeError):
            OnlineSession(engine)
        assert accountant.spent() == 0.0

    def test_engine_without_queries_rejected(self):
        with pytest.raises(ValueError):
            AsyncSession(CEPEngine(ALPHABET))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AsyncSession(make_engine(), max_pending=0)
        with pytest.raises(ValueError):
            AsyncSession(make_engine(), max_batch=0)

    def test_drainer_failure_fails_futures_and_close(self):
        class ExplodingStepper:
            def step_block(self, matrix):
                raise RuntimeError("stepper blew up")

        async def failing():
            session = AsyncSession(make_engine(), rng=1, max_pending=4)
            session._stepper = ExplodingStepper()
            future = await session.submit(["e1"])
            with pytest.raises(RuntimeError, match="stepper blew up"):
                await session.aclose()
            # the accepted window's future carries the same error
            with pytest.raises(RuntimeError, match="stepper blew up"):
                await future
            return session

        asyncio.run(failing())

    def test_submit_after_drainer_failure_raises(self):
        class ExplodingStepper:
            def step_block(self, matrix):
                raise RuntimeError("stepper blew up")

        async def go():
            session = AsyncSession(make_engine(), rng=1, max_pending=4)
            session._stepper = ExplodingStepper()
            future = await session.submit(["e1"])
            with pytest.raises(RuntimeError):
                await future
            with pytest.raises(RuntimeError, match="drainer failed"):
                await session.submit(["e2"])
            with pytest.raises(RuntimeError, match="stepper blew up"):
                await session.aclose()

        asyncio.run(go())

    def test_sequential_mechanism_supported(self):
        stream = make_stream(30)

        async def go():
            async with AsyncSession(
                make_engine(BudgetDistribution(1.0, w=5)), rng=9
            ) as session:
                return await session.run(type_sets_of(stream))

        sync_answers = OnlineSession(
            make_engine(BudgetDistribution(1.0, w=5)), rng=9
        ).run(stream)
        assert asyncio.run(go()) == sync_answers


class TestAsyncCheckpointResume:
    @pytest.mark.parametrize(
        "mechanism_factory",
        [
            lambda: "uniform",
            lambda: BudgetDistribution(1.0, w=5),
        ],
        ids=["uniform", "bd"],
    )
    def test_restored_session_matches_uninterrupted(
        self, mechanism_factory
    ):
        import pickle

        stream = make_stream(60)
        windows = type_sets_of(stream)

        async def straight():
            async with AsyncSession(
                make_engine(mechanism_factory()), rng=6
            ) as session:
                return await session.run(windows)

        async def crash_and_resume():
            first = AsyncSession(make_engine(mechanism_factory()), rng=6)
            async with first:
                head = await first.run(windows[:25])
                snapshot = pickle.loads(pickle.dumps(first.snapshot()))
            resumed = AsyncSession(make_engine(mechanism_factory()), rng=6)
            resumed.restore(snapshot)
            async with resumed:
                tail = await resumed.run(windows[25:])
            return {
                name: head[name] + tail[name] for name in head
            }, resumed.windows_processed

        expected = asyncio.run(straight())
        resumed_answers, processed = asyncio.run(crash_and_resume())
        assert resumed_answers == expected
        assert processed == stream.n_windows

    def test_snapshot_requires_quiescence(self):
        async def go():
            async with AsyncSession(make_engine(), rng=1) as session:
                # Submit without awaiting the answer: the window may
                # still be queued, so a snapshot must be refused.
                await session.submit(["e1"])
                if session.windows_processed != session.windows_submitted:
                    with pytest.raises(RuntimeError, match="queued"):
                        session.snapshot()

        asyncio.run(go())


class TestProcessEventsAsync:
    def make_events(self, n=300, seed=8):
        rng = np.random.default_rng(seed)
        return EventStream(
            [
                Event(f"e{rng.integers(1, 6)}", float(t))
                for t in range(n)
            ]
        )

    def test_report_matches_batch_for_flip_mechanisms(self):
        events = self.make_events()
        engine = make_engine()
        batch = engine.process_events(events, TumblingWindows(10.0), rng=7)
        report = asyncio.run(
            engine.process_events_async(events, TumblingWindows(10.0), rng=7)
        )
        assert report.perturbed == batch.perturbed
        assert report.original == batch.original
        for name in batch.answers:
            assert np.array_equal(
                report.answers[name].detections,
                batch.answers[name].detections,
            )
            assert np.array_equal(
                report.true_answers[name].detections,
                batch.true_answers[name].detections,
            )
        assert report.measured_quality() == batch.measured_quality()

    def test_accounting_charged_once_per_async_run(self):
        events = self.make_events(100)
        engine = make_engine()
        accountant = engine.enable_accounting(10.0)
        asyncio.run(
            engine.process_events_async(events, TumblingWindows(10.0), rng=1)
        )
        spent_once = accountant.spent()
        assert spent_once > 0
        asyncio.run(
            engine.process_events_async(events, TumblingWindows(10.0), rng=2)
        )
        assert accountant.spent() == pytest.approx(2 * spent_once)


class TestQueueSourceBackpressure:
    """The PR-5 satellite pin: a queue: source faster than the drainer
    blocks on submit at the configured bound, never grows the backlog
    past it, and stays snapshot/restore-exact mid-stream."""

    def test_submit_suspends_at_the_bound_while_drainer_stalls(self):
        async def go():
            session = AsyncSession(
                make_engine(), rng=2, max_pending=4, max_batch=2
            )
            # Gate the drainer so the producer is strictly faster.
            gate = asyncio.Event()
            original_drain = session._drain

            async def gated_drain():
                await gate.wait()
                await original_drain()

            session._drain = gated_drain
            stream = make_stream(12)
            futures = [
                await session.submit(stream.window_types(index))
                for index in range(4)
            ]
            assert session.backlog == 4  # the bound is reached...

            extra = asyncio.ensure_future(
                session.submit(stream.window_types(4))
            )
            for _ in range(10):
                await asyncio.sleep(0)
                # ...the fifth submit suspends instead of growing it.
                assert not extra.done()
                assert session.backlog == 4

            gate.set()  # drainer catches up; the producer resumes
            futures.append(await extra)
            answers = [await future for future in futures]
            await session.aclose()
            assert session.backlog == 0
            return answers

        answers = asyncio.run(go())
        assert len(answers) == 5

    def test_pump_backlog_never_exceeds_bound(self):
        from repro.io import QueueSource
        from repro.service import ServiceSpec

        stream = make_stream(80)
        spec = ServiceSpec(
            alphabet=ALPHABET,
            patterns=[("p", ("e1",))],
            queries=[("q1", ("e1", "e2")), ("q2", ("e3",))],
            mechanism="uniform-ppm",
            mechanism_options={"epsilon": 1.0},
            seed=2,
        )

        async def go():
            queue = asyncio.Queue(maxsize=2)
            service = spec.build()
            observed = []

            async def produce():
                for index in range(stream.n_windows):
                    await queue.put(stream.window_types(index))
                    observed.append(service.session.backlog)
                await queue.put(None)

            session = service.open_async_session(max_pending=4, max_batch=2)
            producer = asyncio.ensure_future(produce())
            answers = await service.pump(QueueSource(queue))
            await producer
            assert max(observed) <= 4
            assert session.windows_processed == stream.n_windows
            return answers

        answers = asyncio.run(go())
        expected = asyncio.run(spec.build().pump(stream))
        assert answers == expected

    def test_queue_pump_snapshot_restore_exact_mid_stream(self):
        from repro.io import QueueSource
        from repro.service import ServiceSpec, StreamService

        stream = make_stream(90)
        spec = ServiceSpec(
            alphabet=ALPHABET,
            patterns=[("p", ("e1",))],
            queries=[("q1", ("e1", "e2")), ("q2", ("e3",))],
            mechanism="bd",
            mechanism_options={"epsilon": 1.0, "w": 10},
            source="queue",
            seed=3,
        )

        def feed(indices):
            queue = asyncio.Queue()
            for index in indices:
                queue.put_nowait(stream.window_types(index))
            queue.put_nowait(None)
            return queue

        service = spec.build()
        first = asyncio.run(
            service.pump(QueueSource(feed(range(45))))
        )
        checkpoint = service.checkpoint()
        assert checkpoint["source_offset"] == 45

        # The live queue cannot seek: resume binds a fresh queue that
        # carries the not-yet-received remainder.
        resumed = StreamService.resume(
            spec, checkpoint, source=QueueSource(feed(range(45, 90)))
        )
        second = asyncio.run(resumed.pump())

        uninterrupted = asyncio.run(
            spec.build().pump(QueueSource(feed(range(90))))
        )
        for name in uninterrupted:
            assert first[name] + second[name] == uninterrupted[name], name
