"""Sharded execution: planning, determinism and batch bit-identity.

The sharded executor's contract is that parallelism is *invisible* in
the output: same seed ⇒ same ``PipelineResult`` as the batch executor,
whatever the backend (thread/process), worker count or shard layout.
That rests on the seek invariant — every shard's stepper consumes the
child-generator words of its absolute window range — which these tests
pin alongside the shard planner's arithmetic.
"""

import numpy as np
import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.event_level import EventLevelRR
from repro.baselines.landmark import LandmarkPrivacy
from repro.baselines.user_level import UserLevelRR
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.runtime import (
    BatchExecutor,
    ShardedExecutor,
    StreamPipeline,
)
from repro.runtime.sharding import Shard, clone_rng, plan_shards
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(6)
QUERIES = [
    ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e3")),
    ContinuousQuery("q2", Pattern.of_types("q2", "e2")),
]


def make_stream(n_windows, seed=5):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n_windows, 6)) < 0.3)


def seekable_mechanisms():
    return {
        "identity": None,
        "uniform": UniformPatternPPM(Pattern.of_types("p", "e1", "e2"), 1.0),
        "multi": MultiPatternPPM(
            [
                UniformPatternPPM(Pattern.of_types("p", "e1", "e2"), 1.0),
                UniformPatternPPM(Pattern.of_types("p2", "e4"), 2.0),
            ]
        ),
        "event-level": EventLevelRR(1.0),
        "user-level": UserLevelRR(500.0),
    }


def assert_bit_identical(left, right):
    assert left.original == right.original
    assert left.released == right.released
    assert set(left.answers) == set(right.answers)
    for name, detections in right.answers.items():
        assert np.array_equal(left.answers[name], detections)
        assert np.array_equal(
            left.true_answers[name], right.true_answers[name]
        )
    assert left.quality() == right.quality()


class TestShardPlanner:
    def test_balanced_contiguous_cover(self):
        shards = plan_shards(10, 3)
        assert shards == [Shard(0, 4), Shard(4, 7), Shard(7, 10)]
        assert sum(shard.n_windows for shard in shards) == 10

    def test_more_shards_than_windows_collapses(self):
        shards = plan_shards(3, 8)
        assert len(shards) == 3
        assert all(shard.n_windows == 1 for shard in shards)

    def test_min_shard_size_caps_shard_count(self):
        shards = plan_shards(100, 16, min_shard_size=25)
        assert len(shards) == 4
        assert all(shard.n_windows == 25 for shard in shards)

    def test_empty_stream_plans_no_shards(self):
        assert plan_shards(0, 4) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(10, 2, min_shard_size=0)
        with pytest.raises(ValueError):
            Shard(3, 1)


class TestShardedExecutor:
    @pytest.mark.parametrize("kind", list(seekable_mechanisms()))
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bit_identical_to_batch(self, kind, backend):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=seekable_mechanisms()[kind]
        )
        stream = make_stream(257)
        batch = BatchExecutor().run(pipeline, stream, rng=42)
        sharded = ShardedExecutor(4, backend=backend).run(
            pipeline, stream, rng=42
        )
        assert_bit_identical(sharded, batch)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("n_workers", [1, 2, 8])
    def test_deterministic_across_worker_counts(self, backend, n_workers):
        pipeline = StreamPipeline(
            ALPHABET,
            queries=QUERIES,
            mechanism=seekable_mechanisms()["multi"],
        )
        stream = make_stream(190)
        reference = BatchExecutor().run(pipeline, stream, rng=7)
        executor = ShardedExecutor(n_workers, backend=backend)
        first = executor.run(pipeline, stream, rng=7)
        second = executor.run(pipeline, stream, rng=7)
        assert_bit_identical(first, reference)
        assert_bit_identical(second, first)

    def test_generator_rng_matches_batch(self):
        pipeline = StreamPipeline(
            ALPHABET,
            queries=QUERIES,
            mechanism=seekable_mechanisms()["uniform"],
        )
        stream = make_stream(120)
        batch = BatchExecutor().run(
            pipeline, stream, rng=np.random.default_rng(99)
        )
        sharded = ShardedExecutor(3).run(
            pipeline, stream, rng=np.random.default_rng(99)
        )
        assert_bit_identical(sharded, batch)

    def test_shared_generator_advances_between_runs(self):
        # Repeated releases off one generator must draw fresh
        # randomness — identical repeated perturbations would leak more
        # than their accounted budget.
        pipeline = StreamPipeline(
            ALPHABET,
            queries=QUERIES,
            mechanism=seekable_mechanisms()["uniform"],
        )
        stream = make_stream(150)
        generator = np.random.default_rng(21)
        executor = ShardedExecutor(4)
        first = executor.run(pipeline, stream, rng=generator)
        second = executor.run(pipeline, stream, rng=generator)
        assert first.released != second.released

    def test_explicit_shard_count(self):
        pipeline = StreamPipeline(
            ALPHABET,
            queries=QUERIES,
            mechanism=seekable_mechanisms()["uniform"],
        )
        stream = make_stream(100)
        batch = BatchExecutor().run(pipeline, stream, rng=13)
        sharded = ShardedExecutor(2, n_shards=7).run(
            pipeline, stream, rng=13
        )
        assert_bit_identical(sharded, batch)

    def test_materialize_false_keeps_answers_and_metrics(self):
        pipeline = StreamPipeline(
            ALPHABET,
            queries=QUERIES,
            mechanism=seekable_mechanisms()["uniform"],
        )
        stream = make_stream(80)
        batch = BatchExecutor().run(pipeline, stream, rng=3)
        sharded = ShardedExecutor(4, materialize=False).run(
            pipeline, stream, rng=3
        )
        assert sharded.original is None and sharded.released is None
        for name, detections in batch.answers.items():
            assert np.array_equal(sharded.answers[name], detections)
        assert sharded.quality() == batch.quality()

    def test_empty_stream(self):
        pipeline = StreamPipeline(
            ALPHABET,
            queries=QUERIES,
            mechanism=seekable_mechanisms()["uniform"],
        )
        result = ShardedExecutor(4).run(pipeline, make_stream(0), rng=1)
        assert result.n_windows == 0
        for vector in result.answers.values():
            assert vector.shape == (0,)

    @pytest.mark.parametrize(
        "mechanism",
        [
            BudgetAbsorption(1.0, w=4),
            LandmarkPrivacy(
                1.0,
                landmarks=np.zeros(50, dtype=bool) | (np.arange(50) % 7 == 0),
            ),
        ],
        ids=["ba", "landmark"],
    )
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_sequential_mechanisms_shard_via_checkpoints(
        self, mechanism, backend
    ):
        # Sequential schedulers cannot seek, but they checkpoint: the
        # prepass + replay path must still be bit-identical to batch.
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanism
        )
        stream = make_stream(50)
        batch = BatchExecutor().run(pipeline, stream, rng=1)
        sharded = ShardedExecutor(2, backend=backend).run(
            pipeline, stream, rng=1
        )
        assert_bit_identical(sharded, batch)

    def test_batch_only_mechanism_directed_to_batch_executor(self):
        class BatchOnly:
            name = "batch-only"

            def perturb(self, stream, *, rng=None):
                return stream

        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=BatchOnly()
        )
        with pytest.raises(TypeError, match="BatchExecutor"):
            ShardedExecutor(2).run(pipeline, make_stream(50), rng=1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ShardedExecutor(0)
        with pytest.raises(ValueError):
            ShardedExecutor(2, backend="gpu")
        with pytest.raises(ValueError):
            ShardedExecutor(2, n_shards=0)

    def test_clone_rng_passes_seeds_and_copies_generators(self):
        assert clone_rng(None) is None
        assert clone_rng(11) == 11
        parent = np.random.default_rng(4)
        clone = clone_rng(parent)
        assert clone is not parent
        assert clone.random() == np.random.default_rng(4).random()
        # the clone advanced; the parent did not
        assert parent.random() == np.random.default_rng(4).random()


class TestParallelSweep:
    def test_thread_and_process_sweeps_match_serial(self):
        from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
        from repro.experiments.runner import sweep
        from repro.utils.rng import derive_rng

        workload = synthesize_dataset(
            SyntheticConfig(n_windows=90, n_history_windows=60),
            rng=derive_rng(3, "sweep-parity"),
            name="sweep-parity",
        )
        kwargs = dict(
            epsilon_grid=(0.5, 2.0),
            mechanisms=("uniform", "bd"),
            n_trials=2,
            rng=77,
        )
        serial = sweep(workload, **kwargs)
        threaded = sweep(workload, workers=4, backend="thread", **kwargs)
        forked = sweep(workload, workers=2, backend="process", **kwargs)
        assert threaded == serial
        assert forked == serial

    def test_sharded_executor_sweep_matches_serial(self):
        # The sharded executor now covers every sweep mechanism —
        # including the w-event schedulers via the checkpoint prepass —
        # so a sweep can parallelize within each trial without changing
        # a single released bit.
        from repro.datasets.synthetic import (
            SyntheticConfig,
            synthesize_dataset,
        )
        from repro.experiments.runner import sweep
        from repro.utils.rng import derive_rng

        workload = synthesize_dataset(
            SyntheticConfig(n_windows=80, n_history_windows=50),
            rng=derive_rng(3, "sweep-sharded"),
            name="sweep-sharded",
        )
        kwargs = dict(
            epsilon_grid=(1.0,),
            mechanisms=("uniform", "bd", "ba", "landmark"),
            n_trials=2,
            rng=55,
        )
        serial = sweep(workload, **kwargs)
        sharded = sweep(workload, executor=ShardedExecutor(2), **kwargs)
        assert sharded == serial

    def test_unknown_backend_rejected(self):
        from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
        from repro.experiments.runner import sweep
        from repro.utils.rng import derive_rng

        workload = synthesize_dataset(
            SyntheticConfig(n_windows=40, n_history_windows=30),
            rng=derive_rng(3, "sweep-backend"),
            name="sweep-backend",
        )
        with pytest.raises(ValueError, match="backend"):
            sweep(
                workload,
                epsilon_grid=(1.0, 2.0),
                mechanisms=("uniform",),
                workers=2,
                backend="gpu",
            )
        # Misconfiguration surfaces even when the sweep would run
        # serially (one worker), not only once the grid fans out.
        with pytest.raises(ValueError, match="backend"):
            sweep(
                workload,
                epsilon_grid=(1.0,),
                mechanisms=("uniform",),
                workers=1,
                backend="gpu",
            )
