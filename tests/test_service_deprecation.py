"""The imperative surface warns — once per callsite — and only there.

PR 4's contract: every deprecated imperative entry point emits exactly
one pointed ``DeprecationWarning`` per call (so ``-W
error::DeprecationWarning`` flags each callsite exactly once), while
the declarative service path — which is built *on* those entry points —
emits none at all.
"""

import asyncio
import warnings

import numpy as np
import pytest

from repro.cep.async_session import AsyncSession
from repro.cep.engine import CEPEngine, QualityRequirement
from repro.cep.online import OnlineSession
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.uniform import UniformPatternPPM
from repro.service import ServiceSpec, StreamService
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(4)
PRIVATE = Pattern.of_types("private", "e1", "e2")
TARGET = Pattern.of_types("target", "e2", "e3")


def quiet_engine(*, mechanism=True) -> CEPEngine:
    """A configured engine built without tripping the shims."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        engine = CEPEngine(ALPHABET)
        engine.register_private_pattern(PRIVATE)
        engine.register_query(ContinuousQuery("q", TARGET))
        if mechanism:
            engine.attach_mechanism(UniformPatternPPM(PRIVATE, 2.0))
    return engine


def deprecation_warnings(callsite):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        callsite()
    return [
        entry
        for entry in record
        if issubclass(entry.category, DeprecationWarning)
    ]


def assert_exactly_one_warning(callsite, *, mentions):
    emitted = deprecation_warnings(callsite)
    assert len(emitted) == 1, (
        f"expected exactly one DeprecationWarning, got "
        f"{[str(entry.message) for entry in emitted]}"
    )
    message = str(emitted[0].message)
    assert mentions in message
    assert "ServiceSpec" in message  # every shim points at the new API


class TestEachShimWarnsExactlyOnce:
    def test_register_private_pattern(self):
        engine = CEPEngine(ALPHABET)
        assert_exactly_one_warning(
            lambda: engine.register_private_pattern(PRIVATE),
            mentions="register_private_pattern",
        )

    def test_register_query(self):
        engine = CEPEngine(ALPHABET)
        assert_exactly_one_warning(
            lambda: engine.register_query(ContinuousQuery("q", TARGET)),
            mentions="register_query",
        )

    def test_set_quality_requirement(self):
        engine = CEPEngine(ALPHABET)
        assert_exactly_one_warning(
            lambda: engine.set_quality_requirement(QualityRequirement()),
            mentions="set_quality_requirement",
        )

    def test_attach_mechanism(self):
        engine = CEPEngine(ALPHABET)
        assert_exactly_one_warning(
            lambda: engine.attach_mechanism(UniformPatternPPM(PRIVATE, 2.0)),
            mentions="attach_mechanism",
        )

    def test_enable_accounting(self):
        engine = CEPEngine(ALPHABET)
        assert_exactly_one_warning(
            lambda: engine.enable_accounting(10.0),
            mentions="enable_accounting",
        )

    def test_online_session_constructor(self):
        engine = quiet_engine()
        assert_exactly_one_warning(
            lambda: OnlineSession(engine, rng=1),
            mentions="OnlineSession",
        )

    def test_async_session_constructor(self):
        engine = quiet_engine()
        assert_exactly_one_warning(
            lambda: AsyncSession(engine, rng=1),
            mentions="AsyncSession",
        )

    def test_runner_build_mechanism(self, tiny_workload):
        from repro.experiments.runner import build_mechanism

        assert_exactly_one_warning(
            lambda: build_mechanism("uniform", tiny_workload, 2.0),
            mentions="build_mechanism",
        )


class TestShimsStillWork:
    """The deprecated calls keep their behavior under ``always``."""

    def test_imperative_flow_matches_service_flow(self):
        rng = np.random.default_rng(9)
        stream = IndicatorStream(ALPHABET, rng.random((50, 4)) < 0.4)
        engine = quiet_engine(mechanism=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.core.ppm import MultiPatternPPM

            engine.attach_mechanism(
                MultiPatternPPM([UniformPatternPPM(PRIVATE, 2.0)])
            )
        imperative = engine.process_indicators(stream, rng=7)
        service = ServiceSpec(
            alphabet=ALPHABET,
            patterns=[PRIVATE],
            queries=[("q", TARGET)],
            mechanism="uniform-ppm",
            mechanism_options={"epsilon": 2.0},
            seed=7,
        ).build()
        report = service.run(stream)
        assert np.array_equal(
            report.perturbed.matrix_view(),
            imperative.perturbed.matrix_view(),
        )


class TestServicePathNeverWarns:
    """The declarative path stays clean under -W error::DeprecationWarning."""

    @pytest.fixture
    def stream(self):
        rng = np.random.default_rng(4)
        return IndicatorStream(ALPHABET, rng.random((40, 4)) < 0.4)

    def spec(self, **overrides):
        kwargs = dict(
            alphabet=ALPHABET,
            patterns=[PRIVATE],
            queries=[("q", TARGET)],
            mechanism="uniform-ppm",
            mechanism_options={"epsilon": 2.0},
            accounting=100.0,
            seed=7,
        )
        kwargs.update(overrides)
        return ServiceSpec(**kwargs)

    def test_build_run_and_sessions_emit_no_deprecation(self, stream):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = self.spec().build()
            service.run(stream)
            session = service.open_session()
            session.push(stream.window_types(0))
            checkpoint = service.checkpoint()
            StreamService.resume(self.spec(), checkpoint)

    def test_async_facade_emits_no_deprecation(self, stream):
        async def drive():
            service = self.spec().build()
            async with service.open_async_session() as session:
                return await session.run(
                    [stream.window_types(index) for index in range(10)]
                )

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            asyncio.run(drive())

    def test_engine_async_facade_emits_no_deprecation(self):
        from repro.streams.events import Event
        from repro.streams.stream import EventStream
        from repro.streams.windows import TumblingWindows

        engine = quiet_engine()
        events = EventStream(
            [Event("e1", 0.0), Event("e2", 11.0), Event("e3", 22.0)]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            asyncio.run(
                engine.process_events_async(events, TumblingWindows(10.0))
            )

    def test_workload_evaluation_emits_no_deprecation(self, tiny_workload):
        from repro.experiments.runner import WorkloadEvaluation

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            context = WorkloadEvaluation(tiny_workload)
            context.evaluate("uniform", 2.0, n_trials=1, rng=3)


class TestIoShimsWarnExactlyOnce:
    """PR 5: the legacy datasets.io persistence helpers warn once per
    callsite and point at the connector API; the connector path itself
    (repro.io readers/writers, source=/sink= runs) never warns."""

    @pytest.fixture
    def csv_stream(self):
        rng = np.random.default_rng(8)
        return IndicatorStream(ALPHABET, rng.random((20, 4)) < 0.4)

    def assert_one_io_warning(self, callsite, *, mentions):
        emitted = deprecation_warnings(callsite)
        assert len(emitted) == 1, (
            f"expected exactly one DeprecationWarning, got "
            f"{[str(entry.message) for entry in emitted]}"
        )
        message = str(emitted[0].message)
        assert mentions in message
        assert "repro.io" in message  # every shim points at connectors

    def test_save_indicator_csv(self, csv_stream, tmp_path):
        from repro.datasets.io import save_indicator_csv

        self.assert_one_io_warning(
            lambda: save_indicator_csv(
                csv_stream, str(tmp_path / "s.csv")
            ),
            mentions="save_indicator_csv",
        )

    def test_load_indicator_csv(self, csv_stream, tmp_path):
        from repro.datasets.io import load_indicator_csv
        from repro.io import write_indicator_csv

        path = str(tmp_path / "s.csv")
        write_indicator_csv(csv_stream, path)
        self.assert_one_io_warning(
            lambda: load_indicator_csv(path),
            mentions="load_indicator_csv",
        )

    def test_save_workload_warns_once_despite_nested_saves(
        self, tiny_workload, tmp_path
    ):
        from repro.datasets.io import save_workload

        self.assert_one_io_warning(
            lambda: save_workload(tiny_workload, str(tmp_path / "w")),
            mentions="save_workload",
        )

    def test_load_workload_warns_once_despite_nested_loads(
        self, tiny_workload, tmp_path
    ):
        from repro.datasets.io import load_workload, save_workload

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            save_workload(tiny_workload, str(tmp_path / "w"))
        self.assert_one_io_warning(
            lambda: load_workload(str(tmp_path / "w")),
            mentions="load_workload",
        )

    def test_shims_round_trip_like_the_connectors(
        self, csv_stream, tmp_path
    ):
        from repro.datasets.io import load_indicator_csv, save_indicator_csv

        path = str(tmp_path / "s.csv")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            save_indicator_csv(csv_stream, path)
            assert load_indicator_csv(path) == csv_stream

    def test_connector_path_never_warns(self, csv_stream, tmp_path):
        import asyncio

        from repro.io import read_indicator_csv, write_indicator_csv
        from repro.service import StreamGateway

        path = str(tmp_path / "s.csv")
        out = str(tmp_path / "out.csv")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            write_indicator_csv(csv_stream, path)
            read_indicator_csv(path)
            spec = ServiceSpec(
                alphabet=ALPHABET,
                patterns=[PRIVATE],
                queries=[("q", TARGET)],
                mechanism="uniform-ppm",
                mechanism_options={"epsilon": 2.0},
                source=f"csv:{path}",
                sink=f"csv:{out}",
                seed=7,
            )
            service = spec.build()
            service.run()
            asyncio.run(spec.build().pump(sink="memory"))
            gateway = StreamGateway()
            gateway.add_tenant("a", spec)
            gateway.run()


class TestLegacySpecGrammarWarnsExactlyOnce:
    """PR 7: positional spec tails warn once per callsite with the
    key=value rewrite spelled out; key=value and bare-name specs —
    and raw-tail address specs (paths) — never warn."""

    def assert_one_spec_warning(self, callsite, *, mentions):
        emitted = deprecation_warnings(callsite)
        assert len(emitted) == 1, (
            f"expected exactly one DeprecationWarning, got "
            f"{[str(entry.message) for entry in emitted]}"
        )
        message = str(emitted[0].message)
        assert "key=value spec grammar" in message
        assert mentions in message
        assert "ServiceSpec" in message  # points at the new grammar

    def test_legacy_executor_spec_warns_with_rewrite(self):
        from repro.service import build_executor_from_spec

        self.assert_one_spec_warning(
            lambda: build_executor_from_spec("sharded:process:8:zerocopy"),
            mentions=(
                "use 'sharded:backend=process,workers=8,"
                "transport=zerocopy' instead"
            ),
        )

    def test_legacy_chunked_spec_warns_with_rewrite(self):
        from repro.service import build_executor_from_spec

        self.assert_one_spec_warning(
            lambda: build_executor_from_spec("chunked:128"),
            mentions="use 'chunked:size=128' instead",
        )

    def test_legacy_source_spec_warns_with_rewrite(self):
        from repro.io import resolve_source

        self.assert_one_spec_warning(
            lambda: resolve_source("synthetic:bernoulli:400:21"),
            mentions=(
                "use 'synthetic:generator=bernoulli,windows=400,"
                "seed=21' instead"
            ),
        )

    def test_legacy_sink_spec_warns_with_rewrite(self):
        from repro.io import resolve_sink

        self.assert_one_spec_warning(
            lambda: resolve_sink("metrics:0.7"),
            mentions="use 'metrics:alpha=0.7' instead",
        )

    def test_spec_validation_warns_once_build_stays_silent(self):
        """ServiceSpec warns at validation; building and running the
        validated spec re-resolves the executor silently — one warning
        per callsite total, not one per phase."""
        rng = np.random.default_rng(3)
        stream = IndicatorStream(ALPHABET, rng.random((30, 4)) < 0.4)

        def callsite():
            spec = ServiceSpec(
                alphabet=ALPHABET,
                patterns=[PRIVATE],
                queries=[("q", TARGET)],
                mechanism="uniform-ppm",
                mechanism_options={"epsilon": 2.0},
                executor="sharded:thread:2",
                seed=7,
            )
            spec.build().run(stream)

        self.assert_one_spec_warning(
            callsite, mentions="'sharded:thread:2'"
        )

    def test_keyed_and_bare_specs_never_warn(self):
        from repro.io import resolve_sink, resolve_source
        from repro.service import build_executor_from_spec

        rng = np.random.default_rng(5)
        stream = IndicatorStream(ALPHABET, rng.random((30, 4)) < 0.4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_executor_from_spec("batch")
            build_executor_from_spec(
                "sharded:backend=thread,workers=2"
            )
            build_executor_from_spec("cluster:workers=2,transport=shm")
            resolve_source(
                "synthetic:generator=bernoulli,windows=10,seed=1"
            )
            resolve_sink("metrics:alpha=0.7")
            ServiceSpec(
                alphabet=ALPHABET,
                patterns=[PRIVATE],
                queries=[("q", TARGET)],
                mechanism="uniform-ppm",
                mechanism_options={"epsilon": 2.0},
                executor="sharded:backend=thread,workers=2",
                seed=7,
            ).build().run(stream)

    def test_mechanism_specs_keep_positional_grammar_silently(self):
        """Mechanism specs are exempt: their short positional budget
        argument ('uniform-ppm' options) is not deprecated."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ServiceSpec(
                alphabet=ALPHABET,
                patterns=[PRIVATE],
                queries=[("q", TARGET)],
                mechanism="uniform-ppm",
                mechanism_options={"epsilon": 2.0},
                seed=7,
            )
