"""Property-based tests for the dataset generators and persistence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datasets.io import load_indicator_csv, save_indicator_csv
from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
from repro.datasets.taxi import GridCity, TaxiConfig, simulate_trace
from repro.streams.indicator import EventAlphabet, IndicatorStream


class TestIoRoundTrip:
    @given(
        matrix=arrays(
            dtype=bool,
            shape=st.tuples(
                st.integers(0, 25), st.integers(1, 6)
            ),
        )
    )
    @settings(max_examples=40)
    def test_csv_round_trip_any_matrix(self, matrix, tmp_path_factory):
        alphabet = EventAlphabet.numbered(matrix.shape[1])
        stream = IndicatorStream(alphabet, matrix)
        path = str(
            tmp_path_factory.mktemp("io") / "stream.csv"
        )
        save_indicator_csv(stream, path)
        assert load_indicator_csv(path) == stream


synthetic_configs = st.builds(
    SyntheticConfig,
    n_event_types=st.integers(5, 25),
    n_windows=st.integers(10, 80),
    n_history_windows=st.integers(5, 40),
    pattern_length=st.integers(1, 4),
    n_private=st.integers(1, 3),
    n_target=st.integers(1, 4),
).filter(
    lambda c: c.pattern_length <= c.n_event_types
    and c.n_private + c.n_target <= c.n_patterns
)


class TestSyntheticLaws:
    @given(config=synthetic_configs, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_workload_shape_invariants(self, config, seed):
        workload = synthesize_dataset(config, rng=seed)
        assert workload.stream.n_windows == config.n_windows
        assert workload.history.n_windows == config.n_history_windows
        assert len(workload.private_patterns) == config.n_private
        assert len(workload.target_patterns) == config.n_target
        for pattern in workload.private_patterns + workload.target_patterns:
            assert len(pattern.elements) == config.pattern_length
            assert len(set(pattern.elements)) == config.pattern_length
            for element in pattern.elements:
                assert element in workload.stream.alphabet

    @given(config=synthetic_configs, seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_generation_is_pure(self, config, seed):
        first = synthesize_dataset(config, rng=seed)
        second = synthesize_dataset(config, rng=seed)
        assert first.stream == second.stream
        assert first.history == second.history


taxi_configs = st.builds(
    TaxiConfig,
    n_taxis=st.integers(1, 8),
    n_steps=st.integers(8, 40),
    grid_width=st.integers(5, 15),
    grid_height=st.integers(5, 15),
    window_steps=st.integers(1, 8),
    private_target_overlap=st.floats(0.0, 1.0),
).filter(lambda c: c.window_steps <= c.n_steps)


class TestTaxiLaws:
    @given(config=taxi_configs, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_traces_stay_on_grid_and_move_stepwise(self, config, seed):
        trace = simulate_trace(config, rng=seed)
        assert trace.shape == (config.n_steps, 2)
        assert (trace[:, 0] >= 0).all() and (trace[:, 0] < config.grid_width).all()
        assert (trace[:, 1] >= 0).all() and (trace[:, 1] < config.grid_height).all()
        steps = np.abs(np.diff(trace, axis=0)).sum(axis=1)
        assert (steps <= 1).all()

    @given(config=taxi_configs, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_city_regions_partition(self, config, seed):
        city = GridCity.generate(config, rng=seed)
        categories = {
            city.category(x, y)
            for x in range(city.width)
            for y in range(city.height)
        }
        assert categories <= {"po", "ov", "to", "rd"}
        fractions = city.region_fractions()
        assert 0.0 <= fractions["overlap"] <= fractions["private"]
        assert fractions["target"] <= 1.0

    @given(config=taxi_configs, seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_overlap_fraction_tracks_config(self, config, seed):
        city = GridCity.generate(config, rng=seed)
        fractions = city.region_fractions()
        n_cells = city.n_cells
        expected_private = round(config.private_fraction * n_cells) / n_cells
        assert abs(fractions["private"] - expected_private) < 1e-9
