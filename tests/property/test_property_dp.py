"""Property-based verification of the pattern-level DP guarantee.

These tests enumerate exact output distributions (no sampling) for
randomly drawn budget allocations and stream contents, checking
Definition 4's ratio bound against both neighbouring notions.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.ppm import PatternLevelPPM
from repro.core.quality_model import combine_flip_probabilities
from repro.core.verification import (
    response_distribution,
    verify_instance_dp,
    verify_single_event_dp,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet(["a", "b", "c", "d"])


def make_stream(bits):
    matrix = np.array(bits, dtype=bool).reshape(1, 4)
    return IndicatorStream(ALPHABET, matrix)


allocations = st.lists(
    st.floats(min_value=0.05, max_value=6.0), min_size=2, max_size=3
)
window_bits = st.lists(st.booleans(), min_size=4, max_size=4)


class TestDefinition4:
    @given(epsilons=allocations, bits=window_bits)
    @settings(max_examples=80)
    def test_single_event_neighbours_bounded_by_max_element(
        self, epsilons, bits
    ):
        elements = ["a", "b", "c"][: len(epsilons)]
        pattern = Pattern.of_types("p", *elements)
        ppm = PatternLevelPPM(pattern, BudgetAllocation(epsilons))
        report = verify_single_event_dp(ppm, make_stream(bits))
        assert report.holds
        assert report.epsilon_observed <= max(epsilons) + 1e-9

    @given(epsilons=allocations, bits=window_bits)
    @settings(max_examples=80)
    def test_instance_neighbours_bounded_by_theorem1_sum(
        self, epsilons, bits
    ):
        elements = ["a", "b", "c"][: len(epsilons)]
        pattern = Pattern.of_types("p", *elements)
        ppm = PatternLevelPPM(pattern, BudgetAllocation(epsilons))
        report = verify_instance_dp(ppm, make_stream(bits))
        assert report.holds
        # Theorem 1 is tight: the all-elements flip realizes the sum.
        assert math.isclose(
            report.epsilon_observed, sum(epsilons), rel_tol=1e-9
        )

    @given(epsilons=allocations, bits=window_bits)
    @settings(max_examples=40)
    def test_response_distribution_is_normalized(self, epsilons, bits):
        elements = ["a", "b", "c"][: len(epsilons)]
        pattern = Pattern.of_types("p", *elements)
        ppm = PatternLevelPPM(pattern, BudgetAllocation(epsilons))
        distribution = response_distribution(ppm, make_stream(bits), 0)
        assert math.isclose(sum(distribution.values()), 1.0, rel_tol=1e-9)
        assert all(mass >= 0.0 for mass in distribution.values())

    @given(bits=window_bits, epsilon=st.floats(min_value=0.1, max_value=8.0))
    @settings(max_examples=40)
    def test_post_processing_cannot_exceed_budget(self, bits, epsilon):
        # Definition 4 quantifies over response *sets*; the worst set
        # ratio equals the worst single-outcome ratio for discrete
        # distributions, so checking outcomes suffices.  Verify the set
        # bound explicitly on the all-true outcome set union.
        pattern = Pattern.of_types("p", "a", "b")
        ppm = PatternLevelPPM(pattern, BudgetAllocation.uniform(epsilon, 2))
        stream = make_stream(bits)
        neighbour = stream.flip(0, "a")
        ours = response_distribution(ppm, stream, 0)
        theirs = response_distribution(ppm, neighbour, 0)
        outcomes = list(ours)
        for size in (1, 2, 3, len(outcomes)):
            subset = outcomes[:size]
            p = sum(ours[o] for o in subset)
            q = sum(theirs[o] for o in subset)
            assert p <= math.exp(epsilon) * q + 1e-12


class TestFlipComposition:
    @given(
        ps=st.lists(
            st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=5
        )
    )
    def test_combined_flip_stays_at_most_half(self, ps):
        combined = combine_flip_probabilities([{"a": p} for p in ps])
        assert combined["a"] <= 0.5 + 1e-12

    @given(
        a=st.floats(min_value=0.0, max_value=0.5),
        b=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_combination_commutative(self, a, b):
        ab = combine_flip_probabilities([{"x": a}, {"x": b}])["x"]
        ba = combine_flip_probabilities([{"x": b}, {"x": a}])["x"]
        assert math.isclose(ab, ba, rel_tol=1e-12, abs_tol=1e-12)

    @given(p=st.floats(min_value=0.0, max_value=0.5))
    def test_half_is_absorbing(self, p):
        combined = combine_flip_probabilities([{"x": 0.5}, {"x": p}])["x"]
        assert math.isclose(combined, 0.5, rel_tol=1e-12)

    @given(
        a=st.floats(min_value=0.01, max_value=0.49),
        b=st.floats(min_value=0.01, max_value=0.49),
    )
    def test_more_mechanisms_more_noise(self, a, b):
        single = a
        double = combine_flip_probabilities([{"x": a}, {"x": b}])["x"]
        assert double >= single - 1e-12
