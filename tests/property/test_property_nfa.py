"""Property-based tests of the CEP matcher against reference semantics.

For sequences of plain event types, skip-till-any-match detection is
exactly the subsequence relation and strict contiguity the substring
relation — both easy to decide independently, giving a reference oracle
to test the NFA machinery against.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.matcher import match_pattern
from repro.cep.patterns import Pattern
from repro.streams.events import Event
from repro.streams.stream import EventStream

SYMBOLS = ["a", "b", "c"]

streams = st.lists(st.sampled_from(SYMBOLS), min_size=0, max_size=14)
patterns = st.lists(st.sampled_from(SYMBOLS), min_size=1, max_size=4)


def as_stream(symbols):
    return EventStream(
        [Event(symbol, float(i)) for i, symbol in enumerate(symbols)]
    )


def is_subsequence(needle, haystack):
    position = 0
    for symbol in haystack:
        if position < len(needle) and symbol == needle[position]:
            position += 1
    return position == len(needle)


def is_substring(needle, haystack):
    n = len(needle)
    return any(
        list(haystack[i : i + n]) == list(needle)
        for i in range(len(haystack) - n + 1)
    )


class TestMatcherOracle:
    @given(stream=streams, pattern=patterns)
    @settings(max_examples=150)
    def test_skip_till_any_equals_subsequence(self, stream, pattern):
        matches = match_pattern(
            Pattern.of_types("p", *pattern), as_stream(stream)
        )
        assert bool(len(matches)) == is_subsequence(pattern, stream)

    @given(stream=streams, pattern=patterns)
    @settings(max_examples=150)
    def test_strict_equals_substring(self, stream, pattern):
        matches = match_pattern(
            Pattern.of_types("p", *pattern),
            as_stream(stream),
            contiguity="strict",
        )
        assert bool(len(matches)) == is_substring(pattern, stream)

    @given(stream=streams, pattern=patterns)
    @settings(max_examples=100)
    def test_matches_consume_correct_types_in_order(self, stream, pattern):
        for match in match_pattern(
            Pattern.of_types("p", *pattern), as_stream(stream)
        ):
            assert list(match.element_types()) == pattern
            timestamps = [event.timestamp for event in match.events]
            assert timestamps == sorted(timestamps)

    @given(stream=streams, pattern=patterns)
    @settings(max_examples=100)
    def test_strict_matches_are_also_skip_matches(self, stream, pattern):
        strict = match_pattern(
            Pattern.of_types("p", *pattern),
            as_stream(stream),
            contiguity="strict",
        )
        relaxed = match_pattern(
            Pattern.of_types("p", *pattern), as_stream(stream)
        )
        relaxed_keys = {match.events for match in relaxed}
        for match in strict:
            assert match.events in relaxed_keys

    @given(stream=streams, pattern=patterns, within=st.integers(1, 20))
    @settings(max_examples=100)
    def test_within_only_limits_span(self, stream, pattern, within):
        matches = match_pattern(
            Pattern.of_types("p", *pattern),
            as_stream(stream),
            within=float(within),
        )
        for match in matches:
            assert match.span <= within
