"""Property-based tests: event-stream PPM vs windowed PPM equivalence.

Definition 5 has two carriers in this library — raw event streams
(suppress/inject) and windowed indicators (bit flips).  For arbitrary
streams, allocations and seeds, the two must commute exactly with the
window reduction, and the event-level form must never touch
unprotected event types.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.patterns import Pattern
from repro.core.budget import BudgetAllocation
from repro.core.event_ppm import EventStreamPPM
from repro.core.ppm import PatternLevelPPM, apply_randomized_response
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows

ALPHABET = EventAlphabet(["a", "b", "c"])


@st.composite
def window_streams(draw):
    """An event stream organized in 10-unit windows plus its window list."""
    n_windows = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    events = []
    for window in range(n_windows):
        base = window * 10.0
        for offset, name in enumerate(("a", "b", "c")):
            if rng.random() < 0.5:
                events.append(Event(name, base + offset))
    # Guarantee at least one event so EventStream is non-trivial.
    if not events:
        events.append(Event("a", 0.0))
    return EventStream(events)


allocations2 = st.tuples(
    st.floats(min_value=0.05, max_value=6.0),
    st.floats(min_value=0.05, max_value=6.0),
)


class TestCarrierEquivalence:
    @given(
        stream=window_streams(),
        epsilons=allocations2,
        seed=st.integers(0, 5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_commutes_with_reduction(self, stream, epsilons, seed):
        pattern = Pattern.of_types("p", "a", "b")
        allocation = BudgetAllocation(epsilons)
        eventwise = EventStreamPPM(pattern, allocation)
        windows = TumblingWindows(10.0, emit_empty=True).assign(stream)
        via_events = eventwise.perturb_to_indicators(
            ALPHABET, windows, rng=seed
        )
        reduced = IndicatorStream.from_event_windows(
            ALPHABET, windows, strict=False
        )
        via_indicators = apply_randomized_response(
            reduced, eventwise.flip_probability_by_type(), rng=seed
        )
        assert via_events == via_indicators

    @given(
        stream=window_streams(),
        epsilons=allocations2,
        seed=st.integers(0, 5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_windowed_ppm(self, stream, epsilons, seed):
        pattern = Pattern.of_types("p", "a", "b")
        allocation = BudgetAllocation(epsilons)
        windowed = PatternLevelPPM(pattern, allocation)
        eventwise = EventStreamPPM(pattern, allocation)
        windows = TumblingWindows(10.0, emit_empty=True).assign(stream)
        reduced = IndicatorStream.from_event_windows(
            ALPHABET, windows, strict=False
        )
        assert eventwise.perturb_to_indicators(
            ALPHABET, windows, rng=seed
        ) == windowed.perturb(reduced, rng=seed)

    @given(stream=window_streams(), seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_unprotected_types_pass_through(self, stream, seed):
        pattern = Pattern.of_types("p", "a", "b")
        ppm = EventStreamPPM.uniform(pattern, 2.0)
        perturbed = ppm.perturb(stream, TumblingWindows(10.0), rng=seed)
        original_c = [
            e.timestamp for e in stream if e.event_type == "c"
        ]
        perturbed_c = [
            e.timestamp for e in perturbed if e.event_type == "c"
        ]
        assert original_c == perturbed_c

    @given(stream=window_streams(), seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_output_temporally_ordered(self, stream, seed):
        pattern = Pattern.of_types("p", "a", "b")
        ppm = EventStreamPPM.uniform(pattern, 1.0)
        perturbed = ppm.perturb(stream, TumblingWindows(10.0), rng=seed)
        timestamps = perturbed.timestamps()
        assert timestamps == sorted(timestamps)
