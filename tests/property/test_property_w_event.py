"""Property-based tests of the w-event budget invariant.

Whatever the stream contents, scheduler decisions, or randomness, no
sliding window of ``w`` timestamps may spend more than ε — the defining
invariant of w-event DP (Kellaris et al.).  Hypothesis drives stream
shapes designed to stress the schedulers (constant runs, jumps, noise).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(3)


@st.composite
def stress_streams(draw):
    """Streams built from constant runs and random segments."""
    segments = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["zeros", "ones", "noise"]),
                st.integers(min_value=1, max_value=15),
            ),
            min_size=1,
            max_size=6,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    rows = []
    for kind, length in segments:
        if kind == "zeros":
            rows.append(np.zeros((length, 3), dtype=bool))
        elif kind == "ones":
            rows.append(np.ones((length, 3), dtype=bool))
        else:
            rows.append(rng.random((length, 3)) < 0.5)
    return IndicatorStream(ALPHABET, np.vstack(rows))


mechanism_params = st.tuples(
    st.floats(min_value=0.1, max_value=10.0),  # epsilon
    st.integers(min_value=1, max_value=12),    # w
    st.integers(min_value=0, max_value=1000),  # rng seed
)


class TestWEventInvariant:
    @given(stream=stress_streams(), params=mechanism_params)
    @settings(max_examples=60, deadline=None)
    def test_bd_never_overspends_any_window(self, stream, params):
        epsilon, w, seed = params
        mechanism = BudgetDistribution(epsilon, w=w)
        mechanism.perturb(stream, rng=seed)
        assert mechanism.last_trace.max_window_spend(w) <= epsilon + 1e-9

    @given(stream=stress_streams(), params=mechanism_params)
    @settings(max_examples=60, deadline=None)
    def test_ba_never_overspends_any_window(self, stream, params):
        epsilon, w, seed = params
        mechanism = BudgetAbsorption(epsilon, w=w)
        mechanism.perturb(stream, rng=seed)
        assert mechanism.last_trace.max_window_spend(w) <= epsilon + 1e-9

    @given(stream=stress_streams(), params=mechanism_params)
    @settings(max_examples=40, deadline=None)
    def test_ba_publication_budgets_bounded_by_eps2(self, stream, params):
        epsilon, w, seed = params
        mechanism = BudgetAbsorption(epsilon, w=w)
        mechanism.perturb(stream, rng=seed)
        budgets = mechanism.last_trace.publication_budgets
        assert max(budgets, default=0.0) <= epsilon / 2.0 + 1e-9

    @given(stream=stress_streams(), params=mechanism_params)
    @settings(max_examples=40, deadline=None)
    def test_window_spend_accessors_match_naive_slicing(
        self, stream, params
    ):
        # The O(n) prefix-sum spend accessors must agree with the
        # definitional O(n·w) slice sums on every window, for both
        # schedulers, whatever the trace shape.
        epsilon, w, seed = params
        for mechanism_cls in (BudgetDistribution, BudgetAbsorption):
            mechanism = mechanism_cls(epsilon, w=w)
            mechanism.perturb(stream, rng=seed)
            trace = mechanism.last_trace
            n = len(trace.published)
            naive = [
                sum(trace.publication_budgets[start : min(start + w, n)])
                + sum(
                    trace.dissimilarity_budgets[start : min(start + w, n)]
                )
                for start in range(n)
            ]
            for start in range(0, n, max(1, n // 7)):
                assert trace.spent_in_window(start, w) == pytest.approx(
                    naive[start], abs=1e-9
                )
            assert trace.max_window_spend(w) == pytest.approx(
                max(naive), abs=1e-9
            )

    @given(stream=stress_streams(), params=mechanism_params)
    @settings(max_examples=40, deadline=None)
    def test_output_shape_always_preserved(self, stream, params):
        epsilon, w, seed = params
        for mechanism_cls in (BudgetDistribution, BudgetAbsorption):
            mechanism = mechanism_cls(epsilon, w=w)
            released = mechanism.perturb(stream, rng=seed)
            assert released.n_windows == stream.n_windows
            assert released.alphabet == stream.alphabet
