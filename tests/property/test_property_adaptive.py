"""Property-based tests for Algorithm 1 (the adaptive budget search)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.patterns import Pattern
from repro.core.adaptive import fit_allocation
from repro.core.budget import BudgetAllocation
from repro.core.quality_model import AnalyticQualityEstimator
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)


def make_history(seed: int, n_windows: int = 120) -> IndicatorStream:
    rng = np.random.default_rng(seed)
    rates = rng.random(5) * 0.8 + 0.1
    return IndicatorStream(ALPHABET, rng.random((n_windows, 5)) < rates)


private_lengths = st.integers(min_value=2, max_value=4)
epsilons = st.floats(min_value=0.2, max_value=8.0)
seeds = st.integers(min_value=0, max_value=10_000)


class TestAlgorithm1Properties:
    @given(epsilon=epsilons, seed=seeds, length=private_lengths)
    @settings(max_examples=30, deadline=None)
    def test_budget_conserved_and_feasible(self, epsilon, seed, length):
        history = make_history(seed)
        private = Pattern.of_types("p", *[f"e{i+1}" for i in range(length)])
        target = Pattern.of_types("t", "e2", "e5")
        estimator = AnalyticQualityEstimator(history, private, [target])
        result = fit_allocation(
            epsilon, length, estimator, max_iterations=60
        )
        assert math.isclose(
            result.allocation.total, epsilon, rel_tol=1e-6, abs_tol=1e-9
        )
        assert min(result.allocation) >= 0.0

    @given(epsilon=epsilons, seed=seeds, length=private_lengths)
    @settings(max_examples=30, deadline=None)
    def test_never_worse_than_uniform(self, epsilon, seed, length):
        history = make_history(seed)
        private = Pattern.of_types("p", *[f"e{i+1}" for i in range(length)])
        target = Pattern.of_types("t", "e2", "e5")
        estimator = AnalyticQualityEstimator(history, private, [target])
        result = fit_allocation(
            epsilon, length, estimator, max_iterations=60
        )
        uniform_q = estimator.evaluate(
            BudgetAllocation.uniform(epsilon, length)
        ).q
        assert result.quality_trace[-1] >= uniform_q - 1e-12

    @given(epsilon=epsilons, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_trace_monotone_non_decreasing(self, epsilon, seed):
        history = make_history(seed)
        private = Pattern.of_types("p", "e1", "e2", "e3")
        target = Pattern.of_types("t", "e2", "e4")
        estimator = AnalyticQualityEstimator(history, private, [target])
        result = fit_allocation(epsilon, 3, estimator, max_iterations=60)
        for earlier, later in zip(
            result.quality_trace, result.quality_trace[1:]
        ):
            assert later >= earlier - 1e-12

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_given_history(self, seed):
        history = make_history(seed)
        private = Pattern.of_types("p", "e1", "e2", "e3")
        target = Pattern.of_types("t", "e2", "e4")
        estimator = AnalyticQualityEstimator(history, private, [target])
        first = fit_allocation(2.0, 3, estimator, max_iterations=60)
        second = fit_allocation(2.0, 3, estimator, max_iterations=60)
        assert first.allocation.epsilons == second.allocation.epsilons
