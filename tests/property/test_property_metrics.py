"""Property-based tests on the quality metrics (Eq. (1)-(4))."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.aggregate import summarize
from repro.metrics.confusion import ConfusionCounts
from repro.metrics.mre import mean_relative_error
from repro.metrics.quality import quality_score

unit = st.floats(min_value=0.0, max_value=1.0)
counts = st.floats(min_value=0.0, max_value=1000.0)
bool_vectors = arrays(dtype=bool, shape=st.integers(0, 50))


class TestQualityScoreLaws:
    @given(precision=unit, recall=unit, alpha=unit)
    def test_bounded_by_components(self, precision, recall, alpha):
        q = quality_score(precision, recall, alpha)
        assert min(precision, recall) - 1e-12 <= q <= max(precision, recall) + 1e-12

    @given(precision=unit, recall=unit)
    def test_alpha_interpolates_linearly(self, precision, recall):
        assert quality_score(precision, recall, 1.0) == precision
        assert quality_score(precision, recall, 0.0) == recall
        midpoint = quality_score(precision, recall, 0.5)
        assert math.isclose(
            midpoint, (precision + recall) / 2, rel_tol=1e-12, abs_tol=1e-300
        )

    @given(p1=unit, p2=unit, recall=unit, alpha=unit)
    def test_monotone_in_precision(self, p1, p2, recall, alpha):
        low, high = sorted([p1, p2])
        assert quality_score(low, recall, alpha) <= quality_score(
            high, recall, alpha
        ) + 1e-12


class TestConfusionLaws:
    @given(tp=counts, fp=counts, fn=counts, tn=counts)
    def test_rates_in_unit_interval(self, tp, fp, fn, tn):
        c = ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn)
        assert 0.0 <= c.precision <= 1.0
        assert 0.0 <= c.recall <= 1.0
        assert 0.0 <= c.accuracy <= 1.0

    @given(
        a=st.tuples(counts, counts, counts, counts),
        b=st.tuples(counts, counts, counts, counts),
    )
    def test_addition_commutative(self, a, b):
        first = ConfusionCounts(*a) + ConfusionCounts(*b)
        second = ConfusionCounts(*b) + ConfusionCounts(*a)
        assert first == second

    @given(truth=bool_vectors, seed=st.integers(0, 2**16))
    @settings(max_examples=80)
    def test_from_vectors_counts_partition_total(self, truth, seed):
        rng = np.random.default_rng(seed)
        predicted = rng.random(truth.shape) < 0.5
        c = ConfusionCounts.from_vectors(truth, predicted)
        assert c.total == truth.size

    @given(truth=bool_vectors)
    def test_perfect_detector(self, truth):
        c = ConfusionCounts.from_vectors(truth, truth)
        assert c.fp == 0 and c.fn == 0
        assert c.precision == 1.0 and c.recall == 1.0


class TestMreLaws:
    @given(
        q_ord=st.floats(min_value=0.01, max_value=1.0),
        q_ppm=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bounded_above_by_one(self, q_ord, q_ppm):
        assert mean_relative_error(q_ord, q_ppm) <= 1.0

    @given(q_ord=st.floats(min_value=0.01, max_value=1.0))
    def test_zero_iff_no_loss(self, q_ord):
        assert mean_relative_error(q_ord, q_ord) == 0.0

    @given(
        q_ord=st.floats(min_value=0.01, max_value=1.0),
        loss1=unit,
        loss2=unit,
    )
    def test_monotone_in_quality_loss(self, q_ord, loss1, loss2):
        small_loss, big_loss = sorted([loss1, loss2])
        q_good = q_ord * (1 - small_loss)
        q_bad = q_ord * (1 - big_loss)
        assert mean_relative_error(q_ord, q_bad) >= mean_relative_error(
            q_ord, q_good
        ) - 1e-12


class TestSummarizeLaws:
    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=40
        )
    )
    def test_mean_within_range(self, values):
        summary = summarize(values)
        assert min(values) - 1e-9 <= summary.mean <= max(values) + 1e-9

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=2, max_size=40
        )
    )
    def test_ci_is_symmetric_around_mean(self, values):
        summary = summarize(values)
        low, high = summary.ci95
        assert math.isclose(
            summary.mean - low, high - summary.mean, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(value=st.floats(min_value=-100, max_value=100), n=st.integers(1, 30))
    def test_constant_values_zero_std(self, value, n):
        summary = summarize([value] * n)
        # Mean computation can leave ~1 ulp of residue per element.
        assert summary.std <= 1e-12 * max(1.0, abs(value))
        assert math.isclose(summary.mean, value, rel_tol=1e-12, abs_tol=1e-300)
