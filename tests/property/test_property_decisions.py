"""Property-based bit-identity of the decision kernel's scan modes.

The plan → scan → resolve pipeline in :mod:`repro.runtime.decisions`
promises that the vectorized U-space scan never changes a single output
bit: whatever the stream contents, scheduler parameters, block
chunking (including the prefetch-threshold boundary sizes 1/31/32/33)
or a snapshot/restore mid-run, ``scan=margin`` and ``scan=exact``
must reproduce the ``scan=off`` scalar loop exactly — releases,
verdict traces, scheduler state and snapshots alike.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.landmark import LandmarkPrivacy

N_TYPES = 3

#: The kernel's default prefetch threshold is 32; these block sizes
#: straddle it, exercising both the vectorized-uniform and the
#: per-step-draw paths plus the off-by-one edges.
BLOCK_SIZES = (1, 31, 32, 33)


@st.composite
def stress_matrices(draw):
    """Float indicator matrices from constant runs and random segments."""
    segments = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["zeros", "ones", "noise"]),
                st.integers(min_value=1, max_value=40),
            ),
            min_size=1,
            max_size=5,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    rows = []
    for kind, length in segments:
        if kind == "zeros":
            rows.append(np.zeros((length, N_TYPES)))
        elif kind == "ones":
            rows.append(np.ones((length, N_TYPES)))
        else:
            rows.append((rng.random((length, N_TYPES)) < 0.5).astype(float))
    return np.vstack(rows)


@st.composite
def block_plans(draw):
    """A chunking of a run into prefetch-boundary block sizes."""
    return draw(
        st.lists(
            st.sampled_from(BLOCK_SIZES), min_size=1, max_size=8
        )
    )


mechanism_params = st.tuples(
    st.floats(min_value=0.05, max_value=10.0),  # epsilon
    st.integers(min_value=1, max_value=12),     # w
    st.integers(min_value=0, max_value=1000),   # rng seed
)


def chunks(matrix, plan):
    """Cut ``matrix`` into the plan's block sizes (cycled, clipped)."""
    row = 0
    index = 0
    while row < matrix.shape[0]:
        size = min(plan[index % len(plan)], matrix.shape[0] - row)
        yield matrix[row : row + size]
        row += size
        index += 1


def assert_snapshots_equal(left, right):
    assert left.keys() == right.keys()
    for key in left:
        a, b = left[key], right[key]
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            assert a is not None and b is not None, key
            assert np.array_equal(a, b), key
        else:
            assert a == b, key


def run_w_event(cls, epsilon, w, seed, matrix, plan, scan):
    mechanism = cls(epsilon, w=w, scan=scan)
    releaser = mechanism.online_releaser(
        N_TYPES, rng=seed, horizon=matrix.shape[0]
    )
    released = [releaser.step_block(block) for block in chunks(matrix, plan)]
    return releaser, np.vstack(released)


class TestWEventScanIdentity:
    @given(
        matrix=stress_matrices(), params=mechanism_params, plan=block_plans()
    )
    @settings(max_examples=40, deadline=None)
    def test_bd_scan_bit_identical(self, matrix, params, plan):
        self.check_scheduler(BudgetDistribution, matrix, params, plan)

    @given(
        matrix=stress_matrices(), params=mechanism_params, plan=block_plans()
    )
    @settings(max_examples=40, deadline=None)
    def test_ba_scan_bit_identical(self, matrix, params, plan):
        self.check_scheduler(BudgetAbsorption, matrix, params, plan)

    def check_scheduler(self, cls, matrix, params, plan):
        epsilon, w, seed = params
        baseline, expected = run_w_event(
            cls, epsilon, w, seed, matrix, plan, "off"
        )
        for scan in ("margin", "exact"):
            releaser, released = run_w_event(
                cls, epsilon, w, seed, matrix, plan, scan
            )
            assert np.array_equal(released, expected), scan
            assert releaser.trace.published == baseline.trace.published
            assert (
                releaser.trace.publication_budgets
                == baseline.trace.publication_budgets
            )
            assert (
                releaser.trace.dissimilarity_budgets
                == baseline.trace.dissimilarity_budgets
            )
            assert releaser.scheduler_state == baseline.scheduler_state
            assert_snapshots_equal(releaser.snapshot(), baseline.snapshot())

    @given(
        matrix=stress_matrices(),
        params=mechanism_params,
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_restore_mid_block_matches_uninterrupted(
        self, matrix, params, cut_fraction
    ):
        epsilon, w, seed = params
        n = matrix.shape[0]
        cut = min(n - 1, int(cut_fraction * n)) if n > 1 else 0
        baseline, expected = run_w_event(
            BudgetDistribution, epsilon, w, seed, matrix, [33], "off"
        )
        mechanism = BudgetDistribution(epsilon, w=w, scan="margin")
        first = mechanism.online_releaser(N_TYPES, rng=seed, horizon=n)
        head = first.step_block(matrix[:cut])
        checkpoint = first.snapshot()
        second = mechanism.online_releaser(N_TYPES, rng=seed, horizon=n)
        second.restore(checkpoint)
        tail = second.step_block(matrix[cut:])
        assert np.array_equal(np.vstack([head, tail]), expected)
        assert second.trace.published == baseline.trace.published
        assert_snapshots_equal(second.snapshot(), baseline.snapshot())


landmark_params = st.tuples(
    st.floats(min_value=0.05, max_value=10.0),  # epsilon
    st.floats(min_value=0.1, max_value=0.9),    # rho
    st.integers(min_value=0, max_value=1000),   # rng seed
    st.integers(min_value=0, max_value=2**16),  # mask seed
    st.floats(min_value=0.0, max_value=1.0),    # landmark density
)


class TestLandmarkScanIdentity:
    @given(
        matrix=stress_matrices(), params=landmark_params, plan=block_plans()
    )
    @settings(max_examples=40, deadline=None)
    def test_landmark_scan_bit_identical(self, matrix, params, plan):
        epsilon, rho, seed, mask_seed, density = params
        n = matrix.shape[0]
        mask = np.random.default_rng(mask_seed).random(n) < density
        outputs = {}
        snapshots = {}
        for scan in ("off", "margin", "exact"):
            mechanism = LandmarkPrivacy(
                epsilon, landmarks=mask, rho=rho, scan=scan
            )
            releaser = mechanism.online_releaser(
                N_TYPES, rng=seed, horizon=n
            )
            outputs[scan] = np.vstack(
                [releaser.step_block(block) for block in chunks(matrix, plan)]
            )
            snapshots[scan] = releaser.snapshot()
        for scan in ("margin", "exact"):
            assert np.array_equal(outputs[scan], outputs["off"]), scan
            assert_snapshots_equal(snapshots[scan], snapshots["off"])

    @given(matrix=stress_matrices(), params=landmark_params)
    @settings(max_examples=30, deadline=None)
    def test_landmark_prepass_elision_matches_stepping(
        self, matrix, params
    ):
        """advance_block (regular rows hopped) ends in the same state."""
        epsilon, rho, seed, mask_seed, density = params
        n = matrix.shape[0]
        mask = np.random.default_rng(mask_seed).random(n) < density
        mechanism = LandmarkPrivacy(
            epsilon, landmarks=mask, rho=rho, scan="margin"
        )
        stepped = mechanism.online_releaser(N_TYPES, rng=seed, horizon=n)
        stepped.step_block(matrix)
        prepassed = mechanism.online_releaser(N_TYPES, rng=seed, horizon=n)
        prepassed.advance_block(matrix)
        assert_snapshots_equal(prepassed.snapshot(), stepped.snapshot())
