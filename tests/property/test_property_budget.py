"""Property-based tests for the Theorem 1 budget algebra."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import BudgetAllocation, theorem1_epsilon
from repro.mechanisms.randomized_response import (
    epsilon_to_flip_probability,
    flip_probability_to_epsilon,
)

epsilons = st.floats(
    min_value=0.01, max_value=50.0, allow_nan=False, allow_infinity=False
)
lengths = st.integers(min_value=1, max_value=8)
flip_probabilities = st.floats(min_value=1e-6, max_value=0.5)


class TestBudgetFlipBijection:
    @given(epsilon=st.floats(min_value=0.0, max_value=60.0))
    def test_epsilon_to_p_in_valid_range(self, epsilon):
        p = epsilon_to_flip_probability(epsilon)
        assert 0.0 < p <= 0.5

    @given(epsilon=st.floats(min_value=1e-6, max_value=40.0))
    def test_round_trip_from_epsilon(self, epsilon):
        p = epsilon_to_flip_probability(epsilon)
        assert math.isclose(
            flip_probability_to_epsilon(p), epsilon, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(p=flip_probabilities)
    def test_round_trip_from_probability(self, p):
        epsilon = flip_probability_to_epsilon(p)
        assert math.isclose(
            epsilon_to_flip_probability(epsilon), p, rel_tol=1e-9, abs_tol=1e-12
        )

    @given(a=epsilons, b=epsilons)
    def test_monotone(self, a, b):
        if a < b:
            assert epsilon_to_flip_probability(
                a
            ) >= epsilon_to_flip_probability(b)


class TestUniformAllocation:
    @given(epsilon=epsilons, length=lengths)
    def test_uniform_sums_to_total(self, epsilon, length):
        allocation = BudgetAllocation.uniform(epsilon, length)
        assert math.isclose(allocation.total, epsilon, rel_tol=1e-9)
        assert allocation.sums_to(epsilon)

    @given(epsilon=epsilons, length=lengths)
    def test_uniform_realizes_theorem1_budget(self, epsilon, length):
        allocation = BudgetAllocation.uniform(epsilon, length)
        realized = theorem1_epsilon(allocation.flip_probabilities())
        assert math.isclose(realized, epsilon, rel_tol=1e-9, abs_tol=1e-9)

    @given(epsilon=epsilons, length=lengths)
    def test_uniform_entropy_is_log_m(self, epsilon, length):
        allocation = BudgetAllocation.uniform(epsilon, length)
        assert math.isclose(
            allocation.entropy(), math.log(length), rel_tol=1e-9, abs_tol=1e-9
        )


class TestStepwiseMoves:
    @given(
        epsilon=epsilons,
        length=st.integers(min_value=2, max_value=6),
        moves=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=1e-4, max_value=1.0),
            ),
            max_size=25,
        ),
    )
    @settings(max_examples=60)
    def test_any_move_sequence_conserves_budget(self, epsilon, length, moves):
        allocation = BudgetAllocation.uniform(epsilon, length)
        for index, step in moves:
            allocation = allocation.with_move(index % length, step * epsilon)
            assert math.isclose(
                allocation.total, epsilon, rel_tol=1e-6, abs_tol=1e-9
            )
            assert min(allocation) >= 0.0

    @given(epsilon=epsilons, length=st.integers(min_value=2, max_value=6))
    def test_move_never_decreases_target_element(self, epsilon, length):
        allocation = BudgetAllocation.uniform(epsilon, length)
        moved = allocation.with_move(0, epsilon / 10.0)
        assert moved[0] >= allocation[0] - 1e-12


class TestNormalization:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=6
        ).filter(lambda vs: sum(vs) > 0.1),
        target=epsilons,
    )
    def test_normalized_total(self, values, target):
        allocation = BudgetAllocation(values)
        scaled = allocation.normalized_to(target)
        assert math.isclose(scaled.total, target, rel_tol=1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=6
        ),
        target=epsilons,
    )
    def test_normalization_preserves_ratios(self, values, target):
        allocation = BudgetAllocation(values)
        scaled = allocation.normalized_to(target)
        for original, rescaled in zip(allocation, scaled):
            assert math.isclose(
                rescaled / scaled.total,
                original / allocation.total,
                rel_tol=1e-9,
            )
