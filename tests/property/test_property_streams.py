"""Property-based tests on the stream substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.merge import merge_event_streams, partition_by_source
from repro.streams.stream import EventStream
from repro.streams.windows import CountWindows, SessionWindows, TumblingWindows

ALPHABET = EventAlphabet(["a", "b", "c"])

matrices = arrays(
    dtype=bool,
    shape=st.tuples(
        st.integers(min_value=0, max_value=30), st.just(3)
    ),
)


class TestIndicatorStreamLaws:
    @given(matrix=matrices)
    def test_split_concat_round_trip(self, matrix):
        stream = IndicatorStream(ALPHABET, matrix)
        history, evaluation = stream.split(0.5)
        assert history.concatenate(evaluation) == stream

    @given(
        matrix=matrices.filter(lambda m: m.shape[0] > 0),
        window=st.integers(min_value=0, max_value=29),
        column=st.sampled_from(["a", "b", "c"]),
    )
    def test_flip_is_involutive(self, matrix, window, column):
        stream = IndicatorStream(ALPHABET, matrix)
        index = window % stream.n_windows
        assert stream.flip(index, column).flip(index, column) == stream

    @given(matrix=matrices)
    def test_restrict_preserves_columns(self, matrix):
        stream = IndicatorStream(ALPHABET, matrix)
        projected = stream.restrict(["c", "a"])
        assert np.array_equal(projected.column("a"), stream.column("a"))
        assert np.array_equal(projected.column("c"), stream.column("c"))

    @given(matrix=matrices.filter(lambda m: m.shape[0] > 0))
    def test_detection_subset_law(self, matrix):
        # Detecting a superset of elements can never fire in more
        # windows than a subset.
        stream = IndicatorStream(ALPHABET, matrix)
        small = stream.detect_all(["a"])
        large = stream.detect_all(["a", "b"])
        assert not (large & ~small).any()

    @given(matrix=matrices)
    def test_occurrence_rates_match_columns(self, matrix):
        stream = IndicatorStream(ALPHABET, matrix)
        rates = stream.occurrence_rates()
        for name in ALPHABET:
            if stream.n_windows:
                assert rates[name] == stream.column(name).mean()
            else:
                assert rates[name] == 0.0


timestamp_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=0,
    max_size=40,
).map(sorted)


class TestWindowLaws:
    @given(timestamps=timestamp_lists.filter(lambda ts: len(ts) > 0))
    def test_tumbling_windows_partition_events(self, timestamps):
        stream = EventStream([Event("e", t) for t in timestamps])
        windows = TumblingWindows(10.0).assign(stream)
        assert sum(len(w) for w in windows) == len(stream)

    @given(
        timestamps=timestamp_lists.filter(lambda ts: len(ts) > 0),
        size=st.integers(min_value=1, max_value=10),
    )
    def test_count_windows_partition_events(self, timestamps, size):
        stream = EventStream([Event("e", t) for t in timestamps])
        windows = CountWindows(size).assign(stream)
        assert sum(len(w) for w in windows) == len(stream)
        for window in windows[:-1]:
            assert len(window) == size

    @given(
        timestamps=timestamp_lists.filter(lambda ts: len(ts) > 0),
        gap=st.floats(min_value=0.5, max_value=100.0),
    )
    def test_session_windows_partition_and_respect_gap(self, timestamps, gap):
        stream = EventStream([Event("e", t) for t in timestamps])
        windows = SessionWindows(gap).assign(stream)
        assert sum(len(w) for w in windows) == len(stream)
        for window in windows:
            gaps = np.diff([e.timestamp for e in window.events])
            assert (gaps <= gap + 1e-12).all()


stream_specs = st.lists(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=0,
        max_size=15,
    ).map(sorted),
    min_size=1,
    max_size=4,
)


class TestMergeLaws:
    @given(specs=stream_specs)
    @settings(max_examples=60)
    def test_merge_preserves_count_and_order(self, specs):
        streams = [
            EventStream(
                [Event("e", t, source=f"s{i}") for t in timestamps],
                name=f"s{i}",
            )
            for i, timestamps in enumerate(specs)
        ]
        merged = merge_event_streams(streams)
        assert len(merged) == sum(len(s) for s in streams)
        timestamps = merged.timestamps()
        assert timestamps == sorted(timestamps)

    @given(specs=stream_specs)
    @settings(max_examples=60)
    def test_partition_inverts_merge_per_source(self, specs):
        streams = [
            EventStream(
                [Event("e", t, source=f"s{i}") for t in timestamps],
                name=f"s{i}",
            )
            for i, timestamps in enumerate(specs)
        ]
        merged = merge_event_streams(streams)
        parts = partition_by_source(merged)
        for i, timestamps in enumerate(specs):
            source = f"s{i}"
            if timestamps:
                assert parts[source].timestamps() == timestamps
            else:
                assert source not in parts
