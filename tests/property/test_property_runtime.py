"""Property-based parity of the batch and chunked executors.

The chunked executor exists for bounded-memory deployment, not for
different numbers: under the same seed it must reproduce the batch
executor bit for bit — identical original/released indicator streams,
identical per-query matches, identical quality metrics — whatever the
mechanism, pattern shapes, stream size or chunk size.  Hypothesis
drives all of those dimensions at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.event_level import EventLevelRR
from repro.baselines.landmark import LandmarkPrivacy
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.runtime import (
    BatchExecutor,
    ChunkedExecutor,
    ShardedExecutor,
    StreamPipeline,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream

N_TYPES = 6
ALPHABET = EventAlphabet.numbered(N_TYPES)


@st.composite
def pipelines_and_streams(draw):
    n_windows = draw(st.integers(min_value=1, max_value=120))
    density = draw(st.floats(min_value=0.05, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    stream = IndicatorStream(
        ALPHABET, rng.random((n_windows, N_TYPES)) < density
    )

    def pattern(name):
        length = draw(st.integers(min_value=1, max_value=3))
        types = draw(
            st.lists(
                st.sampled_from(ALPHABET.types),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        return Pattern.of_types(name, *types)

    private = pattern("private")
    targets = [pattern(f"t{i}") for i in range(draw(st.integers(1, 3)))]
    kind = draw(
        st.sampled_from(["uniform", "multi", "bd", "ba", "event", "landmark"])
    )
    epsilon = draw(st.floats(min_value=0.2, max_value=8.0))
    if kind == "uniform":
        mechanism = UniformPatternPPM(private, epsilon)
    elif kind == "multi":
        mechanism = MultiPatternPPM(
            [
                UniformPatternPPM(private, epsilon),
                UniformPatternPPM(pattern("other"), epsilon / 2),
            ]
        )
    elif kind == "bd":
        mechanism = BudgetDistribution(epsilon, w=draw(st.integers(1, 12)))
    elif kind == "ba":
        mechanism = BudgetAbsorption(epsilon, w=draw(st.integers(1, 12)))
    elif kind == "event":
        mechanism = EventLevelRR(epsilon)
    else:
        mask = rng.random(n_windows) < 0.3
        mechanism = LandmarkPrivacy(epsilon, landmarks=mask)
    queries = [
        ContinuousQuery(pattern.name, pattern) for pattern in targets
    ]
    chunk_size = draw(st.integers(min_value=1, max_value=n_windows + 8))
    run_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return (
        StreamPipeline(ALPHABET, queries=queries, mechanism=mechanism),
        stream,
        chunk_size,
        run_seed,
    )


class TestExecutorParity:
    @settings(max_examples=60, deadline=None)
    @given(pipelines_and_streams())
    def test_chunked_equals_batch(self, case):
        pipeline, stream, chunk_size, run_seed = case
        batch = BatchExecutor().run(pipeline, stream, rng=run_seed)
        chunked = ChunkedExecutor(chunk_size).run(
            pipeline, stream, rng=run_seed
        )
        assert chunked.original == batch.original
        assert chunked.released == batch.released
        assert set(chunked.answers) == set(batch.answers)
        for name, detections in batch.answers.items():
            assert np.array_equal(chunked.answers[name], detections)
            assert np.array_equal(
                chunked.true_answers[name], batch.true_answers[name]
            )
        assert chunked.quality() == batch.quality()
        assert chunked.mre() == pytest.approx(batch.mre())

    @settings(max_examples=20, deadline=None)
    @given(pipelines_and_streams())
    def test_chunked_is_deterministic(self, case):
        pipeline, stream, chunk_size, run_seed = case
        first = ChunkedExecutor(chunk_size).run(pipeline, stream, rng=run_seed)
        second = ChunkedExecutor(chunk_size).run(
            pipeline, stream, rng=run_seed
        )
        assert first.released == second.released

    @settings(max_examples=25, deadline=None)
    @given(pipelines_and_streams(), st.integers(min_value=1, max_value=8))
    def test_sharded_equals_batch(self, case, n_shards):
        # The seek invariant for seekable mechanisms, and the
        # checkpoint/replay invariant for sequential schedulers
        # (BD/BA, landmark): sharding must be invisible in the output.
        pipeline, stream, _chunk_size, run_seed = case
        batch = BatchExecutor().run(pipeline, stream, rng=run_seed)
        sharded = ShardedExecutor(2, n_shards=n_shards).run(
            pipeline, stream, rng=run_seed
        )
        assert sharded.original == batch.original
        assert sharded.released == batch.released
        for name, detections in batch.answers.items():
            assert np.array_equal(sharded.answers[name], detections)
        assert sharded.quality() == batch.quality()


class TestCheckpointResume:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(["bd", "ba", "landmark"]),
        st.integers(min_value=1, max_value=119),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_restored_releaser_continues_uninterrupted(
        self, kind, cut, seed
    ):
        # A snapshot taken mid-stream and restored on a fresh releaser
        # must continue with exactly the randomness and budget state a
        # single uninterrupted run would have had.
        n_windows = 120
        rng = np.random.default_rng(seed)
        matrix = (rng.random((n_windows, N_TYPES)) < 0.4).astype(float)
        if kind == "bd":
            mechanism = BudgetDistribution(1.0, w=6)
        elif kind == "ba":
            mechanism = BudgetAbsorption(1.0, w=6)
        else:
            mechanism = LandmarkPrivacy(
                1.0, landmarks=rng.random(n_windows) < 0.3
            )
        straight = mechanism.online_releaser(
            N_TYPES, rng=seed, horizon=n_windows
        )
        expected = straight.step_block(matrix)
        partial = mechanism.online_releaser(
            N_TYPES, rng=seed, horizon=n_windows
        )
        head = partial.step_block(matrix[:cut])
        snapshot = partial.snapshot()
        resumed = mechanism.online_releaser(
            N_TYPES, rng=seed, horizon=n_windows
        )
        resumed.restore(snapshot)
        tail = resumed.step_block(matrix[cut:])
        assert np.array_equal(np.concatenate([head, tail]), expected)
        if hasattr(straight, "trace"):
            assert (
                resumed.trace.published == straight.trace.published
            )
            assert (
                resumed.trace.publication_budgets
                == straight.trace.publication_budgets
            )
