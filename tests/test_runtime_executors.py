"""Edge-case parity of the chunked executor against the batch executor.

The property suite (``tests/property/test_property_runtime.py``) drives
random streams and chunk sizes; these tests pin the degenerate corners
explicitly — empty streams, chunk sizes past the stream end, and
window-at-a-time stepping — for every streamable mechanism family.
"""

import numpy as np
import pytest

from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.event_level import EventLevelRR
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.runtime import BatchExecutor, ChunkedExecutor, StreamPipeline
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)
QUERIES = [
    ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e2")),
    ContinuousQuery("q2", Pattern.of_types("q2", "e3")),
]


def make_stream(n_windows, seed=9):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n_windows, 5)) < 0.35)


def mechanisms():
    return {
        "identity": None,
        "uniform": UniformPatternPPM(Pattern.of_types("p", "e1", "e4"), 1.5),
        "multi": MultiPatternPPM(
            [
                UniformPatternPPM(Pattern.of_types("p", "e1"), 1.0),
                UniformPatternPPM(Pattern.of_types("p2", "e2", "e3"), 2.0),
            ]
        ),
        "event-level": EventLevelRR(2.0),
        "bd": BudgetDistribution(1.0, w=4),
    }


def assert_bit_identical(left, right):
    assert left.original == right.original
    assert left.released == right.released
    assert set(left.answers) == set(right.answers)
    for name, detections in right.answers.items():
        assert np.array_equal(left.answers[name], detections)
        assert np.array_equal(
            left.true_answers[name], right.true_answers[name]
        )
    assert left.quality() == right.quality()


class TestChunkedEdgeCases:
    @pytest.mark.parametrize("kind", list(mechanisms()))
    def test_empty_stream_matches_batch(self, kind):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()[kind]
        )
        stream = make_stream(0)
        batch = BatchExecutor().run(pipeline, stream, rng=17)
        chunked = ChunkedExecutor(8).run(pipeline, stream, rng=17)
        assert chunked.n_windows == 0
        assert_bit_identical(chunked, batch)
        for vector in chunked.answers.values():
            assert vector.shape == (0,)

    @pytest.mark.parametrize("kind", list(mechanisms()))
    def test_chunk_size_past_stream_end_matches_batch(self, kind):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()[kind]
        )
        stream = make_stream(23)
        batch = BatchExecutor().run(pipeline, stream, rng=23)
        chunked = ChunkedExecutor(1000).run(pipeline, stream, rng=23)
        assert_bit_identical(chunked, batch)

    @pytest.mark.parametrize("kind", list(mechanisms()))
    def test_chunk_size_one_matches_batch(self, kind):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()[kind]
        )
        stream = make_stream(31)
        batch = BatchExecutor().run(pipeline, stream, rng=31)
        chunked = ChunkedExecutor(1).run(pipeline, stream, rng=31)
        assert_bit_identical(chunked, batch)

    def test_empty_stream_without_materialize(self):
        pipeline = StreamPipeline(
            ALPHABET,
            queries=QUERIES,
            mechanism=mechanisms()["uniform"],
        )
        result = ChunkedExecutor(4, materialize=False).run(
            pipeline, make_stream(0), rng=3
        )
        assert result.original is None and result.released is None
        assert result.n_windows == 0
