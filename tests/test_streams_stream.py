"""Tests for repro.streams.stream — DataStream and EventStream."""

import itertools

import pytest

from repro.streams.events import DataTuple, Event
from repro.streams.stream import DataStream, EventStream


class TestDataStream:
    def test_replayable_from_sequence(self):
        stream = DataStream([DataTuple(0), DataTuple(1)])
        assert len(list(stream)) == 2
        assert len(list(stream)) == 2  # second iteration restarts

    def test_len_of_materialized(self):
        assert len(DataStream([DataTuple(0)])) == 1

    def test_factory_backed_stream(self):
        def factory():
            return (DataTuple(float(i)) for i in itertools.count())

        stream = DataStream(factory=factory)
        assert len(stream.take(5)) == 5

    def test_factory_len_undefined(self):
        stream = DataStream(factory=lambda: iter(()))
        with pytest.raises(TypeError):
            len(stream)

    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            DataStream()
        with pytest.raises(ValueError):
            DataStream([DataTuple(0)], factory=lambda: iter(()))

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            DataStream([DataTuple(0)]).take(-1)

    def test_from_records(self):
        stream = DataStream.from_records(
            [{"timestamp": 1, "x": 5}, {"timestamp": 2, "x": 6}],
            source="s1",
        )
        tuples = list(stream)
        assert tuples[0].value("x") == 5
        assert tuples[0].source == "s1"
        assert "timestamp" not in tuples[0].values

    def test_from_records_missing_timestamp(self):
        with pytest.raises(KeyError):
            DataStream.from_records([{"x": 5}])

    def test_from_records_custom_timestamp_key(self):
        stream = DataStream.from_records(
            [{"t": 3, "x": 1}], timestamp_key="t"
        )
        assert list(stream)[0].timestamp == 3


class TestEventStream:
    def test_preserves_order(self, abc_stream):
        assert [e.event_type for e in abc_stream] == [
            "a", "x", "b", "c", "a", "b", "x", "c",
        ]

    def test_rejects_out_of_order(self):
        with pytest.raises(ValueError, match="temporal order"):
            EventStream([Event("a", 2.0), Event("b", 1.0)])

    def test_equal_timestamps_allowed(self):
        EventStream([Event("a", 1.0), Event("b", 1.0)])

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            EventStream([Event("a", 0.0), "not-an-event"])  # type: ignore[list-item]

    def test_len_and_getitem(self, abc_stream):
        assert len(abc_stream) == 8
        assert abc_stream[0].event_type == "a"

    def test_slice_returns_stream(self, abc_stream):
        sliced = abc_stream[2:4]
        assert isinstance(sliced, EventStream)
        assert [e.event_type for e in sliced] == ["b", "c"]

    def test_event_types_first_appearance_order(self, abc_stream):
        assert abc_stream.event_types() == ["a", "x", "b", "c"]

    def test_filter(self, abc_stream):
        only_a = abc_stream.filter(lambda e: e.event_type == "a")
        assert len(only_a) == 2

    def test_of_types(self, abc_stream):
        sub = abc_stream.of_types(["a", "b"])
        assert {e.event_type for e in sub} == {"a", "b"}

    def test_between(self, abc_stream):
        middle = abc_stream.between(2.0, 4.0)
        assert [e.timestamp for e in middle] == [2.0, 3.0, 4.0]

    def test_between_invalid_range(self, abc_stream):
        with pytest.raises(ValueError):
            abc_stream.between(4.0, 2.0)

    def test_replace_keeps_order_check(self, abc_stream):
        replaced = abc_stream.replace(1, Event("z", 1.0))
        assert replaced[1].event_type == "z"
        assert abc_stream[1].event_type == "x"  # original untouched

    def test_replace_breaking_order_rejected(self, abc_stream):
        with pytest.raises(ValueError):
            abc_stream.replace(1, Event("z", 99.0))

    def test_timestamps(self, abc_stream):
        assert abc_stream.timestamps() == [float(i) for i in range(8)]

    def test_equality(self):
        a = EventStream([Event("a", 0.0)])
        b = EventStream([Event("a", 0.0)])
        assert a == b

    def test_events_copy(self, abc_stream):
        events = abc_stream.events
        events.pop()
        assert len(abc_stream) == 8
