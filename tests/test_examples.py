"""Smoke tests: every example script must run end to end.

Each example is imported as a module and its ``main`` executed; the
slower scenario scripts are monkey-patched down to toy sizes so the
suite stays fast while the full code path still runs.
"""

import importlib.util
import os
import sys


EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples"
)


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "guarantee" in output
        assert "holds" in output  # the exact verification verdict

    def test_adaptive_tuning(self, capsys):
        load_example("adaptive_tuning").main()
        output = capsys.readouterr().out
        assert "Algorithm 1" in output
        assert "adaptive" in output

    def test_proxy_discovery(self, capsys):
        load_example("proxy_discovery").main()
        output = capsys.readouterr().out
        assert "LEAK" in output
        assert "debiased count" in output

    def test_streaming_service(self, capsys):
        load_example("streaming_service").main()
        output = capsys.readouterr().out
        assert "identical: True" in output
        assert "commutes with the window reduction exactly: True" in output

    def test_gateway(self, capsys):
        load_example("gateway").main()
        output = capsys.readouterr().out
        assert "tenant 'fleet'" in output
        assert "tenant 'grid'" in output
        assert "metrics sink" in output
        assert "identical to the uninterrupted run: True" in output

    def test_cluster_gateway(self, capsys):
        load_example("cluster_gateway").main()
        output = capsys.readouterr().out
        assert "one JSON document" in output
        assert "identical to the local loop: True" in output
        assert "shed 100" in output
        assert "requeued the shard" in output
        assert "bit-identical to batch: True" in output

    def test_soak_cli(self, capsys):
        exit_code = load_example("soak").main(
            [
                "--tenants",
                "2",
                "--windows",
                "120",
                "--rate",
                "5000",
                "--duration",
                "20",
                "--slice-windows",
                "32",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "latency: p50" in output
        assert "windows/sec" in output
        assert "registry survived every kill: True" in output

    def test_broker_pipeline(self, capsys):
        exit_code = load_example("broker_pipeline").main(
            ["--windows", "80", "--slice", "30"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "connection faults fired: 2" in output
        assert "redelivered" in output
        assert output.count(
            "bit-identical to the memory-fed run: True"
        ) == 2

    def test_taxi_fleet_scaled_down(self, capsys, monkeypatch):
        module = load_example("taxi_fleet")
        from repro.datasets import TaxiConfig

        monkeypatch.setattr(
            module,
            "TaxiConfig",
            lambda **kwargs: TaxiConfig(n_taxis=8, n_steps=48),
        )
        module.main()
        output = capsys.readouterr().out
        assert "pattern-level advantage" in output

    def test_synthetic_study_scaled_down(self, capsys, monkeypatch):
        module = load_example("synthetic_study")
        monkeypatch.setattr(module, "N_DATASETS", 2)
        from repro.datasets import SyntheticConfig

        monkeypatch.setattr(
            module,
            "SyntheticConfig",
            lambda **kwargs: SyntheticConfig(
                n_windows=120, n_history_windows=80
            ),
        )
        module.main()
        output = capsys.readouterr().out
        assert "pattern-level PPMs lead" in output

    def test_reproduce_fig4_cli(self, capsys, tmp_path):
        module = load_example("reproduce_fig4")
        exit_code = module.main(
            [
                "--dataset",
                "synthetic",
                "--datasets",
                "2",
                "--windows",
                "120",
                "--epsilons",
                "1",
                "4",
                "--trials",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mre_uniform" in output
        assert (tmp_path / "fig4_synthetic.csv").exists()
        assert (tmp_path / "fig4_synthetic.md").exists()
