"""Tests for repro.runtime.rng_pool — vectorized child derivation.

The pool's whole contract is bit-identity with ``derive_rng``: every
child stream and the parent's entropy consumption must match the scalar
path exactly.  These tests pin that contract across token shapes,
parent kinds, block boundaries and the scalar fallback building blocks.
"""

import numpy as np
import pytest

from repro.runtime.rng_pool import (
    IndexedRngPool,
    first_uniform_scalar,
    first_uniforms_from_limbs,
    pcg64_limbs_from_seed_material,
    pcg64_state_from_words,
    seed_material_from_entropy,
)
from repro.utils.rng import derive_rng


def reference_children(seed, tokens, count, draws=3):
    parent = np.random.default_rng(seed)
    return [
        derive_rng(parent, *tokens, index).random(draws)
        for index in range(count)
    ]


class TestChildParity:
    @pytest.mark.parametrize(
        "tokens",
        [("w-event",), ("landmark",), ("chunk", "rr-flip"), (5,), (), ("x", 3, "y")],
    )
    @pytest.mark.parametrize("seed", [0, 7, 991])
    def test_children_match_derive_rng(self, tokens, seed):
        refs = reference_children(seed, tokens, 300)
        pool = IndexedRngPool(
            np.random.default_rng(seed), *tokens, block=128
        )
        for index, expected in enumerate(refs):
            got = pool.generator(index).random(3)
            assert np.array_equal(got, expected)

    def test_out_of_order_access(self):
        refs = reference_children(3, ("t",), 600)
        pool = IndexedRngPool(np.random.default_rng(3), "t", block=64)
        for index in (599, 0, 300, 42, 599, 0):
            got = pool.generator(index).random(3)
            assert np.array_equal(got, refs[index])

    @pytest.mark.parametrize("seed", [11, None])
    def test_seed_parents_reseed_per_derivation(self, seed):
        # derive_rng re-seeds a fresh parent from an int/None seed on
        # every call — the pool must reproduce that, not draw a fresh
        # word per index.
        refs = [
            derive_rng(seed, "a", index).random(3) for index in range(50)
        ]
        pool = IndexedRngPool(seed, "a", block=16)
        for index, expected in enumerate(refs):
            assert np.array_equal(pool.generator(index).random(3), expected)


class TestParentConsumption:
    def test_exact_count_leaves_parent_in_step_state(self):
        scalar_parent = np.random.default_rng(5)
        for index in range(137):
            derive_rng(scalar_parent, "x", index)
        pooled_parent = np.random.default_rng(5)
        IndexedRngPool(pooled_parent, "x", count=137)
        assert scalar_parent.random() == pooled_parent.random()

    def test_zero_count_draws_nothing(self):
        parent = np.random.default_rng(5)
        IndexedRngPool(parent, "x", count=0)
        assert parent.random() == np.random.default_rng(5).random()


class TestSeedMaterial:
    def test_matches_seed_sequence(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            words = [int(x) for x in rng.integers(0, 2**63 - 1, size=3)]
            entropy = []
            for word in words:
                if word == 0:
                    entropy.append(0)
                while word > 0:
                    entropy.append(word & 0xFFFFFFFF)
                    word >>= 32
            mine = seed_material_from_entropy(
                np.array([entropy], dtype=np.uint32)
            )[0]
            ref = np.random.SeedSequence(words).generate_state(4, np.uint64)
            assert np.array_equal(mine, ref)

    def test_pcg64_state_matches_construction(self):
        sequence = np.random.SeedSequence([17, 23, 99])
        state, inc = pcg64_state_from_words(
            sequence.generate_state(4, np.uint64)
        )
        reference = np.random.Generator(np.random.PCG64(sequence))
        rebuilt = np.random.Generator(np.random.PCG64())
        rebuilt.bit_generator.state = {
            "bit_generator": "PCG64",
            "state": {"state": state, "inc": inc},
            "has_uint32": 0,
            "uinteger": 0,
        }
        assert np.array_equal(rebuilt.random(8), reference.random(8))


class TestFirstUniforms:
    """The vectorized PCG64 step/output emulation behind first_uniforms."""

    def test_limb_seeding_matches_scalar(self):
        rng = np.random.default_rng(3)
        material = rng.integers(
            0, 2**63 - 1, size=(64, 4), dtype=np.int64
        ).astype(np.uint64)
        state_hi, state_lo, inc_hi, inc_lo = pcg64_limbs_from_seed_material(
            material
        )
        for row in range(material.shape[0]):
            state, inc = pcg64_state_from_words(material[row])
            assert (int(state_hi[row]) << 64) | int(state_lo[row]) == state
            assert (int(inc_hi[row]) << 64) | int(inc_lo[row]) == inc

    def test_limb_outputs_match_scalar_reference(self):
        material = np.random.default_rng(9).integers(
            0, 2**63 - 1, size=(64, 4), dtype=np.int64
        ).astype(np.uint64)
        limbs = pcg64_limbs_from_seed_material(material)
        vectorized = first_uniforms_from_limbs(*limbs)
        for row in range(material.shape[0]):
            state, inc = pcg64_state_from_words(material[row])
            assert vectorized[row] == first_uniform_scalar(state, inc)

    @pytest.mark.parametrize("parent_kind", ["seed", "generator"])
    def test_pool_uniforms_match_generator_draws(self, parent_kind):
        parent = 7 if parent_kind == "seed" else np.random.default_rng(7)
        pool = IndexedRngPool(parent, "w-event", count=200)
        fast = pool.first_uniforms(40, 200)
        slow = np.array(
            [pool.generator(index).random() for index in range(40, 200)]
        )
        assert np.array_equal(fast, slow)

    def test_pool_uniforms_extend_lazily(self):
        pool = IndexedRngPool(11, "w-event", block=32)
        fast = pool.first_uniforms(50, 120)
        slow = np.array(
            [pool.generator(index).random() for index in range(50, 120)]
        )
        assert np.array_equal(fast, slow)

    def test_uniforms_match_laplace_first_draw(self):
        # The schedulers transform these uniforms through numpy's
        # random_laplace arithmetic; the first draw of .laplace must
        # therefore consume exactly the word first_uniforms replays.
        import math

        pool = IndexedRngPool(13, "w-event", count=100)
        scale = 0.731
        uniforms = pool.first_uniforms(0, 100)
        for index in range(100):
            expected = float(pool.generator(index).laplace(0.0, scale))
            uniform = uniforms[index]
            if uniform >= 0.5:
                mine = 0.0 - scale * math.log(2.0 - uniform - uniform)
            elif uniform > 0.0:
                mine = 0.0 + scale * math.log(uniform + uniform)
            else:
                continue
            assert mine == expected

    def test_invalid_range_rejected(self):
        pool = IndexedRngPool(1, "w-event")
        with pytest.raises(ValueError):
            pool.first_uniforms(5, 2)
        with pytest.raises(ValueError):
            pool.first_uniforms(-1, 2)


class TestSharedParentInterleaving:
    """Foreign draws from a shared parent must not corrupt snapshots."""

    def test_interleaved_pool_snapshot_stays_exact(self):
        parent = np.random.default_rng(5)
        pool = IndexedRngPool(parent, "w-event", block=4)
        pool.generator(0)
        parent.integers(0, 100)  # foreign consumer draws in between
        pool.generator(5)
        draws = [pool.generator(index).random() for index in range(8)]
        snapshot = pool.snapshot()
        fresh = IndexedRngPool(1, "w-event")
        fresh.restore(snapshot)
        assert [
            fresh.generator(index).random() for index in range(8)
        ] == draws
        # ...and snapshots of the restored pool stay exact too.
        again = IndexedRngPool(2, "w-event")
        again.restore(fresh.snapshot())
        assert [
            again.generator(index).random() for index in range(8)
        ] == draws


class TestValidation:
    def test_negative_index_rejected(self):
        pool = IndexedRngPool(0, "x")
        with pytest.raises(IndexError):
            pool.generator(-1)

    def test_bad_block_rejected(self):
        with pytest.raises(ValueError):
            IndexedRngPool(0, "x", block=0)

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            IndexedRngPool(0, "x", count=-1)

    def test_bad_token_rejected(self):
        with pytest.raises(TypeError):
            IndexedRngPool(0, 1.5)
