"""Tests for repro.baselines.landmark — landmark privacy."""

import numpy as np
import pytest

from repro.baselines.landmark import LandmarkPrivacy, landmarks_from_pattern
from repro.streams.indicator import EventAlphabet, IndicatorStream


@pytest.fixture
def indicator_stream():
    rng = np.random.default_rng(21)
    alphabet = EventAlphabet.numbered(4)
    return IndicatorStream(alphabet, rng.random((60, 4)) < 0.35)


@pytest.fixture
def landmarks(indicator_stream):
    return landmarks_from_pattern(indicator_stream, ["e1", "e2"])


class TestLandmarksFromPattern:
    def test_mask_matches_element_union(self, indicator_stream):
        mask = landmarks_from_pattern(indicator_stream, ["e1", "e2"])
        expected = indicator_stream.column("e1") | indicator_stream.column("e2")
        assert np.array_equal(mask, expected)

    def test_requires_elements(self, indicator_stream):
        with pytest.raises(ValueError):
            landmarks_from_pattern(indicator_stream, [])

    def test_duplicate_elements_deduplicated(self, indicator_stream):
        a = landmarks_from_pattern(indicator_stream, ["e1", "e1"])
        b = landmarks_from_pattern(indicator_stream, ["e1"])
        assert np.array_equal(a, b)


class TestLandmarkPrivacy:
    def test_output_shape(self, indicator_stream, landmarks):
        mechanism = LandmarkPrivacy(1.0, landmarks=landmarks)
        released = mechanism.perturb(indicator_stream, rng=0)
        assert released.n_windows == indicator_stream.n_windows

    def test_deterministic_under_seed(self, indicator_stream, landmarks):
        mechanism = LandmarkPrivacy(1.0, landmarks=landmarks)
        assert mechanism.perturb(indicator_stream, rng=3) == mechanism.perturb(
            indicator_stream, rng=3
        )

    def test_requires_landmarks_somewhere(self, indicator_stream):
        mechanism = LandmarkPrivacy(1.0)
        with pytest.raises(ValueError, match="landmark"):
            mechanism.perturb(indicator_stream)

    def test_mask_length_checked(self, indicator_stream):
        mechanism = LandmarkPrivacy(1.0)
        with pytest.raises(ValueError):
            mechanism.perturb_with_landmarks(
                indicator_stream, np.zeros(5, dtype=bool)
            )

    def test_budget_split(self):
        mechanism = LandmarkPrivacy(2.0, rho=0.25)
        assert mechanism.landmark_epsilon == pytest.approx(0.5)
        assert mechanism.regular_epsilon == pytest.approx(1.5)

    def test_rho_bounds(self):
        with pytest.raises(Exception):
            LandmarkPrivacy(1.0, rho=0.0)
        with pytest.raises(Exception):
            LandmarkPrivacy(1.0, rho=1.0)

    def test_high_budget_tracks_data(self, indicator_stream, landmarks):
        mechanism = LandmarkPrivacy(500.0, landmarks=landmarks)
        released = mechanism.perturb(indicator_stream, rng=1)
        agreement = (
            released.matrix_view() == indicator_stream.matrix_view()
        ).mean()
        assert agreement > 0.8

    def test_regulars_noisier_than_with_higher_budget(
        self, indicator_stream, landmarks
    ):
        tight = LandmarkPrivacy(0.5, landmarks=landmarks)
        loose = LandmarkPrivacy(50.0, landmarks=landmarks)
        tight_agreement = (
            tight.perturb(indicator_stream, rng=2).matrix_view()
            == indicator_stream.matrix_view()
        ).mean()
        loose_agreement = (
            loose.perturb(indicator_stream, rng=2).matrix_view()
            == indicator_stream.matrix_view()
        ).mean()
        assert loose_agreement > tight_agreement

    def test_all_landmark_stream_supported(self, indicator_stream):
        mask = np.ones(indicator_stream.n_windows, dtype=bool)
        mechanism = LandmarkPrivacy(1.0, landmarks=mask)
        released = mechanism.perturb(indicator_stream, rng=4)
        assert released.n_windows == indicator_stream.n_windows

    def test_no_landmark_stream_supported(self, indicator_stream):
        mask = np.zeros(indicator_stream.n_windows, dtype=bool)
        mechanism = LandmarkPrivacy(1.0, landmarks=mask)
        released = mechanism.perturb(indicator_stream, rng=4)
        assert released.n_windows == indicator_stream.n_windows
