"""Tests for repro.core.budget — Theorem 1 budget algebra."""

import math

import pytest

from repro.core.budget import BudgetAllocation, theorem1_epsilon
from repro.mechanisms.randomized_response import epsilon_to_flip_probability


class TestConstruction:
    def test_uniform_split(self):
        allocation = BudgetAllocation.uniform(3.0, 3)
        assert allocation.epsilons == (1.0, 1.0, 1.0)
        assert allocation.total == pytest.approx(3.0)

    def test_uniform_invalid_inputs(self):
        with pytest.raises(Exception):
            BudgetAllocation.uniform(0.0, 3)
        with pytest.raises(ValueError):
            BudgetAllocation.uniform(1.0, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BudgetAllocation(())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BudgetAllocation((1.0, -0.1))

    def test_nan_inf_rejected(self):
        with pytest.raises(ValueError):
            BudgetAllocation((float("nan"),))
        with pytest.raises(ValueError):
            BudgetAllocation((float("inf"),))

    def test_zero_component_allowed(self):
        BudgetAllocation((0.0, 1.0))

    def test_from_flip_probabilities_round_trip(self):
        allocation = BudgetAllocation((0.5, 1.5, 2.0))
        recovered = BudgetAllocation.from_flip_probabilities(
            allocation.flip_probabilities()
        )
        for original, recomputed in zip(allocation, recovered):
            assert recomputed == pytest.approx(original)


class TestFlipProbabilities:
    def test_values_in_valid_range(self):
        allocation = BudgetAllocation((0.0, 1.0, 10.0))
        probabilities = allocation.flip_probabilities()
        assert all(0.0 < p <= 0.5 for p in probabilities)

    def test_zero_budget_gives_fair_coin(self):
        allocation = BudgetAllocation((0.0, 1.0))
        assert allocation.flip_probabilities()[0] == pytest.approx(0.5)

    def test_formula(self):
        allocation = BudgetAllocation((2.0,))
        assert allocation.flip_probabilities()[0] == pytest.approx(
            epsilon_to_flip_probability(2.0)
        )


class TestStepwiseMoves:
    def test_move_conserves_total(self):
        allocation = BudgetAllocation.uniform(3.0, 3)
        moved = allocation.with_move(0, 0.3)
        assert moved.total == pytest.approx(3.0)

    def test_move_shifts_in_right_direction(self):
        allocation = BudgetAllocation.uniform(3.0, 3)
        moved = allocation.with_move(1, 0.3)
        assert moved[1] > allocation[1]
        assert moved[0] < allocation[0]
        assert moved[2] < allocation[2]

    def test_compensation_split_among_others(self):
        allocation = BudgetAllocation.uniform(4.0, 4)
        moved = allocation.with_move(0, 0.3)
        assert moved[0] == pytest.approx(1.3)
        for index in (1, 2, 3):
            assert moved[index] == pytest.approx(1.0 - 0.1)

    def test_clamped_at_zero_and_renormalized(self):
        allocation = BudgetAllocation((0.05, 2.95))
        moved = allocation.with_move(1, 0.2)
        assert min(moved) >= 0.0
        assert moved.total == pytest.approx(3.0)

    def test_single_element_is_noop(self):
        allocation = BudgetAllocation((2.0,))
        assert allocation.with_move(0, 0.5).epsilons == (2.0,)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BudgetAllocation.uniform(1.0, 2).with_move(5, 0.1)

    def test_invalid_step(self):
        with pytest.raises(Exception):
            BudgetAllocation.uniform(1.0, 2).with_move(0, 0.0)

    def test_repeated_moves_stay_feasible(self):
        allocation = BudgetAllocation.uniform(2.0, 4)
        for _ in range(100):
            allocation = allocation.with_move(0, 0.05)
        assert allocation.total == pytest.approx(2.0)
        assert min(allocation) >= 0.0
        # All the budget should have drifted to element 0.
        assert allocation[0] == pytest.approx(2.0, abs=1e-6)


class TestNormalization:
    def test_normalized_to_scales(self):
        allocation = BudgetAllocation((1.0, 2.0, 3.0))
        scaled = allocation.normalized_to(3.0)
        assert scaled.total == pytest.approx(3.0)
        assert scaled[2] / scaled[0] == pytest.approx(3.0)

    def test_sums_to(self):
        assert BudgetAllocation.uniform(2.0, 4).sums_to(2.0)
        assert not BudgetAllocation.uniform(2.0, 4).sums_to(2.5)


class TestDiagnostics:
    def test_entropy_max_for_uniform(self):
        uniform = BudgetAllocation.uniform(3.0, 3)
        skewed = BudgetAllocation((2.9, 0.05, 0.05))
        assert uniform.entropy() == pytest.approx(math.log(3))
        assert skewed.entropy() < uniform.entropy()

    def test_entropy_zero_for_point_mass(self):
        assert BudgetAllocation((3.0, 0.0)).entropy() == pytest.approx(0.0)


class TestTheorem1:
    def test_sum_of_per_event_budgets(self):
        probabilities = [0.3, 0.2, 0.1]
        expected = sum(math.log((1 - p) / p) for p in probabilities)
        assert theorem1_epsilon(probabilities) == pytest.approx(expected)

    def test_uniform_allocation_realizes_target(self):
        allocation = BudgetAllocation.uniform(4.0, 4)
        assert theorem1_epsilon(
            allocation.flip_probabilities()
        ) == pytest.approx(4.0)

    def test_fair_coins_cost_nothing(self):
        assert theorem1_epsilon([0.5, 0.5]) == pytest.approx(0.0)
