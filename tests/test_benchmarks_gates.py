"""The benchmark regression gate checker (benchmarks/check_gates.py).

The checker is the CI bench job's last line of defence, so it must be
robust to its own inputs: a malformed gate spec (missing floor/value),
a truncated JSON file or a mangled gates section is reported as a
failure for that file — and checking continues — rather than crashing
with a bare ``KeyError`` and masking every other gate's status.
"""

import importlib.util
import json
import os
import sys

_SPEC = importlib.util.spec_from_file_location(
    "check_gates",
    os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "check_gates.py"
    ),
)
check_gates = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_gates)


def write_summary(directory, name, payload):
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


class TestCheckGates:
    def test_passing_gates(self, tmp_path, capsys):
        write_summary(
            tmp_path, "ok", {"gates": {"g": {"floor": 1.0, "value": 2.0}}}
        )
        assert check_gates.check(str(tmp_path)) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        write_summary(
            tmp_path, "slow", {"gates": {"g": {"floor": 2.0, "value": 1.0}}}
        )
        assert check_gates.check(str(tmp_path)) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_no_summaries_fails(self, tmp_path):
        assert check_gates.check(str(tmp_path)) == 1

    def test_gateless_summary_passes(self, tmp_path):
        write_summary(tmp_path, "metrics", {"gates": {}})
        assert check_gates.check(str(tmp_path)) == 0

    def test_malformed_spec_reports_file_and_gate(self, tmp_path, capsys):
        # Missing floor/value must not crash with a bare KeyError; the
        # offending file/gate is reported and the rest keeps checking.
        write_summary(
            tmp_path, "broken", {"gates": {"g": {"value": 2.0}}}
        )
        write_summary(
            tmp_path, "fine", {"gates": {"h": {"floor": 1.0, "value": 3.0}}}
        )
        assert check_gates.check(str(tmp_path)) == 1
        captured = capsys.readouterr()
        assert "BENCH_broken.json" in captured.err
        assert "g" in captured.err
        # The healthy file was still checked and reported.
        assert "BENCH_fine.json: h = 3.00" in captured.out

    def test_non_numeric_spec_reported(self, tmp_path, capsys):
        write_summary(
            tmp_path,
            "words",
            {"gates": {"g": {"floor": "fast", "value": "slow"}}},
        )
        assert check_gates.check(str(tmp_path)) == 1
        assert "malformed gate spec" in capsys.readouterr().err

    def test_non_mapping_gates_reported(self, tmp_path, capsys):
        write_summary(tmp_path, "mangled", {"gates": [1, 2, 3]})
        assert check_gates.check(str(tmp_path)) == 1
        assert "not a mapping" in capsys.readouterr().err

    def test_truncated_json_reported(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "BENCH_cut.json")
        with open(path, "w") as handle:
            handle.write('{"gates": {"g": {"floor"')
        write_summary(
            tmp_path, "fine", {"gates": {"h": {"floor": 1.0, "value": 3.0}}}
        )
        assert check_gates.check(str(tmp_path)) == 1
        captured = capsys.readouterr()
        assert "unreadable" in captured.err
        assert "BENCH_fine.json: h = 3.00" in captured.out

    def test_cli_entrypoint(self, tmp_path):
        write_summary(
            tmp_path, "ok", {"gates": {"g": {"floor": 1.0, "value": 2.0}}}
        )
        script = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "check_gates.py"
        )
        import subprocess

        result = subprocess.run(
            [sys.executable, script, str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "all benchmark gates passed" in result.stdout
