"""Tests for repro.core.extensions — numerical (counting) queries."""

import numpy as np
import pytest

from repro.cep.patterns import Pattern
from repro.core.extensions import (
    CountingQuery,
    debias_rate,
    estimate_detection_count,
)
from repro.core.uniform import UniformPatternPPM
from repro.streams.indicator import EventAlphabet, IndicatorStream


@pytest.fixture
def independent_stream():
    """Columns are independent Bernoullis (the Algorithm 2 regime where
    the count estimator is exact in expectation)."""
    rng = np.random.default_rng(3)
    alphabet = EventAlphabet.numbered(4)
    matrix = rng.random((4000, 4)) < np.array([0.5, 0.6, 0.7, 0.4])
    return IndicatorStream(alphabet, matrix)


class TestDebiasRate:
    def test_no_flip_identity(self):
        assert debias_rate(0.3, 0.0) == pytest.approx(0.3)

    def test_inverts_forward_map(self):
        true_rate, p = 0.4, 0.2
        observed = true_rate * (1 - p) + (1 - true_rate) * p
        assert debias_rate(observed, p) == pytest.approx(true_rate)

    def test_clipped_to_unit_interval(self):
        assert debias_rate(0.05, 0.2) == 0.0
        assert debias_rate(0.95, 0.2) == 1.0

    def test_half_rejected(self):
        with pytest.raises(ValueError):
            debias_rate(0.5, 0.5)

    def test_above_half_rejected(self):
        with pytest.raises(ValueError):
            debias_rate(0.5, 0.6)


class TestEstimateDetectionCount:
    def test_unperturbed_stream_exact(self, independent_stream):
        target = Pattern.of_types("t", "e1", "e2")
        estimate = estimate_detection_count(independent_stream, target, {})
        true_count = independent_stream.detection_count(["e1", "e2"])
        assert estimate.raw_count == true_count
        # Independence recomposition differs from the joint count only
        # by sampling correlation; with 4000 windows it is close.
        assert estimate.estimated_count == pytest.approx(
            true_count, rel=0.05
        )

    def test_debiasing_beats_raw_count(self, independent_stream):
        private = Pattern.of_types("p", "e1", "e2")
        target = Pattern.of_types("t", "e1", "e2")
        ppm = UniformPatternPPM(private, epsilon=1.5)
        true_count = independent_stream.detection_count(["e1", "e2"])
        raw_errors, debiased_errors = [], []
        for seed in range(15):
            perturbed = ppm.perturb(independent_stream, rng=seed)
            estimate = estimate_detection_count(
                perturbed, target, ppm.flip_probability_by_type()
            )
            raw_errors.append(abs(estimate.raw_count - true_count))
            debiased_errors.append(
                abs(estimate.estimated_count - true_count)
            )
        assert np.mean(debiased_errors) < np.mean(raw_errors)

    def test_debiased_count_unbiased(self, independent_stream):
        private = Pattern.of_types("p", "e1")
        target = Pattern.of_types("t", "e1")
        ppm = UniformPatternPPM(private, epsilon=1.0)
        true_count = independent_stream.detection_count(["e1"])
        estimates = []
        for seed in range(40):
            perturbed = ppm.perturb(independent_stream, rng=seed)
            estimates.append(
                estimate_detection_count(
                    perturbed, target, ppm.flip_probability_by_type()
                ).estimated_count
            )
        assert np.mean(estimates) == pytest.approx(true_count, rel=0.05)

    def test_empty_stream(self):
        alphabet = EventAlphabet(["a"])
        empty = IndicatorStream(alphabet, np.zeros((0, 1), dtype=bool))
        estimate = estimate_detection_count(
            empty, Pattern.of_types("t", "a"), {}
        )
        assert estimate.estimated_count == 0.0
        assert estimate.estimated_rate == 0.0

    def test_requires_element_list(self, independent_stream):
        from repro.cep.patterns import OR

        with pytest.raises(ValueError):
            estimate_detection_count(
                independent_stream, Pattern("t", OR("e1", "e2")), {}
            )


class TestCountingQuery:
    def test_answer_runs_end_to_end(self, independent_stream):
        private = Pattern.of_types("p", "e1", "e2")
        target = Pattern.of_types("t", "e2", "e3")
        query = CountingQuery(UniformPatternPPM(private, 2.0), target)
        estimate = query.answer(independent_stream, rng=0)
        assert 0 <= estimate.estimated_count <= independent_stream.n_windows
        assert estimate.n_windows == independent_stream.n_windows

    def test_crowdedness_binary_reduction(self, independent_stream):
        # The paper's Taxi motivation: the numerical count reduces to a
        # binary "is it crowded" answer.
        private = Pattern.of_types("p", "e1")
        target = Pattern.of_types("t", "e2")  # rate 0.6, unprotected
        query = CountingQuery(UniformPatternPPM(private, 2.0), target)
        assert query.crowdedness(
            independent_stream, threshold_rate=0.3, rng=1
        )
        assert not query.crowdedness(
            independent_stream, threshold_rate=0.9, rng=1
        )

    def test_invalid_threshold(self, independent_stream):
        private = Pattern.of_types("p", "e1")
        query = CountingQuery(
            UniformPatternPPM(private, 2.0), Pattern.of_types("t", "e2")
        )
        with pytest.raises(Exception):
            query.crowdedness(independent_stream, threshold_rate=1.5)
