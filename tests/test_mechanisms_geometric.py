"""Tests for repro.mechanisms.geometric — two-sided geometric noise."""

import math

import numpy as np
import pytest

from repro.mechanisms.geometric import GeometricMechanism


class TestGeometricMechanism:
    def test_alpha_formula(self):
        mechanism = GeometricMechanism(1.0, sensitivity=2)
        assert mechanism.alpha == pytest.approx(math.exp(-0.5))

    def test_non_integer_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            GeometricMechanism(1.0, sensitivity=1.5)  # type: ignore[arg-type]

    def test_release_is_integer(self):
        released = GeometricMechanism(1.0).release(5, rng=0)
        assert isinstance(released, int)

    def test_release_deterministic(self):
        mechanism = GeometricMechanism(1.0)
        assert mechanism.release(5, rng=3) == mechanism.release(5, rng=3)

    def test_noise_symmetric_around_zero(self):
        mechanism = GeometricMechanism(1.0)
        rng = np.random.default_rng(1)
        draws = mechanism.release_vector([0] * 20000, rng=rng)
        assert abs(draws.mean()) < 0.05

    def test_high_epsilon_near_exact(self):
        mechanism = GeometricMechanism(50.0)
        draws = mechanism.release_vector([7] * 100, rng=2)
        assert np.all(draws == 7)

    def test_variance_grows_as_epsilon_shrinks(self):
        loose = GeometricMechanism(0.5)
        tight = GeometricMechanism(5.0)
        loose_var = loose.release_vector([0] * 5000, rng=3).var()
        tight_var = tight.release_vector([0] * 5000, rng=3).var()
        assert loose_var > tight_var

    def test_release_binary(self):
        mechanism = GeometricMechanism(50.0)
        binary = mechanism.release_binary([0, 1], rng=4)
        assert list(binary) == [False, True]
