"""Checkpointed sequential schedulers: snapshot/restore and sharding.

The checkpoint protocol's contract has two halves, both pinned here:

- **resume** — restoring a snapshot on a *fresh* releaser (same
  mechanism parameters, same seed) and stepping on reproduces an
  uninterrupted run bit for bit: released rows, accounting trace,
  scheduler state and every subsequent random draw.  Snapshots are
  plain picklable data, so a crashed service can persist and resume.
- **sharded replay** — `ShardedExecutor` runs BD/BA/landmark through a
  sequential scheduler-state prepass plus parallel per-shard replay;
  the merged result (and `mechanism.last_trace`) must be bit-identical
  to `BatchExecutor` under the same seed, whatever the backend or
  worker count.
"""

import pickle

import numpy as np
import pytest

from repro.baselines.budget_absorption import BudgetAbsorption
from repro.baselines.budget_distribution import BudgetDistribution
from repro.baselines.landmark import LandmarkPrivacy
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.runtime import BatchExecutor, ShardedExecutor, StreamPipeline
from repro.runtime.rng_pool import IndexedRngPool
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)
QUERIES = [
    ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e3")),
    ContinuousQuery("q2", Pattern.of_types("q2", "e2")),
]
N_WINDOWS = 120


def make_matrix(n_windows=N_WINDOWS, seed=3):
    rng = np.random.default_rng(seed)
    return (rng.random((n_windows, 5)) < 0.3).astype(float)


def make_stream(n_windows=N_WINDOWS, seed=3):
    return IndicatorStream(
        ALPHABET, make_matrix(n_windows, seed).astype(bool)
    )


def mechanisms():
    return {
        "bd": BudgetDistribution(1.0, w=8),
        "ba": BudgetAbsorption(1.0, w=8),
        "landmark": LandmarkPrivacy(
            1.0, landmarks=np.arange(N_WINDOWS) % 5 == 0
        ),
    }


def trace_tuple(trace):
    return (
        list(trace.published),
        list(trace.publication_budgets),
        list(trace.dissimilarity_budgets),
    )


class TestReleaserCheckpoint:
    @pytest.mark.parametrize("kind", ["bd", "ba", "landmark"])
    @pytest.mark.parametrize("cut", [0, 1, 37, N_WINDOWS])
    def test_fresh_restore_resumes_bit_identically(self, kind, cut):
        mechanism = mechanisms()[kind]
        matrix = make_matrix()
        straight = mechanism.online_releaser(5, rng=11, horizon=N_WINDOWS)
        expected = straight.step_block(matrix)

        first = mechanism.online_releaser(5, rng=11, horizon=N_WINDOWS)
        head = first.step_block(matrix[:cut])
        snapshot = pickle.loads(pickle.dumps(first.snapshot()))
        resumed = mechanism.online_releaser(5, rng=11, horizon=N_WINDOWS)
        resumed.restore(snapshot)
        tail = resumed.step_block(matrix[cut:])
        assert np.array_equal(np.concatenate([head, tail]), expected)
        if hasattr(straight, "trace"):
            assert trace_tuple(resumed.trace) == trace_tuple(
                straight.trace
            )

    @pytest.mark.parametrize("kind", ["bd", "ba", "landmark"])
    def test_generator_rng_restore(self, kind):
        mechanism = mechanisms()[kind]
        matrix = make_matrix()
        straight = mechanism.online_releaser(
            5, rng=np.random.default_rng(4), horizon=N_WINDOWS
        )
        expected = straight.step_block(matrix)
        first = mechanism.online_releaser(
            5, rng=np.random.default_rng(4), horizon=N_WINDOWS
        )
        first.step_block(matrix[:50])
        snapshot = pickle.loads(pickle.dumps(first.snapshot()))
        # Restore onto a releaser built from a *different* source: the
        # snapshot carries the derivation state.
        resumed = mechanism.online_releaser(5, rng=999, horizon=N_WINDOWS)
        resumed.restore(snapshot)
        tail = resumed.step_block(matrix[50:])
        assert np.array_equal(tail, expected[50:])

    def test_restore_rejects_mismatched_width(self):
        mechanism = BudgetDistribution(1.0, w=4)
        releaser = mechanism.online_releaser(5, rng=0, horizon=10)
        snapshot = releaser.snapshot()
        other = mechanism.online_releaser(3, rng=0, horizon=10)
        with pytest.raises(ValueError, match="event types"):
            other.restore(snapshot)

    def test_landmark_restore_rejects_mismatched_mask(self):
        short = LandmarkPrivacy(1.0, landmarks=[True] * 10)
        long = LandmarkPrivacy(1.0, landmarks=[True] * 20)
        snapshot = short.online_releaser(2, rng=0).snapshot()
        with pytest.raises(ValueError, match="landmark mask"):
            long.online_releaser(2, rng=0).restore(snapshot)

    @pytest.mark.parametrize("kind", ["bd", "ba"])
    def test_replay_block_matches_stepping(self, kind):
        mechanism = mechanisms()[kind]
        matrix = make_matrix()
        full = mechanism.online_releaser(5, rng=9, horizon=N_WINDOWS)
        expected = full.step_block(matrix)
        decisions = full.decision_slice(40, N_WINDOWS)

        prefix = mechanism.online_releaser(5, rng=9, horizon=N_WINDOWS)
        prefix.step_block(matrix[:40])
        snapshot = prefix.snapshot()
        replayer = mechanism.online_releaser(5, rng=9, horizon=N_WINDOWS)
        replayer.restore(snapshot)
        replayed = replayer.replay_block(matrix[40:], decisions)
        assert np.array_equal(replayed, expected[40:])
        # replay maintains the trace and counters exactly like stepping
        assert replayer.t == N_WINDOWS
        assert trace_tuple(replayer.trace) == trace_tuple(full.trace)

    def test_replay_block_validates_decision_length(self):
        mechanism = BudgetDistribution(1.0, w=4)
        releaser = mechanism.online_releaser(5, rng=0, horizon=20)
        with pytest.raises(ValueError, match="decisions cover"):
            releaser.replay_block(make_matrix(10), ([True] * 3, [0.1] * 3))

    def test_decision_slice_requires_covered_range(self):
        mechanism = BudgetDistribution(1.0, w=4)
        releaser = mechanism.online_releaser(5, rng=0, horizon=20)
        releaser.step_block(make_matrix(10))
        with pytest.raises(ValueError, match="cannot slice"):
            releaser.decision_slice(0, 15)


class TestPoolCheckpoint:
    def test_seed_mode_snapshot_roundtrip(self):
        pool = IndexedRngPool(21, "w-event", count=40)
        draws = [pool.generator(i).random() for i in range(40)]
        snapshot = pickle.loads(pickle.dumps(pool.snapshot()))
        fresh = IndexedRngPool(999, "w-event")
        fresh.restore(snapshot)
        assert [
            fresh.generator(i).random() for i in range(40)
        ] == draws

    def test_generator_mode_snapshot_roundtrip(self):
        pool = IndexedRngPool(np.random.default_rng(8), "w-event", count=50)
        draws = [pool.generator(i).random() for i in range(50)]
        snapshot = pickle.loads(pickle.dumps(pool.snapshot()))
        fresh = IndexedRngPool(123, "w-event")
        fresh.restore(snapshot)
        assert [
            fresh.generator(i).random() for i in range(50)
        ] == draws
        # Extending past the snapshotted range draws the same parent
        # words an uninterrupted pool would.
        reference = IndexedRngPool(
            np.random.default_rng(8), "w-event", count=80
        )
        assert (
            fresh.generator(70).random() == reference.generator(70).random()
        )

    def test_restore_rejects_foreign_tokens(self):
        snapshot = IndexedRngPool(1, "w-event").snapshot()
        with pytest.raises(ValueError, match="tokens"):
            IndexedRngPool(1, "landmark").restore(snapshot)

    def test_matching_source_restore_is_a_no_op(self):
        pool = IndexedRngPool(5, "w-event", count=30)
        snapshot = pool.snapshot()
        before = pool.generator(12).random()
        pool.restore(snapshot)
        assert pool.generator(12).random() == before


class TestCheckpointedSharding:
    @pytest.mark.parametrize("kind", ["bd", "ba", "landmark"])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bit_identical_to_batch(self, kind, backend):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()[kind]
        )
        stream = make_stream()
        batch = BatchExecutor().run(pipeline, stream, rng=42)
        sharded = ShardedExecutor(4, backend=backend).run(
            pipeline, stream, rng=42
        )
        assert sharded.original == batch.original
        assert sharded.released == batch.released
        for name, detections in batch.answers.items():
            assert np.array_equal(sharded.answers[name], detections)
        assert sharded.quality() == batch.quality()

    @pytest.mark.parametrize("n_workers", [1, 2, 8])
    def test_worker_count_invisible(self, n_workers):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()["bd"]
        )
        stream = make_stream()
        batch = BatchExecutor().run(pipeline, stream, rng=7)
        sharded = ShardedExecutor(n_workers).run(pipeline, stream, rng=7)
        assert sharded.released == batch.released

    @pytest.mark.parametrize("kind", ["bd", "ba"])
    def test_last_trace_matches_batch(self, kind):
        mechanism = mechanisms()[kind]
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanism
        )
        stream = make_stream()
        BatchExecutor().run(pipeline, stream, rng=5)
        batch_trace = trace_tuple(mechanism.last_trace)
        ShardedExecutor(3).run(pipeline, stream, rng=5)
        assert trace_tuple(mechanism.last_trace) == batch_trace

    def test_generator_rng_matches_batch(self):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()["ba"]
        )
        stream = make_stream()
        batch = BatchExecutor().run(
            pipeline, stream, rng=np.random.default_rng(31)
        )
        sharded = ShardedExecutor(4).run(
            pipeline, stream, rng=np.random.default_rng(31)
        )
        assert sharded.released == batch.released

    def test_shared_generator_advances_between_runs(self):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()["bd"]
        )
        stream = make_stream()
        generator = np.random.default_rng(17)
        executor = ShardedExecutor(4)
        first = executor.run(pipeline, stream, rng=generator)
        second = executor.run(pipeline, stream, rng=generator)
        assert first.released != second.released

    def test_single_shard_and_empty_stream(self):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()["bd"]
        )
        stream = make_stream()
        batch = BatchExecutor().run(pipeline, stream, rng=2)
        one = ShardedExecutor(4, n_shards=1).run(pipeline, stream, rng=2)
        assert one.released == batch.released
        empty = ShardedExecutor(4).run(pipeline, make_stream(0), rng=2)
        assert empty.n_windows == 0

    def test_materialize_false(self):
        pipeline = StreamPipeline(
            ALPHABET, queries=QUERIES, mechanism=mechanisms()["ba"]
        )
        stream = make_stream()
        batch = BatchExecutor().run(pipeline, stream, rng=3)
        sharded = ShardedExecutor(4, materialize=False).run(
            pipeline, stream, rng=3
        )
        assert sharded.original is None and sharded.released is None
        for name, detections in batch.answers.items():
            assert np.array_equal(sharded.answers[name], detections)
        assert sharded.quality() == batch.quality()


class TestStepperTraceBookkeeping:
    def test_building_a_stepper_does_not_clobber_last_trace(self):
        # Regression: the stepper used to publish a fresh empty trace at
        # *construction*, so building a second (or speculative) stepper
        # silently discarded the trace of a completed run.
        from repro.runtime.adapters import runtime_mechanism

        mechanism = BudgetDistribution(1.0, w=6)
        stream = make_stream()
        mechanism.perturb(stream, rng=0)
        completed = trace_tuple(mechanism.last_trace)
        runtime = runtime_mechanism(mechanism)
        stepper = runtime.stepper(ALPHABET, rng=1, horizon=None)
        assert trace_tuple(mechanism.last_trace) == completed
        # The trace is published on the first step instead.
        stepper.step_block(make_matrix(4).astype(bool))
        assert len(mechanism.last_trace.published) == 4

    def test_shard_steppers_do_not_publish_partial_traces(self):
        from repro.runtime.adapters import runtime_mechanism

        mechanism = BudgetAbsorption(1.0, w=6)
        runtime = runtime_mechanism(mechanism)
        stepper = runtime.stepper(
            ALPHABET, rng=1, horizon=None, publish_trace=False
        )
        stepper.step_block(make_matrix(4).astype(bool))
        assert mechanism.last_trace is None
