"""The shared key=value spec grammar (PR 7).

Covers the grammar primitives (:mod:`repro.service.specgrammar`)
property-style — parse → format → parse is a fixed point — plus the
registry integration both spec registries share: every registered
executor/source/sink accepts the key=value form, legacy positional
specs resolve to identical objects (behind the deprecation warning
pinned in tests/test_service_deprecation.py), and unknown keys or bad
values fail at parse time listing the valid alternatives.
"""

import warnings

import pytest

from hypothesis import given, strategies as st

from repro.io.registry import (
    registered_sinks,
    registered_sources,
    resolve_sink,
    resolve_source,
)
from repro.io.registry import _SINKS, _SOURCES
from repro.service.registry import (
    _EXECUTORS,
    build_executor_from_spec,
    registered_executors,
    validate_executor_spec,
)
from repro.service.specgrammar import (
    SpecKey,
    coerce_scalar,
    format_spec,
    format_value,
    is_kv_tail,
    kv_kwargs,
    parse_kv_tail,
    suggest_kv_spec,
)
from repro.utils.deprecation import suppress_imperative_warnings


def equivalent(left, right) -> bool:
    """Structural equality: same type, same state, recursively."""
    if type(left) is not type(right):
        return False
    if hasattr(left, "__dict__"):
        state, other = vars(left), vars(right)
        return state.keys() == other.keys() and all(
            equivalent(state[key], other[key]) for key in state
        )
    return left == right


# ---------------------------------------------------------------------------
# Grammar primitives: parse -> format -> parse round-trips
# ---------------------------------------------------------------------------

_KEY_NAMES = st.from_regex(r"[A-Za-z_][A-Za-z0-9_-]{0,11}", fullmatch=True)


def _plain_word(text: str) -> bool:
    """A string value that survives coercion as a string."""
    if text in ("true", "false"):
        return False
    for kind in (int, float):
        try:
            kind(text)
            return False
        except ValueError:
            continue
    return True


_WORDS = st.from_regex(
    r"[A-Za-z_][A-Za-z0-9_.]{0,11}", fullmatch=True
).filter(_plain_word)

_VALUES = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    _WORDS,
)


@given(
    st.dictionaries(_KEY_NAMES, _VALUES, min_size=1, max_size=6)
)
def test_format_parse_round_trip(pairs):
    spec = format_spec("name", sorted(pairs.items()))
    _name, _, tail = spec.partition(":")
    assert is_kv_tail(tail)
    parsed = parse_kv_tail(tail, where="test")
    assert [key for key, _value in parsed] == sorted(pairs)
    for key, raw in parsed:
        value = coerce_scalar(raw)
        expected = pairs[key]
        if isinstance(expected, float):
            assert float(value) == expected
        else:
            assert value == expected and type(value) is type(expected)
    # Formatting the parsed pairs reproduces the spec: a fixed point.
    assert format_spec(
        "name", [(key, coerce_scalar(raw)) for key, raw in parsed]
    ) == spec


@given(_VALUES)
def test_value_coercion_round_trip(value):
    coerced = coerce_scalar(format_value(value))
    if isinstance(value, float):
        assert float(coerced) == value
    else:
        assert coerced == value and type(coerced) is type(value)


def test_is_kv_tail_schema_gating():
    # Unrestricted: any identifier= switches into key=value mode.
    assert is_kv_tail("workers=8")
    assert not is_kv_tail("process:8")
    assert not is_kv_tail("8=x")  # keys cannot start with a digit
    # Raw-tail schema: only *declared* keys switch modes, so a path
    # containing '=' stays a path.
    keys = (SpecKey("path", raw=True),)
    assert is_kv_tail("path=data.csv", keys=keys)
    assert not is_kv_tail("data=1.csv", keys=keys)


def test_parse_kv_tail_errors():
    with pytest.raises(ValueError, match="duplicate key 'a'"):
        parse_kv_tail("a=1,a=2", where="test")
    with pytest.raises(ValueError, match="is not 'key=value'"):
        parse_kv_tail("a=1,b", where="test")


def test_kv_kwargs_maps_dest_and_rejects_unknown_keys():
    keys = (SpecKey("workers", dest="n_workers"), SpecKey("backend"))
    assert kv_kwargs("workers=8,backend=process", keys, where="w") == {
        "n_workers": 8,
        "backend": "process",
    }
    with pytest.raises(
        ValueError,
        match=r"unknown key 'werkers' for w; valid keys: backend, workers",
    ):
        kv_kwargs("werkers=8", keys, where="w")


def test_suggest_kv_spec_shapes():
    keys = (SpecKey("size"), SpecKey("materialize"))
    assert suggest_kv_spec("chunked", (128, False), keys) == (
        "chunked:size=128,materialize=false"
    )
    # More arguments than keys: no faithful suggestion.
    assert suggest_kv_spec("chunked", (1, 2, 3), keys) is None


# ---------------------------------------------------------------------------
# Registry integration: both registries speak the same grammar
# ---------------------------------------------------------------------------

#: Legacy positional spelling -> equivalent key=value spelling, for
#: every registered name with a parameterized tail.  Bare names
#: (batch, memory, queue, callback) take no tail and are covered by
#: the no-argument loop below.
EXECUTOR_PAIRS = [
    ("chunked:128", "chunked:size=128"),
    ("sharded:4", "sharded:workers=4"),
    ("sharded:thread", "sharded:backend=thread"),
    (
        "sharded:process:8:zerocopy",
        "sharded:backend=process,workers=8,transport=zerocopy",
    ),
    ("cluster:4", "cluster:workers=4"),
]

SOURCE_PAIRS = [
    (
        "synthetic:bernoulli:400:21",
        "synthetic:generator=bernoulli,windows=400,seed=21",
    ),
    ("csv:/tmp/in.csv", "csv:path=/tmp/in.csv"),
    ("jsonl:/tmp/in.jsonl", "jsonl:path=/tmp/in.jsonl"),
    ("replay:/tmp/in.csv", "replay:path=/tmp/in.csv"),
    # broker was born with the key=value grammar (no positional
    # legacy); the pair pins key-order insensitivity instead.
    (
        "broker:url=redis://h:7777,stream=s,group=g,consumer=c0",
        "broker:consumer=c0,group=g,stream=s,url=redis://h:7777",
    ),
]

SINK_PAIRS = [
    ("metrics:0.7", "metrics:alpha=0.7"),
    ("csv:/tmp/out.csv", "csv:path=/tmp/out.csv"),
    ("jsonl:/tmp/out.jsonl", "jsonl:path=/tmp/out.jsonl"),
    (
        "broker:url=redis://h:7777,stream=out,eos=1",
        "broker:eos=1,stream=out,url=redis://h:7777",
    ),
]


@pytest.mark.parametrize("legacy,keyed", EXECUTOR_PAIRS)
def test_executor_legacy_equals_kv(legacy, keyed):
    with suppress_imperative_warnings():
        assert equivalent(
            build_executor_from_spec(legacy),
            build_executor_from_spec(keyed),
        )


@pytest.mark.parametrize("legacy,keyed", SOURCE_PAIRS)
def test_source_legacy_equals_kv(legacy, keyed):
    with suppress_imperative_warnings():
        assert equivalent(resolve_source(legacy), resolve_source(keyed))


@pytest.mark.parametrize("legacy,keyed", SINK_PAIRS)
def test_sink_legacy_equals_kv(legacy, keyed):
    with suppress_imperative_warnings():
        assert equivalent(resolve_sink(legacy), resolve_sink(keyed))


def test_every_registered_name_has_a_key_schema():
    """Every registered executor/source/sink accepts key=value form.

    Names with declared keys parse a key=value tail; the pairs above
    must cover every name that takes arguments, so a new registration
    with keys needs an equivalence pair here.
    """
    covered = {
        spec.split(":")[0]
        for _legacy, spec in EXECUTOR_PAIRS + SOURCE_PAIRS + SINK_PAIRS
    }
    for registry, names in (
        (_EXECUTORS, registered_executors()),
        (_SOURCES, registered_sources()),
        (_SINKS, registered_sinks()),
    ):
        for name in names:
            keys = registry.keys_for(name)
            if keys:
                assert name in covered, (
                    f"{name!r} declares keys {sorted(k.name for k in keys)}"
                    " but has no legacy/kv equivalence pair in this test"
                )
            else:
                # Bare names resolve with no tail and never warn.
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    registry.resolve(name)


# -- parse-time failure modes ----------------------------------------------


def test_unknown_key_fails_at_parse_time_listing_valid_keys():
    with pytest.raises(
        ValueError,
        match=(
            r"unknown key 'transporte' for executor spec 'sharded'; "
            r"valid keys: backend, transport, workers"
        ),
    ):
        validate_executor_spec("sharded:transporte=zerocopy")
    with pytest.raises(
        ValueError, match=r"valid keys: transport, workers"
    ):
        validate_executor_spec("cluster:werkers=2")


def test_bad_transport_value_names_the_flag():
    with pytest.raises(
        ValueError,
        match=(
            r"unknown transport flag 'zerocpy'; valid transport "
            r"flags: copy, zerocopy"
        ),
    ):
        validate_executor_spec("sharded:transport=zerocpy")


def test_positional_bad_token_names_token_and_flags():
    """The PR 7 bugfix: a typo'd positional transport flag no longer
    falls through to the backend validator's misleading error."""
    with pytest.raises(
        ValueError,
        match=(
            r"unknown token 'zerocpy' in sharded executor spec; "
            r"expected a backend \(thread, process\), a worker count, "
            r"or a transport flag \(copy, zerocopy\)"
        ),
    ):
        with suppress_imperative_warnings():
            build_executor_from_spec("sharded:process:8:zerocpy")


def test_kv_values_may_contain_colons():
    with suppress_imperative_warnings():
        source = resolve_source("csv:path=/tmp/odd:name.csv")
    assert source.path == "/tmp/odd:name.csv"


def test_raw_tail_address_form_stays_first_class():
    """Paths that merely contain '=' are not key=value specs."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        source = resolve_source("csv:data=1.csv")
    assert source.path == "data=1.csv"
