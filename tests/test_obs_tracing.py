"""Tests for repro.obs.tracing: spans, recorders, the no-op path."""

import threading

import pytest

from repro.obs.tracing import (
    SpanRecorder,
    current_recorder,
    install_recorder,
    trace_span,
    uninstall_recorder,
    use_recorder,
)


@pytest.fixture(autouse=True)
def no_ambient_recorder():
    # Tests must not leak a recorder into (or inherit one from) the
    # rest of the suite.
    uninstall_recorder()
    yield
    uninstall_recorder()


class TestNoopPath:
    def test_without_recorder_trace_span_is_shared_noop(self):
        first = trace_span("a")
        second = trace_span("b", attr=1)
        assert first is second  # the shared singleton — no allocation
        with first as span:
            span.set(more="attrs")  # accepted and dropped

    def test_exceptions_propagate_through_noop(self):
        with pytest.raises(RuntimeError):
            with trace_span("a"):
                raise RuntimeError("boom")


class TestRecording:
    def test_span_carries_name_attrs_and_timing(self):
        recorder = SpanRecorder()
        with use_recorder(recorder):
            with trace_span("work", windows=5) as span:
                span.set(extra="yes")
        (span,) = recorder.spans()
        assert span.name == "work"
        assert span.attrs == {"windows": 5, "extra": "yes"}
        assert span.end >= span.start
        assert span.duration >= 0.0
        assert span.error is None

    def test_nested_spans_reconstruct_parentage(self):
        recorder = SpanRecorder()
        with use_recorder(recorder):
            with trace_span("outer"):
                with trace_span("inner"):
                    pass
                with trace_span("sibling"):
                    pass
        inner, sibling, outer = recorder.spans()
        assert outer.name == "outer" and outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert len({s.span_id for s in (inner, sibling, outer)}) == 3

    def test_exception_is_recorded_and_propagates(self):
        recorder = SpanRecorder()
        with use_recorder(recorder):
            with pytest.raises(ValueError):
                with trace_span("failing"):
                    raise ValueError("bad")
        (span,) = recorder.spans()
        assert span.error == "ValueError"

    def test_ring_buffer_evicts_oldest(self):
        recorder = SpanRecorder(capacity=3)
        with use_recorder(recorder):
            for i in range(5):
                with trace_span(f"s{i}"):
                    pass
        assert [s.name for s in recorder.spans()] == ["s2", "s3", "s4"]
        assert len(recorder) == 3

    def test_spans_filter_by_name(self):
        recorder = SpanRecorder()
        with use_recorder(recorder):
            with trace_span("keep"):
                pass
            with trace_span("drop"):
                pass
        assert [s.name for s in recorder.spans("keep")] == ["keep"]

    def test_record_span_for_external_timing(self):
        recorder = SpanRecorder()
        span = recorder.record_span("pump", 1.0, 3.5, windows=7)
        assert span.duration == pytest.approx(2.5)
        assert recorder.spans("pump")[0].attrs == {"windows": 7}

    def test_threads_nest_independently(self):
        recorder = SpanRecorder()
        install_recorder(recorder)
        barrier = threading.Barrier(2)

        def work(name):
            with trace_span(name):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = recorder.spans()
        assert len(spans) == 2
        # Concurrent roots: neither thread saw the other as a parent.
        assert all(s.parent_id is None for s in spans)


class TestInstallation:
    def test_install_returns_previous(self):
        first, second = SpanRecorder(), SpanRecorder()
        assert install_recorder(first) is None
        assert install_recorder(second) is first
        assert current_recorder() is second
        assert uninstall_recorder() is second
        assert current_recorder() is None

    def test_install_rejects_non_recorder(self):
        with pytest.raises(TypeError, match="SpanRecorder"):
            install_recorder(object())

    def test_use_recorder_restores_previous(self):
        ambient = SpanRecorder()
        install_recorder(ambient)
        scoped = SpanRecorder()
        with use_recorder(scoped) as active:
            assert active is scoped
            assert current_recorder() is scoped
        assert current_recorder() is ambient

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            SpanRecorder(capacity=0)
