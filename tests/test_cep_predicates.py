"""Tests for repro.cep.predicates — event predicates."""

import pytest

from repro.cep.predicates import EventPredicate
from repro.streams.events import Event


@pytest.fixture
def gps_event():
    return Event("gps", 5.0, attributes={"speed": 80}, source="car-1")


class TestConstructors:
    def test_of_type(self, gps_event):
        assert EventPredicate.of_type("gps").matches(gps_event)
        assert not EventPredicate.of_type("other").matches(gps_event)

    def test_of_type_records_symbol(self):
        assert EventPredicate.of_type("gps").event_type == "gps"

    def test_of_type_rejects_empty(self):
        with pytest.raises(ValueError):
            EventPredicate.of_type("")

    def test_any_event(self, gps_event):
        assert EventPredicate.any_event().matches(gps_event)

    def test_where(self, gps_event):
        fast = EventPredicate.where(lambda e: e.attribute("speed") > 50)
        assert fast.matches(gps_event)

    def test_where_non_callable_rejected(self):
        with pytest.raises(TypeError):
            EventPredicate("not-callable")  # type: ignore[arg-type]

    def test_attr_equals(self, gps_event):
        assert EventPredicate.attr_equals("speed", 80).matches(gps_event)
        assert not EventPredicate.attr_equals("speed", 10).matches(gps_event)

    def test_from_source(self, gps_event):
        assert EventPredicate.from_source("car-1").matches(gps_event)
        assert not EventPredicate.from_source("car-2").matches(gps_event)

    def test_callable_interface(self, gps_event):
        assert EventPredicate.of_type("gps")(gps_event)


class TestCombinators:
    def test_and(self, gps_event):
        combined = EventPredicate.of_type("gps") & EventPredicate.attr_equals(
            "speed", 80
        )
        assert combined.matches(gps_event)

    def test_and_short_circuit_false(self, gps_event):
        combined = EventPredicate.of_type("nope") & EventPredicate.any_event()
        assert not combined.matches(gps_event)

    def test_or(self, gps_event):
        combined = EventPredicate.of_type("nope") | EventPredicate.of_type("gps")
        assert combined.matches(gps_event)

    def test_invert(self, gps_event):
        assert (~EventPredicate.of_type("nope")).matches(gps_event)
        assert not (~EventPredicate.of_type("gps")).matches(gps_event)

    def test_composite_has_no_event_type(self):
        combined = EventPredicate.of_type("a") & EventPredicate.of_type("b")
        assert combined.event_type is None

    def test_names_compose(self):
        combined = EventPredicate.of_type("a") | EventPredicate.of_type("b")
        assert "a" in combined.name and "b" in combined.name
