"""Tests for repro.cep.engine — the trusted CEP middleware."""

import numpy as np
import pytest

from repro.cep.engine import CEPEngine, QualityRequirement
from repro.cep.patterns import OR, Pattern
from repro.cep.queries import ContinuousQuery
from repro.core.uniform import UniformPatternPPM
from repro.streams.events import Event
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream


@pytest.fixture
def engine(alphabet6):
    return CEPEngine(alphabet6)


@pytest.fixture
def ready_engine(engine, private_pattern, target_pattern):
    engine.register_private_pattern(private_pattern)
    engine.register_query(ContinuousQuery("q-target", target_pattern))
    return engine


class TestSetupPhase:
    def test_register_private_pattern(self, engine, private_pattern):
        engine.register_private_pattern(private_pattern)
        assert engine.private_patterns == [private_pattern]

    def test_duplicate_private_pattern_rejected(self, engine, private_pattern):
        engine.register_private_pattern(private_pattern)
        with pytest.raises(ValueError):
            engine.register_private_pattern(private_pattern)

    def test_pattern_outside_alphabet_rejected(self, engine):
        with pytest.raises(ValueError, match="absent"):
            engine.register_private_pattern(Pattern.of_types("p", "zz"))

    def test_register_query(self, engine, target_pattern):
        engine.register_query(ContinuousQuery("q", target_pattern))
        assert len(engine.queries) == 1

    def test_duplicate_query_rejected(self, engine, target_pattern):
        engine.register_query(ContinuousQuery("q", target_pattern))
        with pytest.raises(ValueError):
            engine.register_query(ContinuousQuery("q", target_pattern))

    def test_quality_requirement(self, engine):
        engine.set_quality_requirement(QualityRequirement(alpha=0.7, max_mre=0.2))
        assert engine.quality_requirement.alpha == 0.7

    def test_invalid_quality_requirement(self):
        with pytest.raises(ValueError):
            QualityRequirement(alpha=1.5)
        with pytest.raises(ValueError):
            QualityRequirement(max_mre=-0.1)

    def test_attach_mechanism_requires_perturb(self, engine):
        with pytest.raises(TypeError):
            engine.attach_mechanism(object())

    def test_non_pattern_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.register_private_pattern("nope")  # type: ignore[arg-type]

    def test_bad_alphabet_type_rejected(self):
        with pytest.raises(TypeError):
            CEPEngine(["a", "b"])  # type: ignore[arg-type]


class TestServicePhase:
    def test_without_mechanism_answers_equal_truth(self, ready_engine, stream200):
        report = ready_engine.process_indicators(stream200)
        answer = report.answer("q-target")
        truth = report.true_answers["q-target"]
        assert np.array_equal(answer.detections, truth.detections)

    def test_with_mechanism_perturbs_once(
        self, ready_engine, stream200, private_pattern
    ):
        ppm = UniformPatternPPM(private_pattern, epsilon=1.0)
        ready_engine.attach_mechanism(ppm)
        report = ready_engine.process_indicators(stream200, rng=3)
        # Non-private columns untouched.
        assert np.array_equal(
            report.perturbed.column("e5"), stream200.column("e5")
        )
        # Private columns perturbed (with overwhelming probability).
        assert not np.array_equal(
            report.perturbed.column("e1"), stream200.column("e1")
        )

    def test_answers_computed_on_perturbed(self, ready_engine, stream200, private_pattern):
        ppm = UniformPatternPPM(private_pattern, epsilon=1.0)
        ready_engine.attach_mechanism(ppm)
        report = ready_engine.process_indicators(stream200, rng=3)
        expected = report.perturbed.detect_all(["e2", "e3", "e4"])
        assert np.array_equal(
            report.answer("q-target").detections, expected
        )

    def test_no_queries_raises(self, engine, stream200):
        with pytest.raises(RuntimeError):
            engine.process_indicators(stream200)

    def test_alphabet_mismatch_rejected(self, ready_engine):
        other = IndicatorStream(
            EventAlphabet(["x"]), np.zeros((2, 1), dtype=bool)
        )
        with pytest.raises(ValueError):
            ready_engine.process_indicators(other)

    def test_unknown_answer_key(self, ready_engine, stream200):
        report = ready_engine.process_indicators(stream200)
        with pytest.raises(KeyError):
            report.answer("nope")

    def test_non_sequential_query_rejected_in_indicator_mode(
        self, engine, stream200
    ):
        engine.register_query(
            ContinuousQuery("q-or", Pattern("p-or", OR("e1", "e2")))
        )
        with pytest.raises(ValueError, match="non-sequential"):
            engine.process_indicators(stream200)


class TestFullMatching:
    def test_match_runs_cep_semantics(self, engine):
        events = EventStream(
            [Event("e1", 0.0), Event("e2", 1.0), Event("e3", 2.0)]
        )
        matches = engine.match(events, Pattern.of_types("p", "e1", "e3"))
        assert len(matches) == 1

    def test_detect_all_patterns_merges_by_completion(
        self, ready_engine
    ):
        events = EventStream(
            [
                Event("e2", 0.0),
                Event("e1", 1.0),
                Event("e2", 2.0),
                Event("e3", 3.0),
                Event("e4", 4.0),
            ]
        )
        merged = ready_engine.detect_all_patterns(events)
        ends = [match.end for match in merged]
        assert ends == sorted(ends)
        names = {match.pattern_name for match in merged}
        assert "private" in names and "target" in names
