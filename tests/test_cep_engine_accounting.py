"""Tests for the CEP engine's service-phase budget accounting."""

import pytest

from repro.cep.engine import CEPEngine
from repro.cep.queries import ContinuousQuery
from repro.baselines.event_level import EventLevelRR
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.cep.patterns import Pattern
from repro.mechanisms.accountant import BudgetExceededError


@pytest.fixture
def engine(alphabet6, private_pattern, target_pattern):
    engine = CEPEngine(alphabet6)
    engine.register_private_pattern(private_pattern)
    engine.register_query(ContinuousQuery("q", target_pattern))
    return engine


class TestAccounting:
    def test_disabled_by_default(self, engine, stream200, private_pattern):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 1.0))
        assert engine.accountant is None
        for _ in range(5):
            engine.process_indicators(stream200, rng=0)  # no cap

    def test_spends_per_release(self, engine, stream200, private_pattern):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 1.0))
        engine.enable_accounting(2.5)
        engine.process_indicators(stream200, rng=0)
        assert engine.accountant.spent() == pytest.approx(1.0)
        engine.process_indicators(stream200, rng=1)
        assert engine.accountant.spent() == pytest.approx(2.0)

    def test_overspend_refused_before_noise(self, engine, stream200, private_pattern):
        engine.attach_mechanism(UniformPatternPPM(private_pattern, 1.0))
        engine.enable_accounting(1.5)
        engine.process_indicators(stream200, rng=0)
        with pytest.raises(BudgetExceededError):
            engine.process_indicators(stream200, rng=1)
        # The failed release must not be recorded.
        assert engine.accountant.spent() == pytest.approx(1.0)

    def test_multi_pattern_spends_per_guarantee(
        self, engine, stream200, private_pattern
    ):
        other = Pattern.of_types("other", "e5", "e6")
        mechanism = MultiPatternPPM(
            [
                UniformPatternPPM(private_pattern, 1.0),
                UniformPatternPPM(other, 0.5),
            ]
        )
        engine.attach_mechanism(mechanism)
        engine.enable_accounting(10.0)
        engine.process_indicators(stream200, rng=0)
        by_label = engine.accountant.by_label()
        assert by_label["release:private"] == pytest.approx(1.0)
        assert by_label["release:other"] == pytest.approx(0.5)

    def test_atomic_refusal_for_multi_pattern(
        self, engine, stream200, private_pattern
    ):
        other = Pattern.of_types("other", "e5", "e6")
        mechanism = MultiPatternPPM(
            [
                UniformPatternPPM(private_pattern, 1.0),
                UniformPatternPPM(other, 1.0),
            ]
        )
        engine.attach_mechanism(mechanism)
        engine.enable_accounting(1.5)  # fits one guarantee, not both
        with pytest.raises(BudgetExceededError):
            engine.process_indicators(stream200, rng=0)
        assert engine.accountant.spent() == 0.0  # nothing partially spent

    def test_plain_mechanism_spends_its_epsilon(self, engine, stream200):
        engine.attach_mechanism(EventLevelRR(0.7))
        engine.enable_accounting(1.0)
        engine.process_indicators(stream200, rng=0)
        assert engine.accountant.spent() == pytest.approx(0.7)

    def test_no_spend_without_mechanism(self, engine, stream200):
        engine.enable_accounting(1.0)
        engine.process_indicators(stream200, rng=0)
        assert engine.accountant.spent() == 0.0

    def test_invalid_total(self, engine):
        with pytest.raises(Exception):
            engine.enable_accounting(0.0)
