"""Integration tests: telemetry through the stack + the soak harness.

Covers the three cross-layer guarantees the observability plane makes:
instrumentation never changes released outputs (bit-identity), metric
series survive gateway kill/resume via the checkpoint's ``metrics``
section (monotone counters), and cluster workers ship their per-task
registries home over the ``_METRICS`` frame.  The soak harness itself
is exercised end to end at toy scale.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.baselines.budget_distribution import BudgetDistribution
from repro.cep.patterns import Pattern
from repro.cep.queries import ContinuousQuery
from repro.io import write_indicator_csv
from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    use_registry,
)
from repro.obs.soak import SoakReport, run_soak
from repro.obs.tracing import SpanRecorder, use_recorder
from repro.runtime import (
    BatchExecutor,
    ClusterExecutor,
    ShardedExecutor,
    StreamPipeline,
)
from repro.service import ServiceSpec, StreamGateway
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)
QUERIES = [
    ContinuousQuery("q1", Pattern.of_types("q1", "e1", "e2")),
    ContinuousQuery("q2", Pattern.of_types("q2", "e3")),
]


def make_stream(n_windows, seed=9):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n_windows, 5)) < 0.35)


def make_pipeline():
    return StreamPipeline(
        ALPHABET, queries=QUERIES, mechanism=BudgetDistribution(1.0, w=4)
    )


def tenant_spec(seed, *, source="synthetic:windows=60,seed=5"):
    return ServiceSpec(
        alphabet=tuple(ALPHABET.types),
        queries=[("q1", ("e1", "e2"))],
        mechanism="bd",
        mechanism_options={"epsilon": 1.0, "w": 4},
        source=source,
        sink="memory",
        seed=seed,
    )


@pytest.fixture
def replay_csv(tmp_path):
    rng = random.Random(3)
    rows = [[rng.randint(0, 1) for _ in range(5)] for _ in range(120)]
    path = str(tmp_path / "replay.csv")
    write_indicator_csv(IndicatorStream(ALPHABET, rows), path)
    return path


class TestBitIdentity:
    """Instrumented runs release exactly what uninstrumented runs do."""

    @pytest.mark.parametrize(
        "executor_factory",
        [
            BatchExecutor,
            lambda: ShardedExecutor(2),
            lambda: ClusterExecutor(2),
        ],
        ids=["batch", "sharded", "cluster"],
    )
    def test_recorder_and_registry_do_not_change_outputs(
        self, executor_factory
    ):
        stream = make_stream(40)
        plain = make_pipeline().run(stream, rng=17)
        recorder = SpanRecorder()
        with use_recorder(recorder), use_registry(MetricsRegistry()):
            traced = make_pipeline().run(
                stream, rng=17, executor=executor_factory()
            )
        assert plain.released == traced.released
        for name in plain.answers:
            assert np.array_equal(
                plain.answers[name], traced.answers[name]
            )
        assert len(recorder.spans()) > 0

    def test_executor_spans_are_children_of_pipeline_run(self):
        recorder = SpanRecorder()
        with use_recorder(recorder):
            make_pipeline().run(make_stream(20), rng=1)
        (run_span,) = recorder.spans("pipeline.run")
        (batch_span,) = recorder.spans("executor.batch")
        assert batch_span.parent_id == run_span.span_id
        assert batch_span.attrs["windows"] == 20


class TestKernelTelemetry:
    def test_decision_counters_account_for_every_row(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            make_pipeline().run(make_stream(50), rng=2)
        certified = registry.get("repro_decisions_certified_rows_total")
        boundary = registry.get("repro_decisions_boundary_rows_total")
        zero = registry.get("repro_decisions_zero_budget_rows_total")
        total = sum(
            metric.value
            for metric in (certified, boundary, zero)
            if metric is not None
        )
        assert total == 50.0


class TestClusterMetricsFrame:
    def test_worker_task_metrics_ship_to_parent_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            ClusterExecutor(2).run(make_pipeline(), make_stream(40), rng=3)
        tasks = registry.get("repro_cluster_tasks_total")
        assert tasks is not None and tasks.value >= 2.0
        seconds = registry.get("repro_cluster_task_seconds")
        assert seconds is not None and seconds.count == tasks.value
        # The kernels ran inside the workers, yet their counters landed
        # here — carried home by the metrics frame, not shared memory.
        certified = registry.get("repro_decisions_certified_rows_total")
        boundary = registry.get("repro_decisions_boundary_rows_total")
        zero = registry.get("repro_decisions_zero_budget_rows_total")
        total = sum(
            metric.value
            for metric in (certified, boundary, zero)
            if metric is not None
        )
        assert total == 40.0


class TestGatewayMetricsLifecycle:
    def test_checkpoint_carries_metrics_and_resume_is_monotone(self):
        gateway = StreamGateway()
        gateway.add_tenant("a", tenant_spec(7))
        asyncio.run(gateway.serve(max_windows=20))
        first = gateway.checkpoint()
        assert "metrics" in first
        served_before = (
            gateway.registry.get("repro_session_windows_total").value
        )
        assert served_before == 20.0

        resumed = StreamGateway.resume(first, registry=MetricsRegistry())
        asyncio.run(resumed.serve(max_windows=20))
        served_after = (
            resumed.registry.get("repro_session_windows_total").value
        )
        assert served_after == 40.0  # continued, not restarted
        assert resumed.registry.get(
            "repro_gateway_resumes_total"
        ).value == 1.0

    def test_session_metrics_stay_out_of_global_registry(self):
        before = default_registry().get("repro_window_latency_seconds")
        before_count = before.count if before is not None else 0
        gateway = StreamGateway()
        gateway.add_tenant("a", tenant_spec(7))
        asyncio.run(gateway.serve(max_windows=10))
        after = default_registry().get("repro_window_latency_seconds")
        after_count = after.count if after is not None else 0
        assert after_count == before_count
        assert (
            gateway.registry.get("repro_window_latency_seconds").count
            == 10
        )

    def test_shed_counter_views_survive_resume(self):
        clock = {"now": 0.0}
        gateway = StreamGateway()
        gateway.add_tenant(
            "a",
            tenant_spec(7),
            rate_limit=5.0,
            burst=1.0,
            clock=lambda: clock["now"],
        )
        asyncio.run(gateway.serve(max_windows=30))
        shed_before = gateway.shed_windows()["a"]
        assert shed_before > 0  # frozen clock: only the burst admits


class TestRunSoak:
    def test_short_soak_with_kill_resume_accounts_every_window(
        self, replay_csv
    ):
        report = run_soak(
            replay_csv,
            tenants=2,
            rate=50_000.0,
            duration=30.0,
            slice_windows=32,
            kill_every=2,
        )
        assert isinstance(report, SoakReport)
        # 2 tenants x 120 replayed windows, none lost across kills.
        assert report.windows_total == 240
        assert report.resumes == report.checkpoints >= 1
        assert report.windows_per_second > 0
        assert 0.0 < report.p50_latency_seconds
        assert report.p50_latency_seconds <= report.p99_latency_seconds
        assert report.registry.get(
            "repro_window_latency_seconds"
        ).count == 240
        assert "latency: p50" in report.summary()

    def test_soak_without_kills_matches(self, replay_csv):
        report = run_soak(
            replay_csv,
            tenants=1,
            rate=50_000.0,
            duration=30.0,
            slice_windows=64,
            kill_every=0,
        )
        assert report.windows_total == 120
        assert report.resumes == 0

    def test_soak_records_spans_and_snapshots(
        self, replay_csv, tmp_path
    ):
        recorder = SpanRecorder()
        snapshot_path = str(tmp_path / "snapshots.jsonl")
        report = run_soak(
            replay_csv,
            tenants=1,
            rate=50_000.0,
            duration=30.0,
            slice_windows=64,
            kill_every=0,
            recorder=recorder,
            snapshot_path=snapshot_path,
        )
        assert report.slices >= 1
        assert len(recorder.spans("gateway.serve")) >= report.slices
        lines = open(snapshot_path).read().splitlines()
        assert len(lines) == report.slices

    def test_soak_validates_inputs(self, replay_csv, tmp_path):
        with pytest.raises(ValueError, match="tenants"):
            run_soak(replay_csv, tenants=0)
        with pytest.raises(ValueError, match="duration"):
            run_soak(replay_csv, duration=0)
        with pytest.raises(ValueError, match="kill_every"):
            run_soak(replay_csv, kill_every=-1)
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            run_soak(str(empty))
