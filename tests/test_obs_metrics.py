"""Tests for repro.obs.metrics: primitives, registry, snapshot/merge."""

import gc
import sys
import threading

import pytest

from repro.obs.exposition import JsonlSnapshotWriter
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("windows_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("windows_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1.0)

    def test_reset_zeroes(self):
        counter = Counter("windows_total")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("7starts_with_digit")

    def test_inc_allocation_does_not_scale_with_calls(self):
        # The drain loop and the decision kernels increment counters
        # per window/row; the hot path must not allocate per call (a
        # few blocks of constant loop overhead are tolerated, growth
        # proportional to the call count is not).
        counter = Counter("hot_total")

        def measure(calls):
            for _ in range(64):
                counter.inc()  # warm up any lazy internals
            gc.collect()
            before = sys.getallocatedblocks()
            for _ in range(calls):
                counter.inc()
            return sys.getallocatedblocks() - before

        small, large = measure(100), measure(10_000)
        assert large <= small + 8
        assert counter.value == 64.0 * 2 + 100 + 10_000

    def test_thread_safety_under_contention(self):
        counter = Counter("contended_total")

        def spin():
            for _ in range(2000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("pending")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestLabels:
    def test_same_label_set_is_same_child(self):
        counter = Counter("tenant_total")
        child = counter.labels(tenant="a")
        assert counter.labels(tenant="a") is child
        assert counter.labels(tenant="b") is not child

    def test_label_order_does_not_matter(self):
        counter = Counter("pair_total")
        assert counter.labels(a="1", b="2") is counter.labels(
            b="2", a="1"
        )

    def test_children_report_independently(self):
        counter = Counter("tenant_total")
        counter.labels(tenant="a").inc(3)
        counter.labels(tenant="b").inc(5)
        assert counter.labels(tenant="a").value == 3.0
        assert counter.labels(tenant="b").value == 5.0


class TestHistogram:
    def test_default_buckets_are_exponential(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.0005)
        ratios = [
            DEFAULT_LATENCY_BUCKETS[i + 1] / DEFAULT_LATENCY_BUCKETS[i]
            for i in range(len(DEFAULT_LATENCY_BUCKETS) - 1)
        ]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_bucket_boundaries_are_le_inclusive(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            hist.observe(value)
        # le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=4: {4.0}; +Inf: {9.0}
        assert hist.bucket_counts() == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.sum == pytest.approx(18.0)

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("lat", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("lat", buckets=())

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("lat", buckets=(10.0, 20.0))
        for _ in range(10):
            hist.observe(5.0)  # all in the (0, 10] bucket
        # rank 5 of 10 → halfway through a bucket spanning 0..10
        assert hist.percentile(50) == pytest.approx(5.0)
        assert hist.percentile(100) == pytest.approx(10.0)

    def test_percentile_spans_buckets(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(50):
            hist.observe(0.5)
        for _ in range(50):
            hist.observe(3.0)
        assert hist.percentile(50) == pytest.approx(1.0)
        assert 2.0 <= hist.percentile(99) <= 4.0

    def test_percentile_overflow_reports_last_finite_bound(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.percentile(99) == 2.0

    def test_percentile_empty_is_zero(self):
        assert Histogram("lat", buckets=(1.0,)).percentile(99) == 0.0

    def test_percentile_range_checked(self):
        hist = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            hist.percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        counter = registry.counter("a_total", "help text")
        assert registry.counter("a_total") is counter
        assert registry.get("a_total") is counter
        assert registry.get("missing") is None

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a_total")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different"):
            registry.histogram("lat", buckets=(1.0, 3.0))

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.").labels(
            tenant="a"
        ).inc(3)
        registry.gauge("pending").set(2)
        hist = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render_text()
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{tenant="a"} 3.0' in text
        assert "pending 2.0" in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_snapshot_merge_counters_add_gauges_overwrite(self):
        first = MetricsRegistry()
        first.counter("windows_total").inc(5)
        first.gauge("pending").set(3)
        second = MetricsRegistry()
        second.counter("windows_total").inc(2)
        second.gauge("pending").set(9)
        second.merge_snapshot(first.snapshot())
        assert second.counter("windows_total").value == 7.0
        assert second.gauge("pending").value == 3.0

    def test_snapshot_merge_histograms_add_elementwise(self):
        first = MetricsRegistry()
        first.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        second = MetricsRegistry()
        hist = second.histogram("lat", buckets=(1.0, 2.0))
        hist.observe(1.5)
        second.merge_snapshot(first.snapshot())
        assert hist.bucket_counts() == [1, 1, 0]
        assert hist.count == 2
        assert hist.sum == pytest.approx(2.0)

    def test_merge_histogram_bucket_mismatch_raises(self):
        first = MetricsRegistry()
        first.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        second = MetricsRegistry()
        second.histogram("lat", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            second.merge_snapshot(first.snapshot())

    def test_merge_preserves_labels(self):
        first = MetricsRegistry()
        first.counter("tenant_total").labels(tenant="a").inc(4)
        second = MetricsRegistry()
        second.merge_snapshot(first.snapshot())
        assert (
            second.counter("tenant_total").labels(tenant="a").value
            == 4.0
        )

    def test_merge_none_and_empty_are_noops(self):
        registry = MetricsRegistry()
        registry.merge_snapshot(None)
        registry.merge_snapshot({})
        assert registry.metrics() == []

    def test_snapshot_roundtrips_through_fresh_registry(self):
        source = MetricsRegistry()
        source.counter("a_total").inc(3)
        source.histogram("lat", buckets=(1.0,)).observe(0.5)
        clone = MetricsRegistry()
        clone.merge_snapshot(source.snapshot())
        assert clone.snapshot() == source.snapshot()


class TestDefaultRegistry:
    def test_use_registry_scopes_and_restores(self):
        outer = default_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped):
            assert default_registry() is scoped
            default_registry().counter("scoped_total").inc()
        assert default_registry() is outer
        assert scoped.counter("scoped_total").value == 1.0

    def test_set_default_registry_returns_previous(self):
        outer = default_registry()
        replacement = MetricsRegistry()
        previous = set_default_registry(replacement)
        try:
            assert previous is outer
            assert default_registry() is replacement
        finally:
            set_default_registry(outer)


class TestJsonlSnapshotWriter:
    def test_write_appends_one_snapshot_per_call(self, tmp_path):
        import json

        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        path = str(tmp_path / "snapshots.jsonl")
        writer = JsonlSnapshotWriter(path, registry)
        writer.write()
        registry.counter("a_total").inc(3)
        writer.write()
        lines = [
            json.loads(line)
            for line in open(path).read().splitlines()
        ]
        assert len(lines) == 2
        values = [
            line["snapshot"]["metrics"][0]["samples"][0]["value"]
            for line in lines
        ]
        assert values == [2.0, 5.0]
        assert all("at" in line for line in lines)

    def test_periodic_writer_stops_cleanly(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        path = str(tmp_path / "snapshots.jsonl")
        with JsonlSnapshotWriter(path, registry) as writer:
            writer.start(interval=30.0)
        # stop() always flushes a final snapshot.
        assert open(path).read().count("\n") >= 1
