"""Tests for repro.streams.windows — window assigners."""

import pytest

from repro.streams.events import Event
from repro.streams.stream import EventStream
from repro.streams.windows import (
    CountWindows,
    SessionWindows,
    SlidingWindows,
    TumblingWindows,
)


def stream_at(timestamps, event_type="e"):
    return EventStream([Event(event_type, float(t)) for t in timestamps])


class TestTumblingWindows:
    def test_partitions_events(self):
        windows = TumblingWindows(10.0).assign(stream_at([0, 3, 9, 10, 25]))
        assert [len(w) for w in windows] == [3, 1, 1]

    def test_bounds_are_half_open(self):
        windows = TumblingWindows(10.0).assign(stream_at([0, 10]))
        assert windows[0].start == 0.0 and windows[0].end == 10.0
        assert windows[1].start == 10.0

    def test_every_event_in_exactly_one_window(self):
        events = stream_at(range(0, 50, 3))
        windows = TumblingWindows(7.0).assign(events)
        total = sum(len(w) for w in windows)
        assert total == len(events)

    def test_emit_empty_fills_gaps(self):
        windows = TumblingWindows(10.0, emit_empty=True).assign(
            stream_at([0, 35])
        )
        assert [len(w) for w in windows] == [1, 0, 0, 1]
        assert [w.index for w in windows] == [0, 1, 2, 3]

    def test_skip_empty_by_default(self):
        windows = TumblingWindows(10.0).assign(stream_at([0, 35]))
        assert [len(w) for w in windows] == [1, 1]

    def test_custom_origin(self):
        windows = TumblingWindows(10.0, origin=0.0).assign(stream_at([15]))
        assert windows[0].start == 10.0

    def test_event_before_origin_rejected(self):
        with pytest.raises(ValueError):
            TumblingWindows(10.0, origin=20.0).assign(stream_at([5]))

    def test_empty_stream(self):
        assert TumblingWindows(10.0).assign(EventStream([])) == []

    def test_invalid_width(self):
        with pytest.raises(Exception):
            TumblingWindows(0.0)


class TestSlidingWindows:
    def test_overlapping_assignment(self):
        windows = SlidingWindows(10.0, 5.0).assign(stream_at([0, 7]))
        # Window [0,10) holds both; [5,15) holds the second.
        assert len(windows[0]) == 2
        assert len(windows[1]) == 1

    def test_slide_equal_width_is_tumbling(self):
        events = stream_at([0, 3, 9, 10])
        sliding = SlidingWindows(10.0, 10.0).assign(events)
        tumbling = TumblingWindows(10.0).assign(events)
        assert [len(w) for w in sliding] == [len(w) for w in tumbling]

    def test_slide_larger_than_width_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindows(5.0, 10.0)

    def test_indices_sequential(self):
        windows = SlidingWindows(10.0, 5.0).assign(stream_at(range(20)))
        assert [w.index for w in windows] == list(range(len(windows)))

    def test_empty_stream(self):
        assert SlidingWindows(10.0, 5.0).assign(EventStream([])) == []


class TestCountWindows:
    def test_fixed_size_chunks(self):
        windows = CountWindows(3).assign(stream_at(range(7)))
        assert [len(w) for w in windows] == [3, 3, 1]

    def test_drop_partial(self):
        windows = CountWindows(3, drop_partial=True).assign(stream_at(range(7)))
        assert [len(w) for w in windows] == [3, 3]

    def test_exact_multiple(self):
        windows = CountWindows(2).assign(stream_at(range(6)))
        assert [len(w) for w in windows] == [2, 2, 2]

    def test_window_bounds_are_observed(self):
        windows = CountWindows(2).assign(stream_at([1, 5, 9]))
        assert windows[0].start == 1.0 and windows[0].end == 5.0

    def test_empty_stream(self):
        assert CountWindows(3).assign(EventStream([])) == []


class TestSessionWindows:
    def test_splits_on_gap(self):
        windows = SessionWindows(5.0).assign(stream_at([0, 2, 4, 20, 21]))
        assert [len(w) for w in windows] == [3, 2]

    def test_no_gap_single_session(self):
        windows = SessionWindows(5.0).assign(stream_at([0, 2, 4]))
        assert len(windows) == 1

    def test_gap_boundary_is_exclusive(self):
        # A gap of exactly `gap` does not split.
        windows = SessionWindows(5.0).assign(stream_at([0, 5]))
        assert len(windows) == 1
        windows = SessionWindows(5.0).assign(stream_at([0, 5.01]))
        assert len(windows) == 2

    def test_empty_stream(self):
        assert SessionWindows(5.0).assign(EventStream([])) == []


class TestWindowObject:
    def test_event_types(self):
        window = TumblingWindows(10.0).assign(
            EventStream([Event("a", 0.0), Event("b", 1.0), Event("a", 2.0)])
        )[0]
        assert window.event_types() == frozenset({"a", "b"})

    def test_contains_type(self):
        window = TumblingWindows(10.0).assign(
            EventStream([Event("a", 0.0)])
        )[0]
        assert window.contains_type("a")
        assert not window.contains_type("b")

    def test_iteration(self):
        window = TumblingWindows(10.0).assign(stream_at([0, 1]))[0]
        assert len(list(window)) == 2
