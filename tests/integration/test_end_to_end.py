"""Integration tests across the full stack.

Each test exercises a complete path through the system: raw tuples →
extraction → windows → indicators → engine+PPM → quality, plus the
round trips between the harness pieces.
"""

import pytest

from repro.cep.engine import CEPEngine
from repro.cep.queries import ContinuousQuery
from repro.core.adaptive import AdaptivePatternPPM
from repro.core.ppm import MultiPatternPPM
from repro.core.uniform import UniformPatternPPM
from repro.core.verification import verify_instance_dp, verify_single_event_dp
from repro.datasets.io import load_workload, save_workload
from repro.datasets.synthetic import SyntheticConfig, synthesize_dataset
from repro.datasets.taxi import (
    PRIVATE_PATTERNS,
    TARGET_PATTERNS,
    TAXI_ALPHABET,
    GridCity,
    TaxiConfig,
    build_taxi_workload,
    fleet_data_stream,
    simulate_fleet,
    taxi_event_extractors,
)
from repro.experiments.runner import build_mechanism, evaluate_mechanism
from repro.metrics.confusion import ConfusionCounts
from repro.streams.extraction import extract_events
from repro.streams.indicator import IndicatorStream
from repro.streams.merge import partition_by_source
from repro.streams.windows import CountWindows


class TestRawTuplesToAnswers:
    """The Fig. 2 pipeline: data subjects' tuples in, private answers out."""

    def test_full_pipeline(self):
        config = TaxiConfig(n_taxis=8, n_steps=48)
        city = GridCity.generate(config, rng=1)
        traces = simulate_fleet(config, rng=2)

        # 1. Raw data stream (S^D) -> event stream (S^E).
        data_stream = fleet_data_stream(config, traces)
        events = extract_events(data_stream, taxi_event_extractors(city))
        assert len(events) > 0

        # 2. Per-taxi windows -> indicator stream.
        windows = []
        for source, per_taxi in sorted(partition_by_source(events).items()):
            windows.extend(CountWindows(8).assign(per_taxi))
        stream = IndicatorStream.from_event_windows(TAXI_ALPHABET, windows)
        assert stream.n_windows == len(windows)

        # 3. Engine setup (Fig. 2 setup phase).
        engine = CEPEngine(TAXI_ALPHABET)
        for pattern in PRIVATE_PATTERNS:
            engine.register_private_pattern(pattern)
        for pattern in TARGET_PATTERNS:
            engine.register_query(ContinuousQuery.for_pattern(pattern))
        ppm = MultiPatternPPM(
            [UniformPatternPPM(pattern, 2.0) for pattern in PRIVATE_PATTERNS]
        )
        engine.attach_mechanism(ppm)

        # 4. Service phase: consumers get answers on perturbed data.
        report = engine.process_indicators(stream, rng=3)
        for query in engine.queries:
            answer = report.answer(query.name)
            assert answer.n_windows == stream.n_windows

        # 5. Quality accounting against the (engine-internal) truth.
        counts = ConfusionCounts()
        for query in engine.queries:
            counts = counts + ConfusionCounts.from_vectors(
                report.true_answers[query.name].detections,
                report.answers[query.name].detections,
            )
        assert counts.total == stream.n_windows * len(engine.queries)
        assert counts.accuracy > 0.5  # ε=2 keeps most answers intact


class TestGuaranteeOnRealWorkloads:
    def test_deployed_mechanisms_verify_exactly(self, tiny_workload):
        mechanism = build_mechanism("adaptive", tiny_workload, 2.0)
        for ppm in mechanism.ppms:
            single = verify_single_event_dp(
                ppm, tiny_workload.stream, window_index=0
            )
            instance = verify_instance_dp(
                ppm, tiny_workload.stream, window_index=0
            )
            assert single.holds
            assert instance.holds
            assert instance.epsilon_claimed == pytest.approx(2.0)

    def test_adaptive_never_worse_than_uniform_on_history(self, tiny_workload):
        from repro.core.quality_model import AnalyticQualityEstimator

        for pattern in tiny_workload.private_patterns:
            estimator = AnalyticQualityEstimator(
                tiny_workload.history, pattern, tiny_workload.target_patterns
            )
            adaptive = AdaptivePatternPPM.fit(
                pattern, 2.0, tiny_workload.history, tiny_workload.target_patterns
            )
            uniform = UniformPatternPPM(pattern, 2.0)
            assert (
                estimator.evaluate(adaptive.allocation).q
                >= estimator.evaluate(uniform.allocation).q - 1e-12
            )


class TestWorkloadRoundTripStability:
    def test_saved_workload_reproduces_results(self, tiny_workload, tmp_path):
        directory = str(tmp_path / "wl")
        save_workload(tiny_workload, directory)
        reloaded = load_workload(directory)
        original = evaluate_mechanism(
            tiny_workload, "uniform", 2.0, n_trials=2, rng=9
        )
        repeated = evaluate_mechanism(
            reloaded, "uniform", 2.0, n_trials=2, rng=9
        )
        assert repeated.mre == pytest.approx(original.mre)


class TestHeadlineClaim:
    """The paper's core claim on both workloads, end to end."""

    @pytest.mark.parametrize("epsilon", [1.0, 4.0])
    def test_pattern_level_beats_all_baselines_synthetic(self, epsilon):
        workload = synthesize_dataset(
            SyntheticConfig(n_windows=300, n_history_windows=150), rng=17
        )
        ours = min(
            evaluate_mechanism(workload, kind, epsilon, n_trials=3, rng=1).mre
            for kind in ("uniform", "adaptive")
        )
        theirs = min(
            evaluate_mechanism(workload, kind, epsilon, n_trials=3, rng=1).mre
            for kind in ("bd", "ba", "landmark")
        )
        assert ours < theirs

    def test_pattern_level_beats_all_baselines_taxi(self):
        workload = build_taxi_workload(
            TaxiConfig(n_taxis=25, n_steps=100), rng=17
        )
        ours = evaluate_mechanism(
            workload, "uniform", 2.0, n_trials=3, rng=1
        ).mre
        theirs = min(
            evaluate_mechanism(workload, kind, 2.0, n_trials=3, rng=1).mre
            for kind in ("bd", "ba", "landmark")
        )
        assert ours < theirs
