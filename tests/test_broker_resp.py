"""Tests for the RESP2 codec and the blocking socket connection.

The wire layer is dependency-free, so these tests pin the exact bytes
of the codec, the url grammar, and the connection's behaviour against
the in-process fake — including the transport-failure taxonomy
(refused / reset / timed out / protocol garbage) the retry layer keys
off.
"""

import socket
import threading

import pytest

from repro.broker import FakeRedisServer
from repro.broker.resp import (
    BrokerConnectionError,
    BrokerProtocolError,
    BrokerTimeout,
    RespConnection,
    RespError,
    encode_command,
    parse_url,
)


class TestEncodeCommand:
    def test_exact_bytes(self):
        assert encode_command("PING") == b"*1\r\n$4\r\nPING\r\n"
        assert encode_command("XADD", "s", "*", "row", "01") == (
            b"*5\r\n$4\r\nXADD\r\n$1\r\ns\r\n$1\r\n*\r\n"
            b"$3\r\nrow\r\n$2\r\n01\r\n"
        )

    def test_int_and_bytes_parts(self):
        assert encode_command("XLEN", 42) == b"*2\r\n$4\r\nXLEN\r\n$2\r\n42\r\n"
        assert encode_command(b"\x00\xff") == b"*1\r\n$2\r\n\x00\xff\r\n"

    def test_empty_command_rejected(self):
        with pytest.raises(ValueError, match="at least one part"):
            encode_command()

    def test_bad_part_types_rejected(self):
        with pytest.raises(TypeError):
            encode_command("XADD", ["nested"])
        with pytest.raises(TypeError):
            encode_command("XADD", True)


class TestParseUrl:
    def test_host_and_port(self):
        assert parse_url("redis://127.0.0.1:6380") == ("127.0.0.1", 6380)

    def test_default_port(self):
        assert parse_url("redis://broker.local") == ("broker.local", 6379)

    @pytest.mark.parametrize(
        "url, message",
        [
            ("", "non-empty"),
            ("http://host:1", "unsupported"),
            ("redis://host:1/0", "path"),
            ("redis://:6379", "no host"),
            ("redis://host:abc", "non-integer port"),
            ("redis://host:70000", "out of range"),
        ],
    )
    def test_rejections(self, url, message):
        with pytest.raises(ValueError, match=message):
            parse_url(url)

    def test_non_string_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            parse_url(None)


class TestRespError:
    def test_code_is_leading_word(self):
        assert RespError("BUSYGROUP already exists").code == "BUSYGROUP"
        assert RespError("").code == ""


@pytest.fixture
def server():
    with FakeRedisServer() as fake:
        yield fake


def connect(server, **kwargs):
    host, port = parse_url(server.url)
    return RespConnection(host, port, **kwargs)


class TestRespConnection:
    def test_ping_round_trip(self, server):
        with connect(server) as conn:
            assert conn.execute("PING") == "PONG"
            assert conn.execute("PING", "hello") == "hello"

    def test_bulk_and_array_replies(self, server):
        with connect(server) as conn:
            assert conn.execute("XADD", "s", "*", "k", "v") == b"1-0"
            assert conn.execute("XLEN", "s") == 1
            entries = conn.execute("XRANGE", "s", "-", "+")
            assert entries == [[b"1-0", [b"k", b"v"]]]

    def test_error_reply_raises_resp_error(self, server):
        with connect(server) as conn:
            with pytest.raises(RespError) as excinfo:
                conn.execute("NOSUCHCOMMAND")
            assert excinfo.value.code == "ERR"
            # A semantic refusal leaves the connection healthy.
            assert conn.execute("PING") == "PONG"

    def test_pipeline_returns_errors_as_values(self, server):
        with connect(server) as conn:
            replies = conn.execute_pipeline(
                [
                    ("XADD", "s", "*", "k", "v"),
                    ("NOSUCHCOMMAND",),
                    ("XLEN", "s"),
                ]
            )
            assert replies[0] == b"1-0"
            assert isinstance(replies[1], RespError)
            assert replies[2] == 1

    def test_pipeline_empty_is_noop(self, server):
        assert connect(server).execute_pipeline([]) == []

    def test_connect_refused(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        conn = RespConnection("127.0.0.1", port, connect_timeout=0.5)
        with pytest.raises(BrokerConnectionError):
            conn.connect()
        assert not conn.connected

    def test_reset_fault_surfaces_connection_error(self, server):
        server.inject_fault("reset", command="PING")
        conn = connect(server)
        with pytest.raises(BrokerConnectionError):
            conn.execute("PING")
        # The failed connection is closed; a fresh execute reconnects.
        assert not conn.connected
        assert conn.execute("PING") == "PONG"

    def test_hang_fault_times_out(self, server):
        server.inject_fault("hang", command="PING", delay=5.0)
        conn = connect(server, read_timeout=0.2)
        with pytest.raises(BrokerTimeout):
            conn.execute("PING")

    def test_per_call_timeout_is_restored(self, server):
        conn = connect(server, read_timeout=3.0)
        conn.execute("PING", timeout=0.5)
        assert conn._sock.gettimeout() == 3.0

    def test_protocol_garbage(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def feed_garbage():
            conn, _ = listener.accept()
            conn.recv(4096)
            conn.sendall(b"??not resp\r\n")
            conn.close()

        thread = threading.Thread(target=feed_garbage, daemon=True)
        thread.start()
        connection = RespConnection(*listener.getsockname())
        with pytest.raises(BrokerProtocolError, match="unknown RESP type"):
            connection.execute("PING")
        thread.join(timeout=2.0)
        listener.close()

    def test_timeouts_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            RespConnection("h", 1, connect_timeout=0)
