"""Tests for repro.experiments.fig4 — the headline reproduction."""

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.taxi import TaxiConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import (
    Fig4Result,
    Fig4Series,
    run_fig4_on_workload,
    run_fig4_synthetic,
    run_fig4_taxi,
)

FAST_CONFIG = ExperimentConfig(
    epsilon_grid=(0.5, 2.0, 8.0),
    n_trials=2,
)
FAST_SYNTH = SyntheticConfig(n_windows=250, n_history_windows=150)
FAST_TAXI = TaxiConfig(n_taxis=30, n_steps=120)


@pytest.fixture(scope="module")
def synthetic_panel():
    return run_fig4_synthetic(FAST_CONFIG, FAST_SYNTH, n_datasets=3)


@pytest.fixture(scope="module")
def taxi_panel():
    return run_fig4_taxi(FAST_CONFIG, FAST_TAXI)


class TestSyntheticPanel:
    def test_all_mechanisms_and_epsilons_present(self, synthetic_panel):
        assert set(synthetic_panel.series) == set(FAST_CONFIG.mechanisms)
        for series in synthetic_panel.series.values():
            assert series.epsilons == [0.5, 2.0, 8.0]

    def test_expected_shape_holds(self, synthetic_panel):
        assert synthetic_panel.check_expected_shape() == []

    def test_pattern_level_advantage_positive(self, synthetic_panel):
        for epsilon in (0.5, 2.0, 8.0):
            assert synthetic_panel.pattern_level_advantage(epsilon) > 0.1

    def test_adaptive_beats_uniform_clearly(self, synthetic_panel):
        # Section VI-B: the gap is clear on the synthetic data.
        uniform = synthetic_panel.series["uniform"]
        adaptive = synthetic_panel.series["adaptive"]
        assert adaptive.mre_at(2.0) < uniform.mre_at(2.0)

    def test_table_rows_complete(self, synthetic_panel):
        assert len(synthetic_panel.table) == len(FAST_CONFIG.mechanisms) * 3


class TestTaxiPanel:
    def test_expected_shape_holds(self, taxi_panel):
        assert taxi_panel.check_expected_shape() == []

    def test_uniform_adaptive_gap_small_on_taxi(self, taxi_panel):
        # Section VI-B: "the difference between the uniform and adaptive
        # approaches is evidently smaller" on Taxi.
        uniform = taxi_panel.series["uniform"]
        adaptive = taxi_panel.series["adaptive"]
        for epsilon in (0.5, 2.0, 8.0):
            gap = abs(uniform.mre_at(epsilon) - adaptive.mre_at(epsilon))
            assert gap < 0.1


class TestCrossPanelClaims:
    def test_advantage_larger_on_synthetic(self, synthetic_panel, taxi_panel):
        # Section VI-B: "our pattern-level PPMs perform significantly
        # better on synthetic datasets and relatively better on Taxi";
        # the uniform/adaptive gap expands on the synthetic data.
        synth_gap = synthetic_panel.series["uniform"].mre_at(
            2.0
        ) - synthetic_panel.series["adaptive"].mre_at(2.0)
        taxi_gap = taxi_panel.series["uniform"].mre_at(
            2.0
        ) - taxi_panel.series["adaptive"].mre_at(2.0)
        assert synth_gap > taxi_gap


class TestPlumbing:
    def test_run_on_custom_workload(self, tiny_workload):
        config = ExperimentConfig(
            epsilon_grid=(2.0,), mechanisms=("uniform",), n_trials=1
        )
        panel = run_fig4_on_workload(tiny_workload, config)
        assert isinstance(panel, Fig4Result)
        assert panel.dataset == tiny_workload.name

    def test_series_mre_at_unknown_epsilon(self):
        series = Fig4Series("uniform", [1.0], [0.5], [0.0])
        with pytest.raises(KeyError):
            series.mre_at(3.0)

    def test_invalid_dataset_count(self):
        with pytest.raises(ValueError):
            run_fig4_synthetic(FAST_CONFIG, FAST_SYNTH, n_datasets=0)
