"""Surface tests of the public API.

Guards the contract a downstream user relies on: everything in
``__all__`` resolves, carries a docstring, matches the committed
surface manifest (``tests/data/public_api.txt``), and the package
imports without side effects on global RNG state.
"""

import importlib

from pathlib import Path

import numpy as np
import pytest

import repro

SUBPACKAGES = [
    "repro.baselines",
    "repro.broker",
    "repro.cep",
    "repro.core",
    "repro.datasets",
    "repro.experiments",
    "repro.io",
    "repro.mechanisms",
    "repro.metrics",
    "repro.obs",
    "repro.runtime",
    "repro.service",
    "repro.streams",
    "repro.utils",
]

MANIFEST = Path(__file__).parent / "data" / "public_api.txt"


class TestAllResolvable:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), (
                f"{module_name}.__all__ lists missing {name}"
            )

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_is_sorted(self, module_name):
        module = importlib.import_module(module_name)
        assert list(module.__all__) == sorted(module.__all__), (
            f"{module_name}.__all__ is not sorted"
        )


class TestSurfaceManifest:
    """Surface changes must be deliberate: ``__all__`` is committed."""

    def test_all_matches_committed_manifest(self):
        expected = [
            line.strip()
            for line in MANIFEST.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        ]
        added = sorted(set(repro.__all__) - set(expected))
        removed = sorted(set(expected) - set(repro.__all__))
        assert list(repro.__all__) == expected, (
            "repro.__all__ drifted from tests/data/public_api.txt "
            f"(added: {added}, removed: {removed}); if the surface "
            "change is intentional, update the manifest in the same "
            "commit"
        )

    def test_session_and_service_exports_present(self):
        # The PR-2/PR-3 executors and sessions, and the PR-4 service
        # API, are public, tested surface.
        for name in (
            "AsyncSession",
            "ShardedExecutor",
            "ServiceSpec",
            "StreamGateway",
            "StreamService",
            "register_executor",
            "register_mechanism",
            "register_sink",
            "register_source",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_objects_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert undocumented == []


class TestVersion:
    def test_version_matches_pyproject(self):
        """``__version__`` is single-sourced: it must always equal the
        pyproject version, whether resolved from installed metadata or
        from the source tree fallback."""
        import tomllib

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        data = tomllib.loads(pyproject.read_text())
        assert repro.__version__ == data["project"]["version"]

    def test_version_is_resolved(self):
        assert repro.__version__ != "0+unknown"
        assert repro.__version__.strip()


class TestNoGlobalRngSideEffects:
    def test_library_calls_do_not_touch_global_numpy_rng(self):
        np.random.seed(1234)
        before = np.random.random()
        np.random.seed(1234)
        # Exercise a representative slice of the library.
        from repro import (
            EventAlphabet,
            IndicatorStream,
            Pattern,
            UniformPatternPPM,
        )

        alphabet = EventAlphabet.numbered(4)
        stream = IndicatorStream(
            alphabet, np.zeros((10, 4), dtype=bool)
        )
        ppm = UniformPatternPPM(Pattern.of_types("p", "e1", "e2"), 2.0)
        ppm.perturb(stream, rng=0)
        after = np.random.random()
        assert before == after
