"""Tests for repro.cep.patterns — the pattern expression algebra."""

import pytest

from repro.cep.patterns import (
    AND,
    Atom,
    KLEENE,
    NEG,
    OR,
    Pattern,
    SEQ,
    as_expr,
    walk,
)
from repro.cep.predicates import EventPredicate


class TestExpressionConstruction:
    def test_atom_from_string(self):
        atom = Atom("a")
        assert atom.predicate.event_type == "a"

    def test_atom_from_predicate(self):
        atom = Atom(EventPredicate.of_type("a"))
        assert atom.predicate.event_type == "a"

    def test_atom_rejects_other(self):
        with pytest.raises(TypeError):
            Atom(42)  # type: ignore[arg-type]

    def test_seq_accepts_strings(self):
        expr = SEQ("a", "b")
        assert len(expr.children()) == 2

    def test_seq_allows_single_child(self):
        SEQ("a")

    def test_and_or_require_two(self):
        with pytest.raises(ValueError):
            AND("a")
        with pytest.raises(ValueError):
            OR("a")

    def test_kleene_bounds(self):
        k = KLEENE("a", 2, 4)
        assert k.at_least == 2 and k.at_most == 4

    def test_kleene_invalid_bounds(self):
        with pytest.raises(ValueError):
            KLEENE("a", 0)
        with pytest.raises(ValueError):
            KLEENE("a", 3, 2)

    def test_neg_requires_atom(self):
        NEG("a")
        with pytest.raises(TypeError):
            NEG(SEQ("a", "b"))

    def test_as_expr_passthrough(self):
        expr = SEQ("a", "b")
        assert as_expr(expr) is expr

    def test_walk_preorder(self):
        expr = SEQ("a", OR("b", "c"))
        kinds = [type(node).__name__ for node in walk(expr)]
        assert kinds == ["Seq", "Atom", "Disj", "Atom", "Atom"]

    def test_event_types_collects_type_predicates(self):
        expr = SEQ("a", OR("b", "c"), NEG("z"))
        assert expr.event_types() == ["a", "b", "c", "z"]

    def test_render_round_trips_structure(self):
        text = SEQ("a", NEG("z"), KLEENE("b", 2)).render()
        assert "SEQ" in text and "NEG" in text and "KLEENE" in text


class TestPattern:
    def test_of_types_builds_sequence(self):
        pattern = Pattern.of_types("p", "a", "b", "c")
        assert pattern.elements == ("a", "b", "c")
        assert pattern.length == 3
        assert pattern.is_sequence_of_types

    def test_of_types_single_element(self):
        pattern = Pattern.of_types("p", "a")
        assert pattern.elements == ("a",)
        assert pattern.length == 1

    def test_of_types_requires_elements(self):
        with pytest.raises(ValueError):
            Pattern.of_types("p")

    def test_elements_inferred_from_seq_expr(self):
        pattern = Pattern("p", SEQ("a", "b"))
        assert pattern.elements == ("a", "b")

    def test_elements_none_for_complex_expr(self):
        pattern = Pattern("p", OR("a", "b"))
        assert pattern.elements is None
        assert not pattern.is_sequence_of_types

    def test_length_undefined_without_elements(self):
        pattern = Pattern("p", OR("a", "b"))
        with pytest.raises(ValueError):
            pattern.length

    def test_explicit_elements_override(self):
        pattern = Pattern("p", OR("a", "b"), elements=["a", "b"])
        assert pattern.elements == ("a", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Pattern("", SEQ("a", "b"))

    def test_element_set(self):
        pattern = Pattern.of_types("p", "a", "b", "a")
        assert pattern.element_set() == frozenset({"a", "b"})

    def test_composed_merges_elements(self):
        # Section III-A: higher-level patterns collect all events of
        # their sub-patterns into one sequence.
        low1 = Pattern.of_types("l1", "a", "b")
        low2 = Pattern.of_types("l2", "c")
        high = Pattern.composed("h", low1, low2)
        assert high.elements == ("a", "b", "c")

    def test_composed_requires_element_lists(self):
        with pytest.raises(ValueError):
            Pattern.composed("h", Pattern("p", OR("a", "b")))

    def test_overlaps(self):
        first = Pattern.of_types("f", "a", "b")
        second = Pattern.of_types("s", "b", "c")
        third = Pattern.of_types("t", "x", "y")
        assert first.overlaps(second)
        assert not first.overlaps(third)

    def test_overlaps_requires_elements(self):
        with pytest.raises(ValueError):
            Pattern("p", OR("a", "b")).overlaps(Pattern.of_types("q", "a"))

    def test_equality_and_hash(self):
        assert Pattern.of_types("p", "a") == Pattern.of_types("p", "a")
        assert Pattern.of_types("p", "a") != Pattern.of_types("p", "b")
        assert hash(Pattern.of_types("p", "a")) == hash(
            Pattern.of_types("p", "a")
        )
