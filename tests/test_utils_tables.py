"""Tests for repro.utils.tables — result tables."""

import pytest

from repro.utils.tables import ResultTable


@pytest.fixture
def table():
    t = ResultTable(["mechanism", "epsilon", "mre"], title="demo")
    t.add_row(mechanism="uniform", epsilon=1.0, mre=0.3)
    t.add_row(mechanism="bd", epsilon=1.0, mre=0.8)
    t.add_row(mechanism="uniform", epsilon=2.0, mre=0.2)
    return t


class TestConstruction:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ResultTable([])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            ResultTable(["a", "a"])

    def test_len_counts_rows(self, table):
        assert len(table) == 3


class TestRows:
    def test_unknown_column_rejected(self, table):
        with pytest.raises(KeyError):
            table.add_row(mechanism="x", epsilon=1.0, unknown=5)

    def test_missing_values_become_none(self):
        t = ResultTable(["a", "b"])
        t.add_row(a=1)
        assert t.rows[0]["b"] is None

    def test_rows_are_copies(self, table):
        table.rows[0]["mre"] = 999
        assert table.rows[0]["mre"] == 0.3

    def test_add_rows_bulk(self):
        t = ResultTable(["a"])
        t.add_rows([{"a": 1}, {"a": 2}])
        assert t.column("a") == [1, 2]


class TestQueries:
    def test_column(self, table):
        assert table.column("mechanism") == ["uniform", "bd", "uniform"]

    def test_column_unknown(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_sort_by(self, table):
        by_mre = table.sort_by("mre")
        assert by_mre.column("mre") == [0.2, 0.3, 0.8]

    def test_sort_by_does_not_mutate(self, table):
        table.sort_by("mre")
        assert table.column("mre") == [0.3, 0.8, 0.2]

    def test_filter(self, table):
        uniform = table.filter(mechanism="uniform")
        assert len(uniform) == 2
        assert all(row["mechanism"] == "uniform" for row in uniform)

    def test_filter_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.filter(nope=1)


class TestRendering:
    def test_render_includes_title_and_headers(self, table):
        text = table.render()
        assert "demo" in text
        assert "mechanism" in text
        assert "uniform" in text

    def test_render_formats_floats(self, table):
        assert "0.3000" in table.render()

    def test_render_custom_float_format(self, table):
        assert "0.30" in table.render(float_format="{:.2f}")

    def test_render_empty_table(self):
        t = ResultTable(["a", "b"])
        text = t.render()
        assert "a" in text and "b" in text


class TestCsv:
    def test_to_csv_round_trips_header(self, table):
        lines = table.to_csv().strip().splitlines()
        assert lines[0] == "mechanism,epsilon,mre"
        assert len(lines) == 4

    def test_write_csv(self, table, tmp_path):
        path = tmp_path / "out.csv"
        table.write_csv(str(path))
        assert path.read_text().startswith("mechanism,epsilon,mre")
