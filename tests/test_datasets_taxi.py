"""Tests for repro.datasets.taxi — the T-Drive-substitute simulator."""

import numpy as np
import pytest

from repro.datasets.taxi import (
    PRIVATE_PATTERNS,
    TARGET_PATTERNS,
    TAXI_ALPHABET,
    GridCity,
    TaxiConfig,
    build_taxi_workload,
    fleet_data_stream,
    simulate_fleet,
    simulate_trace,
    taxi_event_extractors,
    traces_to_indicator_stream,
)
from repro.streams.extraction import extract_events


@pytest.fixture
def config():
    return TaxiConfig(n_taxis=10, n_steps=60)


@pytest.fixture
def city(config):
    return GridCity.generate(config, rng=1)


class TestTaxiConfig:
    def test_paper_ratios_in_defaults(self):
        config = TaxiConfig()
        assert config.private_fraction == 0.2
        assert config.extra_target_fraction == 0.4
        assert config.private_target_overlap == 0.5
        assert config.sampling_interval == 177.0

    def test_fractions_bounded(self):
        with pytest.raises(ValueError):
            TaxiConfig(private_fraction=0.7, extra_target_fraction=0.4)

    def test_window_steps_bounded(self):
        with pytest.raises(ValueError):
            TaxiConfig(n_steps=4, window_steps=8)


class TestGridCity:
    def test_region_fractions_match_paper(self, city):
        fractions = city.region_fractions()
        assert fractions["private"] == pytest.approx(0.2, abs=0.01)
        # 40% disjoint target + 50% of the 20% private = 50% total.
        assert fractions["target"] == pytest.approx(0.5, abs=0.01)
        assert fractions["overlap"] == pytest.approx(0.1, abs=0.01)

    def test_category_partition(self, city):
        counts = {"po": 0, "ov": 0, "to": 0, "rd": 0}
        for x in range(city.width):
            for y in range(city.height):
                counts[city.category(x, y)] += 1
        assert sum(counts.values()) == city.n_cells
        assert counts["ov"] > 0  # overlap exists (the crux of the eval)

    def test_category_consistency(self, city):
        for x in range(0, city.width, 5):
            for y in range(0, city.height, 5):
                category = city.category(x, y)
                if category == "ov":
                    assert city.is_private(x, y) and city.is_target(x, y)
                elif category == "po":
                    assert city.is_private(x, y) and not city.is_target(x, y)

    def test_out_of_grid_rejected(self, city):
        with pytest.raises(ValueError):
            city.cell_index(city.width, 0)

    def test_zero_overlap_config(self, config):
        no_overlap = TaxiConfig(
            n_taxis=5, n_steps=20, private_target_overlap=0.0
        )
        city = GridCity.generate(no_overlap, rng=2)
        assert city.region_fractions()["overlap"] == 0.0

    def test_deterministic_generation(self, config):
        a = GridCity.generate(config, rng=5)
        b = GridCity.generate(config, rng=5)
        assert np.array_equal(a.private_mask, b.private_mask)
        assert np.array_equal(a.target_mask, b.target_mask)


class TestSimulation:
    def test_trace_shape_and_bounds(self, config):
        trace = simulate_trace(config, rng=0)
        assert trace.shape == (60, 2)
        assert trace[:, 0].min() >= 0 and trace[:, 0].max() < config.grid_width
        assert trace[:, 1].min() >= 0 and trace[:, 1].max() < config.grid_height

    def test_moves_at_most_one_cell_per_step(self, config):
        trace = simulate_trace(config, rng=0)
        steps = np.abs(np.diff(trace, axis=0)).sum(axis=1)
        assert steps.max() <= 1

    def test_taxi_actually_moves(self, config):
        trace = simulate_trace(config, rng=0)
        assert len(np.unique(trace, axis=0)) > 5

    def test_fleet_has_distinct_traces(self, config):
        traces = simulate_fleet(config, rng=0)
        assert len(traces) == config.n_taxis
        assert not np.array_equal(traces[0], traces[1])

    def test_fleet_deterministic(self, config):
        a = simulate_fleet(config, rng=3)
        b = simulate_fleet(config, rng=3)
        assert all(np.array_equal(a[i], b[i]) for i in a)


class TestIndicatorReduction:
    def test_stream_shape(self, config, city):
        traces = simulate_fleet(config, rng=0)
        stream = traces_to_indicator_stream(config, city, traces)
        windows_per_taxi = config.n_steps // config.window_steps
        assert stream.n_windows == config.n_taxis * windows_per_taxi
        assert stream.alphabet == TAXI_ALPHABET

    def test_in_implied_by_enter(self, config, city):
        # Entering a region inside the window implies being inside it.
        traces = simulate_fleet(config, rng=0)
        stream = traces_to_indicator_stream(config, city, traces)
        for prefix in ("po", "ov", "to"):
            enter = stream.column(f"{prefix}_enter")
            inside = stream.column(f"{prefix}_in")
            assert not (enter & ~inside).any()

    def test_full_pipeline_agrees_with_fast_path_on_in_events(
        self, config, city
    ):
        # The DataStream -> extractor -> events path must see the same
        # *_in occupancy the vectorized reduction computes.
        traces = simulate_fleet(config, rng=0)
        data_stream = fleet_data_stream(config, traces)
        events = extract_events(data_stream, taxi_event_extractors(city))
        fast = traces_to_indicator_stream(config, city, traces)
        for category in ("po", "ov", "to"):
            visited_event_taxis = {
                (e.attribute("taxi_id"))
                for e in events
                if e.event_type == f"{category}_in"
            }
            column = fast.column(f"{category}_in")
            windows_per_taxi = config.n_steps // config.window_steps
            visited_fast_taxis = {
                taxi_id
                for taxi_id in range(config.n_taxis)
                if column[
                    taxi_id * windows_per_taxi : (taxi_id + 1) * windows_per_taxi
                ].any()
            }
            assert visited_event_taxis == visited_fast_taxis


class TestWorkloadAssembly:
    def test_build_taxi_workload(self, config):
        workload = build_taxi_workload(config, rng=4)
        assert workload.name == "taxi"
        assert workload.private_patterns == list(PRIVATE_PATTERNS)
        assert workload.target_patterns == list(TARGET_PATTERNS)

    def test_private_and_target_overlap(self, config):
        workload = build_taxi_workload(config, rng=4)
        summary = workload.overlap_summary()
        assert summary["any_overlap"]
        assert summary["shared_by_target"]["target_overlap_visit"] == [
            "ov_enter",
            "ov_in",
        ]

    def test_history_fraction_split(self, config):
        workload = build_taxi_workload(config, rng=4)
        total = workload.stream.n_windows + workload.history.n_windows
        expected_history = int(round(total * config.history_fraction))
        assert workload.history.n_windows == expected_history

    def test_deterministic(self, config):
        a = build_taxi_workload(config, rng=6)
        b = build_taxi_workload(config, rng=6)
        assert a.stream == b.stream
