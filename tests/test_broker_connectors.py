"""Integration tests for the ``broker:`` connectors.

The acceptance bar for the broker subsystem: a broker-fed tenant is
bit-identical to a memory-fed run — through checkpoint/kill/resume
cycles *and* injected connection faults — because acks happen at
checkpoint boundaries and every recovery path re-delivers the un-acked
suffix from the consumer group's pending list.  Also covers the
pointed unbound-feed errors shared by ``queue:`` and ``broker:``, the
dead-letter policy for poison entries, the sink round trip, and the
soak harness's broker mode.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.broker import BrokerSink, BrokerSource, FakeRedisServer
from repro.broker.client import BrokerClient, RetryPolicy
from repro.broker.connectors import publish_indicator_stream
from repro.broker.resp import BrokerError
from repro.io import resolve_sink, resolve_source, write_indicator_csv
from repro.io.sources import QueueSource
from repro.obs.soak import run_soak
from repro.service import ServiceSpec, StreamGateway, StreamService
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)


def make_stream(seed=3, n=100):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((n, 5)) < 0.4)


def make_spec(source, seed=7, **overrides):
    kwargs = dict(
        alphabet=ALPHABET,
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="bd",
        mechanism_options={"epsilon": 1.0, "w": 10},
        source=source,
        seed=seed,
    )
    kwargs.update(overrides)
    return ServiceSpec(**kwargs)


def broker_spec(url, stream="w", seed=7, *, batch=16, **overrides):
    return make_spec(
        f"broker:url={url},stream={stream},group=g,consumer=c0,"
        f"block_ms=100,batch={batch}",
        seed=seed,
        **overrides,
    )


def memory_fed(stream, seed=7):
    """The reference answers: the same spec fed from memory."""
    return asyncio.run(StreamService(make_spec(None, seed)).pump(stream))


@pytest.fixture
def server():
    with FakeRedisServer() as fake:
        yield fake


class TestSpecResolution:
    def test_source_spec_builds_configured_source(self):
        source = resolve_source(
            "broker:url=redis://h:7777,stream=s,group=g,consumer=c9,"
            "block_ms=50,batch=8"
        )
        assert isinstance(source, BrokerSource)
        assert source.url == "redis://h:7777"
        assert source.stream == "s"
        assert source.group == "g"
        assert source.consumer == "c9"
        assert source.block_ms == 50
        assert source.batch == 8
        assert source.live_feed_bound

    def test_bare_broker_declares_intent_only(self):
        source = resolve_source("broker")
        assert source.url is None
        assert not source.live_feed_bound

    def test_sink_spec_builds_configured_sink(self):
        sink = resolve_sink("broker:url=redis://h:7777,stream=out,eos=1")
        assert isinstance(sink, BrokerSink)
        assert sink.url == "redis://h:7777"
        assert sink.stream == "out"
        assert sink.eos is True

    def test_spec_json_round_trip(self, server):
        spec = broker_spec(server.url)
        assert ServiceSpec.from_json(spec.to_json()) == spec


class TestSourceContract:
    def test_synchronous_run_rejected(self):
        with pytest.raises(TypeError, match="asynchronous"):
            StreamService(
                make_spec("broker:url=redis://h:1,stream=s")
            ).run()

    def test_skip_rejected_for_live_feed(self):
        source = BrokerSource("redis://h:1")
        assert source.skip(0) is source
        with pytest.raises(RuntimeError, match="cannot skip"):
            source.skip(3)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="block_ms"):
            BrokerSource("redis://h:1", block_ms=0)
        with pytest.raises(ValueError, match="batch"):
            BrokerSource("redis://h:1", batch=0)


class TestEndToEnd:
    def test_broker_fed_matches_memory_fed(self, server):
        stream = make_stream()
        published = publish_indicator_stream(server.url, "w", stream)
        assert published == stream.n_windows
        answers = asyncio.run(
            StreamService(broker_spec(server.url)).pump()
        )
        assert answers == memory_fed(stream)

    def test_checkpoint_acks_everything_emitted(self, server):
        stream = make_stream(n=40)
        publish_indicator_stream(server.url, "w", stream)
        service = StreamService(broker_spec(server.url))
        asyncio.run(service.pump())
        # Pre-checkpoint: every window plus the eos marker is pending.
        assert server.pending_count("w", "g") == 41
        service.checkpoint()
        # Every *window* is acked; the eos marker stays pending on
        # purpose, so a resumed consumer re-observes end-of-stream.
        assert server.pending_count("w", "g") == 1

    def test_acceptance_kill_resume_with_drop_fault(self, server):
        """The subsystem's acceptance bar: checkpoint/kill/resume plus
        a dropped connection lose nothing and double-count nothing."""
        stream = make_stream()
        baseline = memory_fed(stream)
        publish_indicator_stream(server.url, "w", stream)

        gateway = StreamGateway()
        gateway.add_tenant("t", broker_spec(server.url))
        asyncio.run(gateway.serve(max_windows=30))
        checkpoint = gateway.checkpoint()
        assert server.pending_count("w", "g") > 0  # the stranded tail

        # The "kill": discard the gateway; the broker spec is fully
        # declarative, so resume rebinds the feed from the url alone.
        # A dropped connection greets the resumed consumer.
        server.inject_fault("drop", command="XREADGROUP", count=1)
        resumed = StreamGateway.resume(checkpoint)
        asyncio.run(resumed.serve())

        combined = {
            name: gateway.results()["t"][name]
            + resumed.results()["t"][name]
            for name in baseline
        }
        assert combined == baseline
        assert server.faults_fired == [("drop", "XREADGROUP")]
        # The batch tail fetched past window 30 was stranded in the
        # PEL by the kill; the resume drained it back.
        redelivered = resumed.registry.get(
            "repro_broker_redelivered_total"
        )
        assert redelivered is not None and redelivered.value >= 1
        resumed.checkpoint()
        # Only the never-acked eos marker remains pending.
        assert server.pending_count("w", "g") == 1

    def test_reset_faults_mid_run_bit_identical(self, server):
        stream = make_stream(seed=5)
        baseline = memory_fed(stream)
        publish_indicator_stream(server.url, "w", stream)
        gateway = StreamGateway()
        gateway.add_tenant("t", broker_spec(server.url, batch=8))
        asyncio.run(gateway.serve(max_windows=20))
        server.inject_fault("reset", command="XREADGROUP", count=1)
        server.inject_fault("drop", command="XREADGROUP", count=1)
        asyncio.run(gateway.serve())
        assert gateway.results()["t"] == baseline
        assert len(server.faults_fired) == 2

    def test_double_kill_resume_cycle(self, server):
        stream = make_stream(seed=9, n=60)
        baseline = memory_fed(stream, seed=11)
        publish_indicator_stream(server.url, "w", stream)
        generations = []
        gateway = StreamGateway()
        gateway.add_tenant("t", broker_spec(server.url, "w", seed=11))
        for _ in range(2):
            asyncio.run(gateway.serve(max_windows=20))
            generations.append(gateway.results()["t"])
            gateway = StreamGateway.resume(gateway.checkpoint())
        asyncio.run(gateway.serve())
        generations.append(gateway.results()["t"])
        combined = {
            name: sum((g[name] for g in generations), [])
            for name in baseline
        }
        assert combined == baseline

    def test_resume_after_full_consumption_terminates(self, server):
        """A consumer resumed past the end of a finite feed must
        re-observe eos from the pending list and finish — not block
        forever waiting for entries that will never come."""
        stream = make_stream(n=10)
        publish_indicator_stream(server.url, "w", stream)
        gateway = StreamGateway()
        gateway.add_tenant("t", broker_spec(server.url))
        asyncio.run(gateway.serve())
        resumed = StreamGateway.resume(gateway.checkpoint())
        asyncio.run(resumed.serve(max_windows=32))
        assert resumed.results()["t"]["q"] == []

    def test_poison_entry_dead_lettered(self, server):
        stream = make_stream(n=6)
        matrix = stream.matrix_view()
        client = BrokerClient(server.url)
        for index in range(3):
            client.xadd("w", {"row": "".join(
                "1" if v else "0" for v in matrix[index]
            )})
        client.xadd("w", {"row": "not-bits"})  # poison
        for index in range(3, 6):
            client.xadd("w", {"row": "".join(
                "1" if v else "0" for v in matrix[index]
            )})
        client.xadd("w", {"eos": "1"})
        answers = asyncio.run(
            StreamService(broker_spec(server.url)).pump()
        )
        # All six real windows flowed; the poison entry went to the
        # dead stream with its provenance instead of wedging the group.
        assert answers == memory_fed(stream)
        dead = client.xrange("w:dead")
        assert len(dead) == 1
        assert dead[0][1]["source_id"] == "4-0"
        assert dead[0][1]["row"] == "not-bits"
        assert "row" in dead[0][1]["reason"]

    def test_sink_publishes_windows_and_eos(self, server):
        stream = make_stream(n=12)
        spec = make_spec(
            None, sink=f"broker:url={server.url},stream=out,eos=1"
        )
        asyncio.run(StreamService(spec).pump(stream))
        client = BrokerClient(server.url)
        entries = client.xrange("out")
        assert len(entries) == 13
        assert entries[-1][1] == {"eos": "1"}
        for index, (_, fields) in enumerate(entries[:-1]):
            assert fields["window"] == str(index)
            assert set(fields["row"]) <= {"0", "1"}
            assert len(fields["row"]) == len(ALPHABET)
            answers = json.loads(fields["answers"])
            assert set(answers) == {"q"}

    def test_sanitized_stream_can_be_served_again(self, server):
        """A BrokerSink's output is itself a valid BrokerSource feed."""
        stream = make_stream(n=10)
        spec = make_spec(
            None, sink=f"broker:url={server.url},stream=out,eos=1"
        )
        asyncio.run(StreamService(spec).pump(stream))
        downstream = asyncio.run(
            StreamService(
                broker_spec(server.url, "out", seed=23)
            ).pump()
        )
        assert len(downstream["q"]) == 10


class TestChunkedTransport:
    """Chunked entries (``rows_per_entry > 1``): record batching.

    One stream entry carries many windows, so the ack ledger tracks
    rows while the broker tracks entries: a checkpoint may only ack
    entries whose *last* row it covers, and a resumed offset must
    skip the already-released prefix of a redelivered chunk
    row-exactly.
    """

    def test_chunked_feed_matches_memory_fed(self, server):
        # 100 rows, 7 per entry: the last chunk is partial.
        stream = make_stream()
        publish_indicator_stream(
            server.url, "w", stream, rows_per_entry=7
        )
        answers = asyncio.run(
            StreamService(broker_spec(server.url)).pump()
        )
        assert answers == memory_fed(stream)

    def test_kill_resume_mid_chunk_is_exact(self, server):
        stream = make_stream(seed=13)
        baseline = memory_fed(stream)
        publish_indicator_stream(
            server.url, "w", stream, rows_per_entry=7
        )
        gateway = StreamGateway()
        gateway.add_tenant("t", broker_spec(server.url))
        # 30 is not a multiple of 7: the kill lands mid-chunk, so the
        # resumed consumer must replay only the unreleased tail of
        # that chunk (rows 28-29 stay, rows released before the kill
        # must not re-release).
        asyncio.run(gateway.serve(max_windows=30))
        resumed = StreamGateway.resume(gateway.checkpoint())
        asyncio.run(resumed.serve())
        combined = {
            name: gateway.results()["t"][name]
            + resumed.results()["t"][name]
            for name in baseline
        }
        assert combined == baseline
        redelivered = resumed.registry.get(
            "repro_broker_redelivered_total"
        )
        assert redelivered is not None and redelivered.value >= 1

    def test_checkpoint_acks_only_completed_chunks(self, server):
        # 100 rows, 7 per entry = 15 chunk entries + eos, all
        # delivered by one batch=16 fetch.
        stream = make_stream()
        publish_indicator_stream(
            server.url, "w", stream, rows_per_entry=7
        )
        gateway = StreamGateway()
        gateway.add_tenant("t", broker_spec(server.url))
        asyncio.run(gateway.serve(max_windows=10))
        assert server.pending_count("w", "g") == 16
        gateway.checkpoint()
        # Windows 0-9 were released, but only chunk 0 (rows 0-6) is
        # complete; chunk 1's unfinished tail keeps its whole entry
        # pending so a later drain can replay rows 7-9 row-exactly.
        assert server.pending_count("w", "g") == 15

    def test_undecodable_chunk_raises_instead_of_dead_letter(
        self, server
    ):
        # Dead-lettering a chunk would shift every later window
        # against its base index, silently desyncing the offset; the
        # source must wedge loudly instead.
        client = BrokerClient(server.url)
        client.xadd("w", {"rows": "01x01", "base": "0"})
        client.xadd("w", {"eos": "1"})
        with pytest.raises(BrokerError, match="shift"):
            asyncio.run(
                StreamService(broker_spec(server.url)).pump()
            )
        assert client.xrange("w:dead") == []
        client.close()

    def test_publisher_rejects_nonpositive_rows_per_entry(
        self, server
    ):
        with pytest.raises(ValueError, match="rows_per_entry"):
            publish_indicator_stream(
                server.url, "w", make_stream(n=5), rows_per_entry=0
            )

    def test_resumed_offset_skips_fully_covered_chunk(self, server):
        # Direct-drive the source exactly as StreamService.resume
        # drives a live feed: bind the alphabet, set the offset.  The
        # first chunk (rows 0-6) sits entirely behind the offset: it
        # must emit nothing, never be acked (eos-like: stays pending),
        # and not stall the chunks after it.
        stream = make_stream(n=21)
        matrix = stream.matrix_view()
        publish_indicator_stream(
            server.url, "w", stream, rows_per_entry=7
        )
        source = BrokerSource(
            server.url,
            stream="w",
            group="g",
            consumer="c0",
            block_ms=100,
            batch=4,
        ).bind(ALPHABET)
        source._offset = 7

        async def collect():
            emitted = []
            async for row in source.arows():
                emitted.append(row)
            return emitted

        emitted = asyncio.run(collect())
        assert len(emitted) == 14
        assert all(
            np.array_equal(row, matrix[7 + index])
            for index, row in enumerate(emitted)
        )
        source.checkpoint_mark()
        # Chunks 1 and 2 acked; the skipped chunk 0 and the eos
        # marker stay pending by design.
        assert server.pending_count("w", "g") == 2
        source.close()


class TestUnboundFeedErrors:
    def test_serving_unbound_broker_tenant_names_tenant_and_spec(self):
        gateway = StreamGateway()
        gateway.add_tenant("edge", make_spec("broker"))
        with pytest.raises(RuntimeError, match="no feed bound") as err:
            asyncio.run(gateway.serve(max_windows=1))
        assert "'edge'" in str(err.value)
        assert "'broker'" in str(err.value)

    def test_serving_unbound_queue_tenant_names_tenant_and_spec(self):
        gateway = StreamGateway()
        gateway.add_tenant("live", make_spec("queue"))
        with pytest.raises(RuntimeError, match="no feed bound") as err:
            asyncio.run(gateway.serve(max_windows=1))
        assert "'live'" in str(err.value)
        assert "'queue'" in str(err.value)

    def test_resuming_queue_tenant_without_feed_is_pointed(self):
        stream = make_stream(n=8)

        async def drive():
            queue = asyncio.Queue()
            gateway = StreamGateway()
            gateway.add_tenant(
                "live", make_spec("queue"), source=QueueSource(queue)
            )
            for index in range(4):
                await queue.put(stream.window_types(index))
            await gateway.serve(max_windows=4)
            return gateway.checkpoint()

        checkpoint = asyncio.run(drive())
        with pytest.raises(
            RuntimeError, match="cannot resume tenant 'live'"
        ) as err:
            StreamGateway.resume(checkpoint)
        assert "sources={'live': ...}" in str(err.value)

    def test_resuming_broker_tenant_rebinds_from_spec(self, server):
        # The counterpart contract: a broker feed *is* named by its
        # spec, so resume needs no sources= override.
        stream = make_stream(n=20)
        publish_indicator_stream(server.url, "w", stream)
        gateway = StreamGateway()
        gateway.add_tenant("t", broker_spec(server.url))
        asyncio.run(gateway.serve(max_windows=5))
        resumed = StreamGateway.resume(gateway.checkpoint())
        asyncio.run(resumed.serve())
        assert (
            len(gateway.results()["t"]["q"])
            + len(resumed.results()["t"]["q"])
            == 20
        )


class TestSoakBrokerMode:
    def test_soak_over_broker_sources_is_exact(self, server, tmp_path):
        path = str(tmp_path / "replay.csv")
        write_indicator_csv(make_stream(seed=2, n=120), path)
        faults = []

        def arm_fault(slice_number):
            if slice_number == 1:
                server.inject_fault("drop", command="XREADGROUP", count=2)
                faults.append(slice_number)

        report = run_soak(
            path,
            tenants=2,
            duration=30.0,
            slice_windows=32,
            kill_every=2,
            seed=5,
            broker_url=server.url,
            fault_hook=arm_fault,
        )
        assert report.broker
        # Zero lost, zero double-counted: every window of every tenant
        # exactly once, despite kills and dropped connections.
        assert report.windows_total == 2 * 120
        assert report.delivered_entries > 0
        assert faults == [1]
        assert len(server.faults_fired) == 2

    def test_file_soak_reports_no_broker_section(self, tmp_path):
        path = str(tmp_path / "replay.csv")
        write_indicator_csv(make_stream(seed=2, n=40), path)
        report = run_soak(
            path, tenants=1, duration=5.0, rate=0.0, kill_every=0
        )
        assert not report.broker
        assert "broker:" not in report.summary()


class TestBrokerRetryWiring:
    def test_source_retry_policy_rides_through(self, server):
        stream = make_stream(n=10)
        publish_indicator_stream(server.url, "w", stream)
        source = BrokerSource(
            server.url,
            stream="w",
            group="g",
            consumer="c0",
            retry=RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0),
        )
        server.inject_fault("reset", command="XGROUP")
        answers = asyncio.run(
            StreamService(make_spec(None)).pump(source)
        )
        assert answers == memory_fed(stream)
        source.close()
