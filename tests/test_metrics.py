"""Tests for repro.metrics — Eq. (1)-(4) and aggregation."""

import numpy as np
import pytest

from repro.metrics.aggregate import summarize
from repro.metrics.confusion import ConfusionCounts
from repro.metrics.mre import mean_relative_error
from repro.metrics.quality import DataQuality, quality_score


class TestConfusionCounts:
    def test_from_vectors(self):
        truth = np.array([1, 1, 0, 0], dtype=bool)
        predicted = np.array([1, 0, 1, 0], dtype=bool)
        counts = ConfusionCounts.from_vectors(truth, predicted)
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (1, 1, 1, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConfusionCounts.from_vectors([True], [True, False])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ConfusionCounts(tp=-1)

    def test_precision_recall_eq1_eq2(self):
        counts = ConfusionCounts(tp=6, fp=2, fn=4, tn=8)
        assert counts.precision == pytest.approx(6 / 8)
        assert counts.recall == pytest.approx(6 / 10)

    def test_empty_denominator_conventions(self):
        silent = ConfusionCounts(tp=0, fp=0, fn=3, tn=3)
        assert silent.precision == 1.0  # never fired: no false claims
        no_positives = ConfusionCounts(tp=0, fp=2, fn=0, tn=3)
        assert no_positives.recall == 1.0  # nothing to miss

    def test_addition(self):
        total = ConfusionCounts(tp=1, fp=2) + ConfusionCounts(tp=3, tn=4)
        assert total.tp == 4 and total.fp == 2 and total.tn == 4

    def test_fractional_counts_supported(self):
        # The analytic quality model uses expected (fractional) counts.
        counts = ConfusionCounts(tp=0.5, fp=0.5, fn=0.5, tn=0.5)
        assert counts.precision == pytest.approx(0.5)

    def test_derived_totals(self):
        counts = ConfusionCounts(tp=1, fp=2, fn=3, tn=4)
        assert counts.total == 10
        assert counts.positives == 4
        assert counts.detections == 3

    def test_accuracy(self):
        counts = ConfusionCounts(tp=1, fp=1, fn=1, tn=1)
        assert counts.accuracy == pytest.approx(0.5)
        assert ConfusionCounts().accuracy == 1.0


class TestQuality:
    def test_eq3_formula(self):
        assert quality_score(0.8, 0.4, alpha=0.5) == pytest.approx(0.6)
        assert quality_score(0.8, 0.4, alpha=1.0) == pytest.approx(0.8)
        assert quality_score(0.8, 0.4, alpha=0.0) == pytest.approx(0.4)

    def test_out_of_range_rejected(self):
        with pytest.raises(Exception):
            quality_score(1.5, 0.5)
        with pytest.raises(Exception):
            quality_score(0.5, 0.5, alpha=-0.1)

    def test_from_confusion(self):
        counts = ConfusionCounts(tp=5, fp=5, fn=5, tn=5)
        quality = DataQuality.from_confusion(counts, alpha=0.5)
        assert quality.precision == pytest.approx(0.5)
        assert quality.q == pytest.approx(0.5)

    def test_with_alpha_reweights(self):
        quality = DataQuality(precision=1.0, recall=0.0, alpha=0.5)
        assert quality.with_alpha(1.0).q == pytest.approx(1.0)
        assert quality.with_alpha(0.0).q == pytest.approx(0.0)

    def test_invalid_fields_rejected(self):
        with pytest.raises(Exception):
            DataQuality(precision=2.0, recall=0.5)


class TestMre:
    def test_eq4_formula(self):
        assert mean_relative_error(0.8, 0.6) == pytest.approx(0.25)

    def test_no_loss_is_zero(self):
        assert mean_relative_error(0.7, 0.7) == 0.0

    def test_total_loss_is_one(self):
        assert mean_relative_error(0.5, 0.0) == 1.0

    def test_negative_when_ppm_improves(self):
        assert mean_relative_error(0.5, 0.6) < 0.0

    def test_clip_floors_at_zero(self):
        assert mean_relative_error(0.5, 0.6, clip=True) == 0.0

    def test_zero_ordinary_quality_rejected(self):
        with pytest.raises(ValueError):
            mean_relative_error(0.0, 0.5)


class TestSummarize:
    def test_mean_and_std(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.n == 3

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci95 == (5.0, 5.0)

    def test_ci_contains_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        low, high = summary.ci95
        assert low < summary.mean < high

    def test_ci_width_shrinks_with_n(self):
        narrow = summarize([1.0, 2.0] * 50)
        wide = summarize([1.0, 2.0])
        assert (narrow.ci95[1] - narrow.ci95[0]) < (wide.ci95[1] - wide.ci95[0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
