"""Round-trip parity: connector-fed runs are bit-identical to in-memory.

The acceptance bar of the I/O layer: for every registered mechanism
spec, ``run`` with ``source="csv:..."``/``sink="csv:..."`` produces
exactly the releases, query verdicts and ``last_trace`` of the
in-memory path — and a :class:`StreamGateway` serving two tenants
produces per-tenant outputs identical to running each spec alone.
"""

import asyncio
import warnings

import numpy as np
import pytest

from repro.baselines.landmark import landmarks_from_pattern
from repro.io import read_indicator_csv, write_indicator_csv
from repro.service import ServiceSpec, StreamGateway, StreamService
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = ("e1", "e2", "e3", "e4", "e5")
SEED = 11


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(5)
    return IndicatorStream(
        EventAlphabet(ALPHABET), rng.random((120, 5)) < 0.45
    )


@pytest.fixture(scope="module")
def history():
    rng = np.random.default_rng(6)
    return IndicatorStream(
        EventAlphabet(ALPHABET), rng.random((60, 5)) < 0.45
    )


@pytest.fixture(scope="module")
def csv_path(stream, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("io-parity") / "stream.csv")
    write_indicator_csv(stream, path)
    return path


def mechanism_options(mechanism_spec, stream):
    if mechanism_spec in ("bd", "ba"):
        return {"epsilon": 1.0, "w": 10}
    if mechanism_spec == "landmark":
        return {
            "epsilon": 1.0,
            "landmarks": [
                bool(flag)
                for flag in landmarks_from_pattern(stream, ["e1", "e2"])
            ],
        }
    if mechanism_spec == "user-rr":
        return {"epsilon": 60.0}
    return {"epsilon": 2.0}


#: Every registered mechanism spec of the paper's evaluation.
MECHANISMS = [
    "uniform-ppm",
    "adaptive-ppm",
    "bd",
    "ba",
    "landmark",
    "event-rr",
    "user-rr",
]


def spec_for(mechanism_spec, stream, **overrides):
    kwargs = dict(
        alphabet=ALPHABET,
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism=mechanism_spec,
        mechanism_options=mechanism_options(mechanism_spec, stream),
        seed=SEED,
    )
    kwargs.update(overrides)
    return ServiceSpec(**kwargs)


def assert_reports_identical(report, expected):
    assert set(report.answers) == set(expected.answers)
    for name in expected.answers:
        assert np.array_equal(
            report.answers[name].detections,
            expected.answers[name].detections,
        )
    assert np.array_equal(
        report.perturbed.matrix_view(), expected.perturbed.matrix_view()
    )


def assert_traces_identical(service, expected_service):
    trace = getattr(service.mechanism, "last_trace", None)
    expected = getattr(expected_service.mechanism, "last_trace", None)
    assert (trace is None) == (expected is None)
    if trace is None:
        return
    assert trace.published == expected.published
    assert trace.publication_budgets == expected.publication_budgets
    assert trace.dissimilarity_budgets == expected.dissimilarity_budgets


@pytest.mark.parametrize("mechanism_spec", MECHANISMS)
class TestFileRoundTripMatchesInMemory:
    def test_csv_source_and_sink_bit_identical(
        self, mechanism_spec, stream, history, csv_path, tmp_path
    ):
        out_path = str(tmp_path / "released.csv")
        in_memory_service = spec_for(mechanism_spec, stream).build(
            history=history
        )
        expected = in_memory_service.run(stream)

        spec = spec_for(
            mechanism_spec,
            stream,
            source=f"csv:{csv_path}",
            sink=f"csv:{out_path}",
        )
        # The acceptance bar: reproducible from the JSON blob alone.
        service = StreamService(
            ServiceSpec.from_json(spec.to_json()), history=history
        )
        report = service.run()

        assert_reports_identical(report, expected)
        assert_traces_identical(service, in_memory_service)
        # The sink egressed exactly the released stream.
        assert read_indicator_csv(out_path) == expected.perturbed

    def test_replay_source_matches_csv_source(
        self, mechanism_spec, stream, history, csv_path
    ):
        spec = spec_for(mechanism_spec, stream)
        via_csv = spec.build(history=history).run(f"csv:{csv_path}")
        via_replay = spec.build(history=history).run(
            f"replay:{csv_path}:0"
        )
        assert_reports_identical(via_replay, via_csv)

    def test_pump_matches_online_session(
        self, mechanism_spec, stream, history, csv_path
    ):
        if mechanism_spec == "user-rr":
            pytest.skip("sessions reject the horizon-less user-rr")
        spec = spec_for(mechanism_spec, stream)
        session = spec.build(history=history).open_session()
        expected = session.run(stream)
        pumped = asyncio.run(
            spec.build(history=history).pump(f"csv:{csv_path}")
        )
        assert pumped == expected


class TestMemorySinkMatchesReport:
    def test_memory_sink_collects_the_report(self, stream):
        spec = spec_for("uniform-ppm", stream, sink="memory")
        service = spec.build()
        report = service.run(stream)
        result = service.last_sink.result()
        assert result["released"] == report.perturbed
        assert result["answers"] == {
            name: [bool(v) for v in answer.detections]
            for name, answer in report.answers.items()
        }

    def test_metrics_sink_matches_report_quality(self, stream):
        spec = spec_for("uniform-ppm", stream, sink="metrics")
        service = spec.build()
        report = service.run(stream)
        result = service.last_sink.result()
        assert result["quality"].q == pytest.approx(
            report.measured_quality().q
        )
        assert result["mre"] == pytest.approx(report.measured_mre())


class TestGatewayMatchesRunningAlone:
    """Two tenants, one loop — outputs identical to serving each alone."""

    def test_two_tenants_bit_identical_to_alone(
        self, stream, history, csv_path, tmp_path
    ):
        other_stream = IndicatorStream(
            EventAlphabet(ALPHABET),
            np.random.default_rng(77).random((90, 5)) < 0.35,
        )
        other_path = str(tmp_path / "other.csv")
        write_indicator_csv(other_stream, other_path)

        spec_a = spec_for(
            "uniform-ppm", stream, source=f"csv:{csv_path}", seed=7
        )
        spec_b = spec_for(
            "bd", other_stream, source=f"csv:{other_path}", seed=8
        )

        gateway = StreamGateway()
        gateway.add_tenant("ppm", spec_a)
        gateway.add_tenant("w-event", spec_b)
        results = gateway.run()

        alone_a = asyncio.run(spec_a.build().pump())
        alone_b = asyncio.run(spec_b.build().pump())
        assert results["ppm"] == alone_a
        assert results["w-event"] == alone_b

    def test_gateway_never_warns_deprecation(self, stream, csv_path):
        gateway = StreamGateway()
        gateway.add_tenant(
            "a", spec_for("uniform-ppm", stream, source=f"csv:{csv_path}")
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            gateway.run()
