"""Tests for repro.datasets.io — CSV/JSON persistence."""

import numpy as np
import pytest

from repro.datasets.io import (
    load_indicator_csv,
    load_workload,
    save_indicator_csv,
    save_workload,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream


class TestIndicatorCsv:
    def test_round_trip(self, stream200, tmp_path):
        path = str(tmp_path / "stream.csv")
        save_indicator_csv(stream200, path)
        loaded = load_indicator_csv(path)
        assert loaded == stream200

    def test_header_is_alphabet(self, stream200, tmp_path):
        path = tmp_path / "stream.csv"
        save_indicator_csv(stream200, str(path))
        header = path.read_text().splitlines()[0]
        assert header == ",".join(stream200.alphabet.types)

    def test_empty_stream_round_trip(self, tmp_path):
        stream = IndicatorStream(
            EventAlphabet(["a", "b"]), np.zeros((0, 2), dtype=bool)
        )
        path = str(tmp_path / "empty.csv")
        save_indicator_csv(stream, path)
        assert load_indicator_csv(path) == stream

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_indicator_csv(str(path))

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(ValueError, match="columns"):
            load_indicator_csv(str(path))

    def test_non_integer_value_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("a,b\n1,x\n")
        with pytest.raises(ValueError, match="non-integer"):
            load_indicator_csv(str(path))


class TestWorkloadPersistence:
    def test_round_trip(self, tiny_workload, tmp_path):
        directory = str(tmp_path / "workload")
        save_workload(tiny_workload, directory)
        loaded = load_workload(directory)
        assert loaded.name == tiny_workload.name
        assert loaded.w == tiny_workload.w
        assert loaded.stream == tiny_workload.stream
        assert loaded.history == tiny_workload.history
        assert [p.elements for p in loaded.private_patterns] == [
            p.elements for p in tiny_workload.private_patterns
        ]
        assert [p.name for p in loaded.target_patterns] == [
            p.name for p in tiny_workload.target_patterns
        ]

    def test_missing_metadata_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_workload(str(tmp_path / "nowhere"))

    def test_creates_directory(self, tiny_workload, tmp_path):
        directory = tmp_path / "deep" / "nested"
        save_workload(tiny_workload, str(directory))
        assert (directory / "workload.json").exists()
