"""Proxy discovery and counting queries: the paper's extension points.

Section V-C warns that data subjects are not privacy experts: their
declared private patterns may miss *latent proxies* — undeclared events
that correlate with the private pattern and leak it.  Section V also
motivates numerical answers (drivers counting nearby passengers).  This
example exercises both extensions:

1. build a workload where an undeclared event mirrors the private
   pattern;
2. audit the leak, discover the proxy from historical data, and augment
   the private pattern;
3. show the budget dilution the augmentation costs;
4. answer a numerical counting query over the protected stream with the
   debiased estimator.

Run:  python examples/proxy_discovery.py
"""

import numpy as np

from repro import EventAlphabet, IndicatorStream, Pattern, UniformPatternPPM
from repro.core import (
    CountingQuery,
    augment_private_pattern,
    discover_relevant_events,
    leakage_after_protection,
)


def build_stream(n_windows: int, seed: int) -> IndicatorStream:
    """home_visit ~ conjunction of gps_home and late_hour; the
    undeclared 'phone_idle' event mirrors it 92 % of the time."""
    rng = np.random.default_rng(seed)
    gps_home = rng.random(n_windows) < 0.5
    late_hour = rng.random(n_windows) < 0.6
    visit = gps_home & late_hour
    phone_idle = visit ^ (rng.random(n_windows) < 0.08)
    traffic = rng.random(n_windows) < 0.5
    matrix = np.column_stack([gps_home, late_hour, phone_idle, traffic])
    alphabet = EventAlphabet(
        ["gps_home", "late_hour", "phone_idle", "traffic"]
    )
    return IndicatorStream(alphabet, matrix)


def main() -> None:
    history = build_stream(2000, seed=1)
    live = build_stream(2000, seed=2)
    declared = Pattern.of_types("home_visit", "gps_home", "late_hour")
    print(f"declared private pattern: {declared.expr.render()}\n")

    # 1. Audit: what still leaks if we protect only the declared elements?
    residual = leakage_after_protection(
        history, declared, declared.elements
    )
    print("residual |phi| of unprotected events with the private pattern:")
    for name, value in residual.items():
        marker = "  <-- LEAK" if value > 0.3 else ""
        print(f"  {name:12s} {value:.3f}{marker}")

    # 2. Discover and augment (Section V-C).
    report = discover_relevant_events(history, declared, threshold=0.3)
    print(f"\n{report!r}")
    augmented = augment_private_pattern(declared, report)
    print(f"augmented pattern: {augmented.expr.render()}")

    # 3. The price: the same budget now spreads over more elements.
    epsilon = 3.0
    before = UniformPatternPPM(declared, epsilon)
    after = UniformPatternPPM(augmented, epsilon)
    print(f"\nflip probabilities at ε={epsilon}:")
    print(f"  declared only: {before.flip_probability_by_type()}")
    print(f"  with proxy:    {after.flip_probability_by_type()}")

    # Verify the leak is closed out of sample.
    closed = leakage_after_protection(live, declared, augmented.elements)
    print(f"\nresidual leakage after augmentation: "
          f"{max(closed.values()) if closed else 0.0:.3f} (max |phi|)")

    # 4. Numerical extension: a debiased counting query over a
    #    *protected* column — the raw count is visibly biased towards
    #    1/2 of the windows, the debiased estimate recovers the truth.
    target = Pattern.of_types("idle_phones", "phone_idle")
    query = CountingQuery(after, target)
    estimate = query.answer(live, rng=5)
    true_count = live.detection_count(["phone_idle"])
    print(f"\ncounting query on the protected stream:")
    print(f"  true count      {true_count}")
    print(f"  raw count       {estimate.raw_count} (biased by the flips)")
    print(f"  debiased count  {estimate.estimated_count:.1f}")
    print(f"  crowded (rate >= 0.4)? "
          f"{query.crowdedness(live, threshold_rate=0.4, rng=5)}")


if __name__ == "__main__":
    main()
