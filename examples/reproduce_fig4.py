"""Reproduce Fig. 4 at any scale.

The benchmark suite runs laptop-sized versions of both panels; this
script exposes the knobs so the paper's full scale (1000 synthetic
datasets) is one command away:

    python examples/reproduce_fig4.py --dataset synthetic --datasets 1000
    python examples/reproduce_fig4.py --dataset taxi --taxis 500 --steps 480
    python examples/reproduce_fig4.py --dataset both --out results/

Prints the wide MRE-per-mechanism table for each panel, the shape-check
verdict, and optionally writes CSVs.
"""

import argparse
import os
import sys

from repro.datasets import SyntheticConfig, TaxiConfig
from repro.experiments import (
    ExperimentConfig,
    fig4_ascii_chart,
    fig4_markdown_section,
    fig4_wide_table,
    run_fig4_synthetic,
    run_fig4_taxi,
)


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dataset",
        choices=("taxi", "synthetic", "both"),
        default="both",
        help="which Fig. 4 panel(s) to regenerate",
    )
    parser.add_argument(
        "--epsilons",
        type=float,
        nargs="+",
        default=[0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0],
        help="pattern-level budget grid",
    )
    parser.add_argument(
        "--trials", type=int, default=3, help="perturbation trials per cell"
    )
    parser.add_argument(
        "--datasets",
        type=int,
        default=10,
        help="synthetic datasets to average over (paper: 1000)",
    )
    parser.add_argument(
        "--windows",
        type=int,
        default=1000,
        help="windows per synthetic dataset (paper: 1000)",
    )
    parser.add_argument(
        "--taxis", type=int, default=100, help="taxi fleet size"
    )
    parser.add_argument(
        "--steps", type=int, default=240, help="GPS samples per taxi"
    )
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--out", default=None, help="directory for CSV/markdown output"
    )
    return parser.parse_args(argv)


def report(result, out_dir):
    print()
    print(fig4_ascii_chart(result))
    print()
    print(fig4_wide_table(result).render())
    violations = result.check_expected_shape()
    if violations:
        print("\nSHAPE VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
    else:
        print("\nshape check passed: pattern-level PPMs win everywhere, "
              "adaptive <= uniform, MRE monotone in epsilon")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        csv_path = os.path.join(out_dir, f"fig4_{result.dataset}.csv")
        result.table.write_csv(csv_path)
        md_path = os.path.join(out_dir, f"fig4_{result.dataset}.md")
        with open(md_path, "w") as handle:
            handle.write(fig4_markdown_section(result) + "\n")
        print(f"wrote {csv_path} and {md_path}")


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    config = ExperimentConfig(
        epsilon_grid=tuple(args.epsilons),
        n_trials=args.trials,
        seed=args.seed,
    )
    if args.dataset in ("taxi", "both"):
        print(f"== Fig. 4 Taxi panel ({args.taxis} taxis x {args.steps} steps) ==")
        result = run_fig4_taxi(
            config, TaxiConfig(n_taxis=args.taxis, n_steps=args.steps)
        )
        report(result, args.out)
    if args.dataset in ("synthetic", "both"):
        print(f"\n== Fig. 4 synthetic panel ({args.datasets} datasets x "
              f"{args.windows} windows) ==")
        result = run_fig4_synthetic(
            config,
            SyntheticConfig(
                n_windows=args.windows,
                n_history_windows=max(100, args.windows // 2),
            ),
            n_datasets=args.datasets,
        )
        report(result, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
