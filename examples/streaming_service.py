"""Streaming service: answering queries window by window.

Real CEP deployments do not materialize the whole stream before
answering — windows close one at a time and consumers expect answers
immediately.  This example stands the service up from a declarative
``ServiceSpec`` and drives it in three configurations:

1. a pattern-level PPM behind a push-based session
   (``service.open_session()`` — the online answers are bit-identical
   to the batch ``service.run()`` under the same seed);
2. the w-event BD baseline through the same session surface, with a
   mid-stream ``service.checkpoint()`` / ``StreamService.resume()``
   crash-recovery cycle (the PR-3 snapshot protocol, one call away);
3. the event-stream form of Definition 5
   (:class:`~repro.core.event_ppm.EventStreamPPM`): perturbing raw
   events (suppress/inject) and showing the result reduces to exactly
   the same indicators as the windowed mechanism.

Run:  python examples/streaming_service.py
"""

import numpy as np

from repro import (
    EventAlphabet,
    EventStreamPPM,
    IndicatorStream,
    Pattern,
    ServiceSpec,
    StreamService,
)
from repro.core.ppm import apply_randomized_response
from repro.streams.events import Event
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows


def main() -> None:
    alphabet = EventAlphabet.numbered(5)
    rng = np.random.default_rng(4)
    stream = IndicatorStream(alphabet, rng.random((300, 5)) < 0.45)

    spec = ServiceSpec(
        alphabet=alphabet,
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        seed=11,
    )

    # --- 1. Push-based service with the pattern-level PPM. ------------
    service = spec.build()
    session = service.open_session()
    positives = 0
    for index in range(stream.n_windows):
        answers = session.push(stream.window_types(index))
        positives += answers["q"]
    print(f"online session: {session.windows_processed} windows pushed, "
          f"{positives} positive answers")

    batch = spec.build().run(stream)
    batch_positives = batch.answers["q"].detection_count()
    print(f"batch API (same spec+seed): {batch_positives} positive answers "
          f"(identical: {positives == batch_positives})")

    # --- 2. The w-event baseline, with checkpoint/resume. -------------
    bd_spec = spec.with_(
        mechanism="bd", mechanism_options={"epsilon": 1.0, "w": 10}
    )
    bd_service = bd_spec.build()
    bd_session = bd_service.open_session()
    first_half = [
        bd_session.push(stream.window_types(index))["q"]
        for index in range(150)
    ]
    checkpoint = bd_service.checkpoint()  # spec + full release state

    # ... the process dies here; a fresh one resumes mid-stream.
    resumed = StreamService.resume(bd_spec, checkpoint)
    second_half = [
        resumed.session.push(stream.window_types(index))["q"]
        for index in range(150, stream.n_windows)
    ]
    trace_positives = sum(first_half) + sum(second_half)
    uninterrupted = sum(bd_spec.build().open_session().run(stream)["q"])
    print(f"\nw-event BD online: {trace_positives} positive answers "
          f"(sequential scheduler, one step per window)")
    print(f"checkpoint/resume matches an uninterrupted run: "
          f"{trace_positives == uninterrupted}")

    # --- 3. Definition 5 on raw events: suppress/inject. --------------
    private = Pattern.of_types("private", "e1", "e2")
    events = []
    for window in range(50):
        base = window * 10.0
        for offset, name in enumerate(alphabet):
            if rng.random() < 0.5:
                events.append(Event(name, base + offset))
    raw = EventStream(events)
    ppm = EventStreamPPM.uniform(private, epsilon=2.0)
    protected_events = ppm.perturb(raw, TumblingWindows(10.0), rng=5)
    injected = sum(
        1 for e in protected_events if e.attribute("synthetic") is True
    )
    print(f"\nevent-stream PPM: {len(raw)} events in, "
          f"{len(protected_events)} out ({injected} injected)")

    windows = TumblingWindows(10.0, emit_empty=True).assign(raw)
    via_events = ppm.perturb_to_indicators(alphabet, windows, rng=5)
    reduced = IndicatorStream.from_event_windows(
        alphabet, windows, strict=False
    )
    via_indicators = apply_randomized_response(
        reduced, ppm.flip_probability_by_type(), rng=5
    )
    print(f"commutes with the window reduction exactly: "
          f"{via_events == via_indicators}")


if __name__ == "__main__":
    main()
