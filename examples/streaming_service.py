"""Streaming service: answering queries window by window.

Real CEP deployments do not materialize the whole stream before
answering — windows close one at a time and consumers expect answers
immediately.  This example runs the engine's push-based
:class:`~repro.cep.online.OnlineSession` in two configurations:

1. a pattern-level PPM (per-window independent flips — the online
   answers are bit-identical to the batch API under the same seed);
2. the w-event BD baseline through its incremental releaser (the same
   sequential scheduler the batch path uses).

It also demonstrates the event-stream form of Definition 5
(:class:`~repro.core.event_ppm.EventStreamPPM`): perturbing raw events
(suppress/inject) and showing the result reduces to exactly the same
indicators as the windowed mechanism.

Run:  python examples/streaming_service.py
"""

import numpy as np

from repro import (
    CEPEngine,
    ContinuousQuery,
    EventAlphabet,
    EventStreamPPM,
    IndicatorStream,
    OnlineSession,
    Pattern,
    UniformPatternPPM,
)
from repro.baselines import BudgetDistribution
from repro.core.ppm import apply_randomized_response
from repro.streams.events import Event
from repro.streams.stream import EventStream
from repro.streams.windows import TumblingWindows


def main() -> None:
    alphabet = EventAlphabet.numbered(5)
    rng = np.random.default_rng(4)
    stream = IndicatorStream(alphabet, rng.random((300, 5)) < 0.45)

    private = Pattern.of_types("private", "e1", "e2")
    target = Pattern.of_types("target", "e2", "e3")

    engine = CEPEngine(alphabet)
    engine.register_private_pattern(private)
    engine.register_query(ContinuousQuery("q", target))
    engine.attach_mechanism(UniformPatternPPM(private, epsilon=2.0))

    # --- 1. Push-based service with the pattern-level PPM. ------------
    session = OnlineSession(engine, rng=11)
    positives = 0
    for index in range(stream.n_windows):
        answers = session.push(stream.window_types(index))
        positives += answers["q"]
    print(f"online session: {session.windows_processed} windows pushed, "
          f"{positives} positive answers")

    batch = engine.process_indicators(stream, rng=11)
    batch_positives = batch.answers["q"].detection_count()
    print(f"batch API (same seed): {batch_positives} positive answers "
          f"(identical: {positives == batch_positives})")

    # --- 2. The w-event baseline runs online through its releaser. ----
    engine.attach_mechanism(BudgetDistribution(1.0, w=10))
    bd_session = OnlineSession(engine, rng=11)
    bd_answers = bd_session.run(stream)
    trace_positives = sum(bd_answers["q"])
    print(f"\nw-event BD online: {trace_positives} positive answers "
          f"(sequential scheduler, one step per window)")

    # --- 3. Definition 5 on raw events: suppress/inject. --------------
    events = []
    for window in range(50):
        base = window * 10.0
        for offset, name in enumerate(alphabet):
            if rng.random() < 0.5:
                events.append(Event(name, base + offset))
    raw = EventStream(events)
    ppm = EventStreamPPM.uniform(private, epsilon=2.0)
    protected_events = ppm.perturb(raw, TumblingWindows(10.0), rng=5)
    injected = sum(
        1 for e in protected_events if e.attribute("synthetic") is True
    )
    print(f"\nevent-stream PPM: {len(raw)} events in, "
          f"{len(protected_events)} out ({injected} injected)")

    windows = TumblingWindows(10.0, emit_empty=True).assign(raw)
    via_events = ppm.perturb_to_indicators(alphabet, windows, rng=5)
    reduced = IndicatorStream.from_event_windows(
        alphabet, windows, strict=False
    )
    via_indicators = apply_randomized_response(
        reduced, ppm.flip_probability_by_type(), rng=5
    )
    print(f"commutes with the window reduction exactly: "
          f"{via_events == via_indicators}")


if __name__ == "__main__":
    main()
