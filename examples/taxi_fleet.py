"""Taxi fleet scenario: the paper's motivating example, end to end.

A fleet of taxis streams GPS fixes to a trusted CEP engine (Fig. 2).
Passengers do not want visits to sensitive locations revealed; traffic
services still need to know which cars are active in the target area.
This example runs the *full* pipeline — raw tuples, event extraction,
per-taxi windows, engine setup/service phases, pattern-level PPM — and
compares the residual quality against the w-event baseline.

Run:  python examples/taxi_fleet.py
"""

from repro.cep import CEPEngine, ContinuousQuery
from repro.core import MultiPatternPPM, UniformPatternPPM
from repro.datasets import (
    PRIVATE_PATTERNS,
    TARGET_PATTERNS,
    TAXI_ALPHABET,
    GridCity,
    TaxiConfig,
    fleet_data_stream,
    simulate_fleet,
    taxi_event_extractors,
)
from repro.baselines import BudgetDistribution, BudgetConverter
from repro.metrics import ConfusionCounts, mean_relative_error
from repro.streams import IndicatorStream
from repro.streams.extraction import extract_events
from repro.streams.merge import partition_by_source
from repro.streams.windows import CountWindows


def build_indicators(config: TaxiConfig, city: GridCity, traces):
    """Raw tuples -> events -> per-taxi windows -> indicators."""
    data_stream = fleet_data_stream(config, traces)
    events = extract_events(data_stream, taxi_event_extractors(city))
    print(f"extracted {len(events)} region events from the GPS stream")
    windows = []
    for _source, per_taxi in sorted(partition_by_source(events).items()):
        windows.extend(CountWindows(config.window_steps).assign(per_taxi))
    return IndicatorStream.from_event_windows(TAXI_ALPHABET, windows)


def score(engine: CEPEngine, report) -> float:
    """Quality Q = 0.5*Prec + 0.5*Rec micro-averaged over queries."""
    counts = ConfusionCounts()
    for query in engine.queries:
        counts = counts + ConfusionCounts.from_vectors(
            report.true_answers[query.name].detections,
            report.answers[query.name].detections,
        )
    return 0.5 * counts.precision + 0.5 * counts.recall


def main() -> None:
    config = TaxiConfig(n_taxis=40, n_steps=160)
    city = GridCity.generate(config, rng=1)
    print(f"city regions: {city.region_fractions()}")

    traces = simulate_fleet(config, rng=2)
    stream = build_indicators(config, city, traces)
    print(f"indicator stream: {stream.n_windows} windows\n")

    # --- Setup phase (Fig. 2): subjects and consumers register. -------
    engine = CEPEngine(TAXI_ALPHABET)
    for pattern in PRIVATE_PATTERNS:
        engine.register_private_pattern(pattern)
        print(f"subject registered private pattern {pattern.expr.render()}")
    for pattern in TARGET_PATTERNS:
        engine.register_query(ContinuousQuery.for_pattern(pattern))
        print(f"consumer registered target query   {pattern.expr.render()}")

    epsilon = 2.0
    ppm = MultiPatternPPM(
        [UniformPatternPPM(pattern, epsilon) for pattern in PRIVATE_PATTERNS]
    )
    engine.attach_mechanism(ppm)
    print(f"\nattached: {ppm.privacy_statement()}")

    # --- Service phase: consumers receive protected answers. ----------
    report = engine.process_indicators(stream, rng=3)
    q_pattern_level = score(engine, report)
    print(f"\npattern-level PPM quality Q = {q_pattern_level:.3f}")
    print(f"pattern-level MRE_Q = {mean_relative_error(1.0, q_pattern_level):.3f}")

    # --- Comparison: the w-event baseline noises the whole stream. ----
    converter = BudgetConverter(max(len(p.elements) for p in PRIVATE_PATTERNS))
    native = converter.bd_native(epsilon, w=config.w)
    engine.attach_mechanism(BudgetDistribution(native, w=config.w))
    report_bd = engine.process_indicators(stream, rng=3)
    q_bd = score(engine, report_bd)
    print(f"\nw-event BD quality Q = {q_bd:.3f} (same pattern-level ε)")
    print(f"w-event BD MRE_Q = {mean_relative_error(1.0, q_bd):.3f}")

    advantage = mean_relative_error(1.0, q_bd) - mean_relative_error(
        1.0, q_pattern_level
    )
    print(f"\npattern-level advantage: {advantage:.3f} MRE points")


if __name__ == "__main__":
    main()
