"""Soak test: sustained multi-tenant replay with kill/resume.

A soak run answers the operational question the unit tests cannot:
does the service hold its latency and its ledger together under
sustained traffic *and* repeated crash/recovery?  This example

1. records a synthetic indicator stream to a replay CSV
   (``repro.io.write_indicator_csv`` — the same format the ``csv:``
   and ``replay:`` connectors read);
2. soaks a small tenant fleet over ``replay:<path>:<rate>`` sources
   with :func:`repro.run_soak`, checkpointing, killing and resuming
   the whole gateway every few slices;
3. prints p50/p99 end-to-end window latency and windows/sec — all
   computed from the observability registry's histograms, which
   survive every kill via the checkpoint's ``metrics`` section.

Run:  python examples/soak.py
      python examples/soak.py --tenants 4 --duration 10 --rate 500
"""

import argparse
import os
import random
import tempfile

from repro import SpanRecorder, run_soak
from repro.io import write_indicator_csv
from repro.streams.indicator import EventAlphabet, IndicatorStream


def record_replay_file(path: str, *, windows: int, seed: int) -> None:
    """Record a synthetic indicator stream for the soak to replay."""
    rng = random.Random(seed)
    alphabet = EventAlphabet(tuple(f"e{i}" for i in range(1, 7)))
    rows = [
        [rng.randint(0, 1) for _ in alphabet.types]
        for _ in range(windows)
    ]
    write_indicator_csv(IndicatorStream(alphabet, rows), path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument(
        "--rate",
        type=float,
        default=400.0,
        help="replay pacing per tenant, windows/second",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=4.0,
        help="wall-clock budget in seconds",
    )
    parser.add_argument("--windows", type=int, default=600)
    parser.add_argument("--slice-windows", type=int, default=48)
    parser.add_argument(
        "--kill-every",
        type=int,
        default=2,
        help="checkpoint + kill + resume the fleet every N slices",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as workdir:
        replay_path = os.path.join(workdir, "replay.csv")
        record_replay_file(
            replay_path, windows=args.windows, seed=args.seed
        )
        print(
            f"recorded {args.windows} windows -> replaying at "
            f"{args.rate:g} windows/sec per tenant"
        )

        recorder = SpanRecorder(capacity=8192)
        report = run_soak(
            replay_path,
            tenants=args.tenants,
            rate=args.rate,
            duration=args.duration,
            slice_windows=args.slice_windows,
            kill_every=args.kill_every,
            seed=args.seed,
            recorder=recorder,
            snapshot_path=os.path.join(workdir, "snapshots.jsonl"),
        )

    print(report.summary())
    serve_spans = list(recorder.spans("gateway.serve"))
    drain_spans = list(recorder.spans("session.drain"))
    print(
        f"traced: {len(serve_spans)} serve span(s), "
        f"{len(drain_spans)} drain span(s)"
    )
    checkpoints_ok = report.checkpoints == report.resumes
    print(
        "registry survived every kill: "
        f"{checkpoints_ok and report.windows_total > 0}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
