"""Broker ingestion: two tenants fed over real sockets, with faults.

The ``broker:`` connectors speak the Redis-Streams wire protocol, so a
tenant fleet can ingest from a real broker with at-least-once delivery
— acks happen at checkpoint boundaries, and every recovery path
(resume after a kill, reconnect after a dropped connection) re-reads
the un-acked suffix from the consumer group's pending list.  This
example

1. starts the in-process :class:`repro.FakeRedisServer` (a localhost
   RESP2 broker with fault injection) and publishes each tenant's
   synthetic indicator stream to its own broker stream;
2. serves a two-tenant :class:`repro.StreamGateway` over ``broker:``
   sources for a first slice, checkpoints, then *kills* the gateway;
3. injects dropped connections mid-run and resumes a fresh gateway
   from the checkpoint alone (the broker url lives in the spec, so no
   runtime objects need rebinding);
4. prints delivered / redelivered entry counts and verifies the
   combined released answers are bit-identical to memory-fed runs.

Run:  python examples/broker_pipeline.py
      python examples/broker_pipeline.py --windows 300 --slice 100
"""

import argparse
import asyncio

import numpy as np

from repro import FakeRedisServer, ServiceSpec, StreamGateway, StreamService
from repro.broker.connectors import publish_indicator_stream
from repro.streams.indicator import EventAlphabet, IndicatorStream

ALPHABET = EventAlphabet.numbered(5)
TENANTS = ("fleet", "grid")


def make_stream(seed, windows):
    rng = np.random.default_rng(seed)
    return IndicatorStream(ALPHABET, rng.random((windows, 5)) < 0.4)


def make_spec(seed, source=None):
    return ServiceSpec(
        alphabet=ALPHABET,
        patterns=[("private", ("e1", "e2"))],
        queries=[("q", ("e2", "e3"))],
        mechanism="bd",
        mechanism_options={"epsilon": 1.0, "w": 10},
        source=source,
        seed=seed,
    )


def counter(registry, name):
    metric = registry.get(name)
    return int(metric.value) if metric is not None else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--windows", type=int, default=120)
    parser.add_argument(
        "--slice",
        type=int,
        default=45,
        help="windows served per tenant before the checkpoint + kill",
    )
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    streams = {
        name: make_stream(args.seed + i, args.windows)
        for i, name in enumerate(TENANTS)
    }

    with FakeRedisServer() as server:
        for name, stream in streams.items():
            published = publish_indicator_stream(
                server.url, f"windows-{name}", stream
            )
            print(
                f"tenant {name!r}: published {published} windows to "
                f"broker stream 'windows-{name}'"
            )

        gateway = StreamGateway()
        for i, name in enumerate(TENANTS):
            gateway.add_tenant(
                name,
                make_spec(
                    args.seed + i,
                    source=(
                        f"broker:url={server.url},stream=windows-{name},"
                        f"group=repro,consumer=c0,block_ms=100,batch=16"
                    ),
                ),
            )

        asyncio.run(gateway.serve(max_windows=args.slice))
        checkpoint = gateway.checkpoint()
        print(
            f"served {args.slice} windows/tenant, checkpointed "
            "(acks committed) -- killing the gateway"
        )

        # Two dropped connections greet the resumed fleet: the server
        # processes each read, then kills the socket before replying —
        # the delivered-but-unseen entries strand in the pending list,
        # exactly the at-least-once hazard the drain path recovers.
        server.inject_fault("drop", command="XREADGROUP", count=2)
        resumed = StreamGateway.resume(checkpoint)
        asyncio.run(resumed.serve())
        print(
            f"resumed from checkpoint; connection faults fired: "
            f"{len(server.faults_fired)}"
        )

        registry = resumed.registry
        print(
            f"broker entries: "
            f"{counter(registry, 'repro_broker_delivered_total')} "
            f"delivered, "
            f"{counter(registry, 'repro_broker_redelivered_total')} "
            f"redelivered, "
            f"{counter(registry, 'repro_broker_backoff_total')} "
            f"backoff sleep(s)"
        )

        ok = True
        for i, name in enumerate(TENANTS):
            reference = asyncio.run(
                StreamService(make_spec(args.seed + i)).pump(
                    streams[name]
                )
            )
            combined = {
                query: gateway.results()[name][query]
                + resumed.results()[name][query]
                for query in reference
            }
            identical = combined == reference
            ok = ok and identical
            print(
                f"tenant {name!r}: {len(combined['q'])} windows "
                f"released, bit-identical to the memory-fed run: "
                f"{identical}"
            )
        return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
