"""Synthetic study: Algorithm 2 data and the full mechanism line-up.

Synthesizes Algorithm 2 datasets, runs every mechanism the library
implements (the Fig. 4 five plus the event-level and user-level
reference points) at a fixed pattern-level budget, and prints the
resulting quality table — a compact version of the paper's synthetic
evaluation with two extra rows.

Run:  python examples/synthetic_study.py
"""

from repro.datasets import SyntheticConfig, synthesize_many
from repro.experiments import ALL_MECHANISMS, evaluate_mechanism
from repro.metrics import summarize
from repro.utils.rng import derive_rng
from repro.utils.tables import ResultTable

EPSILON = 2.0
N_DATASETS = 5


def main() -> None:
    config = SyntheticConfig(n_windows=500, n_history_windows=300)
    print(
        f"Algorithm 2: {config.n_event_types} event types, "
        f"{config.n_patterns} patterns "
        f"({config.n_private} private / {config.n_target} target), "
        f"{N_DATASETS} datasets\n"
    )

    per_mechanism = {kind: [] for kind in ALL_MECHANISMS}
    for index, workload in enumerate(
        synthesize_many(N_DATASETS, config, rng=2023)
    ):
        for kind in ALL_MECHANISMS:
            result = evaluate_mechanism(
                workload,
                kind,
                EPSILON,
                n_trials=3,
                rng=derive_rng(7, kind, index),
            )
            per_mechanism[kind].append(result.mre)

    table = ResultTable(
        ["mechanism", "mean_mre", "std", "ci95_low", "ci95_high"],
        title=f"synthetic study at pattern-level epsilon = {EPSILON}",
    )
    for kind in ALL_MECHANISMS:
        stats = summarize(per_mechanism[kind])
        low, high = stats.ci95
        table.add_row(
            mechanism=kind,
            mean_mre=stats.mean,
            std=stats.std,
            ci95_low=low,
            ci95_high=high,
        )
    print(table.sort_by("mean_mre").render())

    best_baseline = min(
        summarize(per_mechanism[kind]).mean
        for kind in ("bd", "ba", "landmark")
    )
    best_ours = min(
        summarize(per_mechanism[kind]).mean
        for kind in ("uniform", "adaptive")
    )
    print(
        f"\npattern-level PPMs lead the best non-pattern-level baseline "
        f"by {best_baseline - best_ours:.3f} MRE points"
    )


if __name__ == "__main__":
    main()
