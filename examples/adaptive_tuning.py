"""Adaptive budget tuning: watching Algorithm 1 work.

Fits the adaptive pattern-level PPM on historical data and inspects the
search: the quality trace, where the budget ends up, and how the fitted
distribution compares to the uniform split — on a workload where one
private element is useless to the consumers (so the search should
starve it) and two are shared with a target pattern (so the search
should feed them).

Run:  python examples/adaptive_tuning.py
"""

import numpy as np

from repro import (
    AdaptivePatternPPM,
    AnalyticQualityEstimator,
    EventAlphabet,
    IndicatorStream,
    Pattern,
    UniformPatternPPM,
)
from repro.core.adaptive import default_step_size
from repro.utils.tables import ResultTable


def main() -> None:
    alphabet = EventAlphabet.numbered(6)
    rng = np.random.default_rng(11)
    history = IndicatorStream(alphabet, rng.random((600, 6)) < 0.45)
    evaluation = IndicatorStream(alphabet, rng.random((600, 6)) < 0.45)

    # e1 is private-only; e2 and e3 also drive the target query.
    private = Pattern.of_types("private", "e1", "e2", "e3")
    target = Pattern.of_types("target", "e2", "e3", "e4")
    epsilon = 3.0

    print(f"private: {private.expr.render()}  target: {target.expr.render()}")
    print(f"total budget ε = {epsilon}, paper step δε = "
          f"{default_step_size(epsilon, private.length):.4f}\n")

    adaptive = AdaptivePatternPPM.fit(
        private, epsilon, history, [target], max_iterations=400
    )
    fit = adaptive.fit_result
    print(f"Algorithm 1: {fit.iterations} committed moves, "
          f"converged={fit.converged}")
    print(f"quality trace: {fit.quality_trace[0]:.4f} -> "
          f"{fit.quality_trace[-1]:.4f}\n")

    table = ResultTable(
        ["element", "uniform_eps", "adaptive_eps", "uniform_p", "adaptive_p"],
        title="budget distribution: uniform vs Algorithm 1",
    )
    uniform = UniformPatternPPM(private, epsilon)
    uniform_p = uniform.flip_probability_by_type()
    adaptive_p = adaptive.flip_probability_by_type()
    for index, element in enumerate(private.elements):
        table.add_row(
            element=element,
            uniform_eps=uniform.allocation[index],
            adaptive_eps=adaptive.allocation[index],
            uniform_p=uniform_p[element],
            adaptive_p=adaptive_p[element],
        )
    print(table.render())
    print(
        "\nnote: e1 carries no target signal, so Algorithm 1 starves it "
        "(flip probability -> 1/2: maximal noise, zero quality cost) and "
        "feeds e2/e3."
    )

    # Out-of-sample check on fresh evaluation windows.
    estimator = AnalyticQualityEstimator(evaluation, private, [target])
    q_uniform = estimator.evaluate(uniform.allocation).q
    q_adaptive = estimator.evaluate(adaptive.allocation).q
    print(f"\nout-of-sample quality: uniform Q={q_uniform:.4f}, "
          f"adaptive Q={q_adaptive:.4f}")
    print(f"same guarantee on both: pattern-level {epsilon:g}-DP")


if __name__ == "__main__":
    main()
