"""Quickstart: protect a private pattern with pattern-level DP.

The smallest end-to-end use of the library, on the declarative service
API:

1. model a windowed event stream as existence indicators;
2. declare the whole service as data — alphabet, the private pattern
   (what the data subject hides), the target query (what the data
   consumer asks), the mechanism and a seed — in one ``ServiceSpec``;
3. build the service and run it: the uniform pattern-level PPM perturbs
   the stream once and the query is answered from the protected data;
4. measure the cost, and show the run is reproducible from nothing but
   the spec's JSON form;
5. verify the delivered guarantee *exactly* (no sampling).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AnalyticQualityEstimator,
    EventAlphabet,
    IndicatorStream,
    ServiceSpec,
    verify_instance_dp,
    verify_single_event_dp,
)
from repro.metrics import ConfusionCounts, mean_relative_error


def main() -> None:
    # 1. A stream of 500 windows over six event types.  In a deployment
    #    these indicators come from the engine's window reduction; here
    #    we synthesize them.
    alphabet = EventAlphabet.numbered(6)
    rng = np.random.default_rng(7)
    stream = IndicatorStream(alphabet, rng.random((500, 6)) < 0.4)

    # 2. The data subject hides `seq(e1, e2, e3)`; the consumer queries
    #    `seq(e2, e3, e4)`.  They overlap on e2 and e3, so protection
    #    must cost some quality — the question is how little.  The whole
    #    service is one declarative spec.
    spec = ServiceSpec(
        alphabet=alphabet,
        patterns=[("private", ("e1", "e2", "e3"))],
        queries=[("target", ("e2", "e3", "e4"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        seed=1,
    )
    service = spec.build()
    print(f"private pattern: {spec.patterns[0].elements}")
    print(f"target query:    {spec.queries[0].pattern.elements}")

    # 3. The uniform pattern-level PPM spends epsilon/m per element
    #    (Section V-A) and touches *only* e1, e2, e3.
    ppm = service.mechanism.ppms[0]
    print(f"\nguarantee: {ppm.privacy_statement()}")
    print(f"per-element budgets: {ppm.allocation}")
    print(f"flip probabilities:  {ppm.flip_probability_by_type()}")

    # 4. Run the service phase and measure the cost of protection.
    report = service.run(stream)
    answers = report.answers["target"].detections
    truth = report.true_answers["target"].detections
    counts = ConfusionCounts.from_vectors(truth, answers)
    quality = counts.precision * 0.5 + counts.recall * 0.5
    print(f"\nprecision={counts.precision:.3f} recall={counts.recall:.3f}")
    print(f"MRE_Q = {mean_relative_error(1.0, quality):.3f}")

    # The analytic model predicts the same numbers without sampling.
    private = spec.pattern_objects()[0]
    target = spec.query_objects()[0].pattern
    estimator = AnalyticQualityEstimator(stream, private, [target])
    expected = estimator.evaluate(ppm.allocation)
    print(f"analytic expectation: {expected}")

    # The run is reproducible from the spec's JSON plus the seed alone.
    clone = ServiceSpec.from_json(spec.to_json()).build().run(stream)
    identical = bool(
        np.array_equal(clone.answers["target"].detections, answers)
    )
    print(f"rebuilt from JSON, same answers: {identical}")

    # 5. Exact verification of Definition 4 (enumerates the output
    #    distribution — no trust in the algebra required).
    print(f"\nsingle-event check: {verify_single_event_dp(ppm, stream, window_index=0)}")
    print(f"instance check:     {verify_instance_dp(ppm, stream, window_index=0)}")


if __name__ == "__main__":
    main()
