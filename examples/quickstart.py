"""Quickstart: protect a private pattern with pattern-level DP.

The smallest end-to-end use of the library:

1. model a windowed event stream as existence indicators;
2. declare a private pattern (what the data subject hides) and a target
   pattern (what the data consumer queries);
3. protect the stream with the uniform pattern-level PPM;
4. answer the target query on the protected stream and measure the cost;
5. verify the delivered guarantee *exactly* (no sampling).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AnalyticQualityEstimator,
    EventAlphabet,
    IndicatorStream,
    Pattern,
    UniformPatternPPM,
    verify_instance_dp,
    verify_single_event_dp,
)
from repro.metrics import ConfusionCounts, mean_relative_error


def main() -> None:
    # 1. A stream of 500 windows over six event types.  In a deployment
    #    these indicators come from the CEP engine's window reduction;
    #    here we synthesize them.
    alphabet = EventAlphabet.numbered(6)
    rng = np.random.default_rng(7)
    stream = IndicatorStream(alphabet, rng.random((500, 6)) < 0.4)

    # 2. The data subject hides `seq(e1, e2, e3)`; the consumer queries
    #    `seq(e2, e3, e4)`.  They overlap on e2 and e3, so protection
    #    must cost some quality — the question is how little.
    private = Pattern.of_types("private", "e1", "e2", "e3")
    target = Pattern.of_types("target", "e2", "e3", "e4")
    print(f"private pattern: {private.expr.render()}")
    print(f"target pattern:  {target.expr.render()}")

    # 3. The uniform pattern-level PPM spends epsilon/m per element
    #    (Section V-A) and touches *only* e1, e2, e3.
    ppm = UniformPatternPPM(private, epsilon=2.0)
    print(f"\nguarantee: {ppm.privacy_statement()}")
    print(f"per-element budgets: {ppm.allocation}")
    print(f"flip probabilities:  {ppm.flip_probability_by_type()}")

    # 4. Answer the target query on the protected stream.
    answers = ppm.answer(stream, target, rng=1)
    truth = stream.detect_all(list(target.elements))
    counts = ConfusionCounts.from_vectors(truth, answers)
    quality = counts.precision * 0.5 + counts.recall * 0.5
    print(f"\nprecision={counts.precision:.3f} recall={counts.recall:.3f}")
    print(f"MRE_Q = {mean_relative_error(1.0, quality):.3f}")

    # The analytic model predicts the same numbers without sampling.
    estimator = AnalyticQualityEstimator(stream, private, [target])
    expected = estimator.evaluate(ppm.allocation)
    print(f"analytic expectation: {expected}")

    # 5. Exact verification of Definition 4 (enumerates the output
    #    distribution — no trust in the algebra required).
    print(f"\nsingle-event check: {verify_single_event_dp(ppm, stream, window_index=0)}")
    print(f"instance check:     {verify_instance_dp(ppm, stream, window_index=0)}")


if __name__ == "__main__":
    main()
