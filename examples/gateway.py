"""Multi-tenant gateway: two declarative services, one asyncio loop.

Real deployments do not run one pipeline at a time — a gateway serves
many data consumers, each with their own patterns, mechanism, budget
and seed, over the same event infrastructure.  This example stands up
a :class:`~repro.service.StreamGateway` with two tenants described
entirely as data:

- ``fleet`` — a pattern-level uniform PPM over a synthetic feed,
  egressing its released stream quality into a ``metrics`` sink;
- ``grid`` — the w-event BD baseline over a different feed (its own
  seed and ε ledger), collecting the sanitized stream in memory.

Both are served concurrently on one loop, sliced mid-stream by a
gateway-wide checkpoint (sessions *and* source offsets), and resumed —
the combined answers are identical to an uninterrupted run.

Run:  python examples/gateway.py
"""

import asyncio

from repro import ServiceSpec, StreamGateway


def tenant_specs():
    fleet = ServiceSpec(
        alphabet=tuple(f"e{i}" for i in range(1, 7)),
        patterns=[("depot-visit", ("e1", "e2"))],
        queries=[("congestion", ("e2", "e3")), ("transfer", ("e4", "e5"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        source="synthetic:generator=bernoulli,windows=400,seed=21",
        sink="metrics",
        accounting=10.0,
        seed=7,
    )
    grid = ServiceSpec(
        alphabet=tuple(f"e{i}" for i in range(1, 7)),
        patterns=[("outage", ("e5", "e6"))],
        queries=[("load-spike", ("e1", "e6"))],
        mechanism="bd",
        mechanism_options={"epsilon": 1.0, "w": 10},
        source="synthetic:generator=uniform,windows=400,seed=22",
        sink="memory",
        seed=8,
    )
    return fleet, grid


def main() -> None:
    fleet, grid = tenant_specs()

    # --- 1. Serve both tenants to completion on one loop. -------------
    gateway = StreamGateway()
    gateway.add_tenant("fleet", fleet)
    gateway.add_tenant("grid", grid)
    results = gateway.run()
    for name in gateway.tenant_names:
        answered = sum(len(v) for v in results[name].values())
        print(f"tenant {name!r}: {answered} answers over "
              f"{gateway.windows_served()[name]} windows")
    quality = gateway.sink_result("fleet")["quality"]
    print(f"fleet metrics sink: Q={quality.q:.3f} "
          f"(precision {quality.precision:.3f}, recall {quality.recall:.3f})")
    released = gateway.sink_result("grid")["released"]
    print(f"grid memory sink collected {released.n_windows} sanitized "
          f"windows")

    # --- 2. Crash mid-stream, checkpoint, resume. ----------------------
    sliced = StreamGateway()
    sliced.add_tenant("fleet", fleet)
    sliced.add_tenant("grid", grid)
    asyncio.run(sliced.serve(max_windows=150))
    checkpoint = sliced.checkpoint()
    offsets = {
        name: tenant["source_offset"]
        for name, tenant in checkpoint["tenants"].items()
    }
    print(f"\ncheckpoint taken at source offsets {offsets}")

    # ... the process dies here; a fresh gateway resumes the fleet.
    resumed = StreamGateway.resume(checkpoint)
    asyncio.run(resumed.serve())
    identical = all(
        {
            query: sliced.results()[name][query]
            + resumed.results()[name][query]
            for query in results[name]
        }
        == results[name]
        for name in results
    )
    print(f"resumed outputs identical to the uninterrupted run: "
          f"{identical}")

    # --- 3. Per-tenant isolation: budgets are separate ledgers. --------
    spent = gateway.service("fleet").accountant.spent()
    print(f"\nfleet budget ledger: ε={spent:g} of 10 spent; "
          f"grid runs without accounting — one tenant cannot spend "
          f"another's budget")


if __name__ == "__main__":
    main()
