"""Elastic multi-tenant serving: one JSON fleet, shedding, scattering.

The gateway's elasticity features in one script:

- the whole tenant fleet — services, seeds, budgets — is a single JSON
  document of :class:`~repro.service.TenantSpec` entries, declared in
  the key=value spec grammar and stood up with
  :meth:`StreamGateway.from_json`;
- the same fleet is scattered across worker processes with
  :meth:`serve_scattered` and produces results bit-identical to the
  single-process asyncio loop;
- a rate-limited tenant admits exactly its token-bucket burst and
  *sheds* the rest — loudly: the shed count surfaces in the gateway
  and in the tenant's metrics sink, never silently;
- the :class:`~repro.runtime.ClusterExecutor` worker fleet survives a
  worker killed mid-shard: the heartbeat loop reaps the corpse,
  requeues its shard, and the run stays bit-identical to
  :class:`~repro.runtime.BatchExecutor`.

Run:  python examples/cluster_gateway.py
"""

import json
import os
import tempfile

import numpy as np

from repro import (
    BatchExecutor,
    ClusterExecutor,
    ContinuousQuery,
    EventAlphabet,
    IndicatorStream,
    Pattern,
    ServiceSpec,
    StreamGateway,
    StreamPipeline,
    TenantSpec,
    UniformPatternPPM,
)
from repro.runtime import cluster


def base_spec(source_seed):
    return ServiceSpec(
        alphabet=tuple(f"e{i}" for i in range(1, 7)),
        patterns=[("depot-visit", ("e1", "e2"))],
        queries=[("congestion", ("e2", "e3")), ("transfer", ("e4", "e5"))],
        mechanism="uniform-ppm",
        mechanism_options={"epsilon": 2.0},
        source=(
            "synthetic:generator=bernoulli,windows=120,"
            f"seed={source_seed}"
        ),
        sink="metrics",
        seed=0,
    )


def fleet_document():
    tenants = [
        TenantSpec(name="fleet", service=base_spec(21), seed=7, budget=10.0),
        TenantSpec(name="grid", service=base_spec(22), seed=8),
        TenantSpec(name="depot", service=base_spec(23), seed=9),
    ]
    return json.dumps(
        {"format": 1, "tenants": [tenant.to_dict() for tenant in tenants]},
        sort_keys=True,
    )


def main() -> None:
    document = fleet_document()

    # --- 1. The whole fleet from one JSON document. --------------------
    gateway = StreamGateway.from_json(document)
    results = gateway.run()
    print(f"fleet of {len(gateway.tenant_names)} tenants from "
          f"one JSON document:")
    for name in gateway.tenant_names:
        answered = sum(len(v) for v in results[name].values())
        print(f"  tenant {name!r}: {answered} answers over "
              f"{gateway.windows_served()[name]} windows")

    # --- 2. Scatter the same fleet across worker processes. ------------
    scattered = StreamGateway.from_json(document)
    scattered_results = scattered.serve_scattered(slots=2)
    print(f"scattered across 2 worker slots: identical to the local "
          f"loop: {scattered_results == results}")

    # --- 3. Ingress rate limits: shed loudly, never silently. ----------
    limited = StreamGateway()
    limited.add_tenant(
        "throttled",
        base_spec(24).with_(seed=5),
        rate_limit=1.0,
        burst=20.0,
        clock=lambda: 0.0,  # frozen clock: admit the burst, shed the rest
    )
    limited.run()
    sink = limited.sink_result("throttled")
    print(f"\nrate-limited tenant admitted {sink['windows']} of 120 "
          f"windows, shed {limited.shed_windows()['throttled']} "
          f"(metrics sink records shed={sink['shed']})")

    # --- 4. Cluster executor: a worker dies, no window is lost. --------
    alphabet = EventAlphabet.numbered(5)
    pipeline = StreamPipeline(
        alphabet,
        queries=[ContinuousQuery("q", Pattern.of_types("q", "e1", "e2"))],
        mechanism=UniformPatternPPM(
            Pattern.of_types("p", "e1", "e4"), 1.5
        ),
    )
    rng = np.random.default_rng(13)
    stream = IndicatorStream(alphabet, rng.random((400, 5)) < 0.35)
    batch = BatchExecutor().run(pipeline, stream, rng=17)

    # A sentinel file arms a one-shot fault: the first worker to claim
    # it (os.unlink succeeds exactly once) dies mid-shard.
    handle, sentinel = tempfile.mkstemp(prefix="cluster-kill-")
    os.close(handle)

    def kill_once(message):
        try:
            os.unlink(sentinel)
        except FileNotFoundError:
            return
        os._exit(1)

    cluster._TASK_FAULT_HOOK = kill_once
    try:
        executor = ClusterExecutor(2, n_shards=4)
        clustered = executor.run(pipeline, stream, rng=17)
    finally:
        cluster._TASK_FAULT_HOOK = None
    identical = clustered.released == batch.released and all(
        np.array_equal(clustered.answers[query], detections)
        for query, detections in batch.answers.items()
    )
    print(f"\ncluster fleet lost {executor.last_restarts} worker "
          f"mid-shard and requeued the shard; "
          f"bit-identical to batch: {identical}")


if __name__ == "__main__":
    main()
