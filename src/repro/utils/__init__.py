"""Shared utilities: seeded RNG plumbing, validation, result tables.

These helpers keep the rest of the library free of global state: every
stochastic component accepts a seed or a :class:`numpy.random.Generator`
and derives child generators deterministically.
"""

from repro.utils.rng import (
    RngLike,
    bernoulli,
    bernoulli_vector,
    derive_rng,
    ensure_rng,
    spawn_rngs,
    stable_subsample,
)
from repro.utils.tables import ResultTable
from repro.utils.validation import (
    ValidationError,
    check_fraction,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)

__all__ = [
    "ResultTable",
    "RngLike",
    "ValidationError",
    "bernoulli",
    "bernoulli_vector",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_non_negative_int",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_type",
    "derive_rng",
    "ensure_rng",
    "spawn_rngs",
    "stable_subsample",
]
