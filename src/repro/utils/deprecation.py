"""Deprecation plumbing for the imperative service surface.

PR 4 made :class:`~repro.service.ServiceSpec` /
:class:`~repro.service.StreamService` the one way to stand up a private
stream service; the old imperative surface (mutating a ``CEPEngine``,
constructing sessions directly, the experiment runner's kind-dispatch)
keeps working behind pointed ``DeprecationWarning``s.

The service layer itself is built *on top of* those entry points, so a
plain ``warnings.warn`` in them would fire on every internal call.
:func:`suppress_imperative_warnings` is the escape hatch: the service
layer wraps its internal construction in it, and
:func:`warn_imperative` stays silent inside the context — a spec-built
service emits zero deprecation warnings while every direct imperative
call emits exactly one.
"""

from __future__ import annotations

import contextlib
import contextvars
import warnings

_SUPPRESSED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro-imperative-warnings-suppressed", default=False
)


@contextlib.contextmanager
def suppress_imperative_warnings():
    """Silence :func:`warn_imperative` within the ``with`` block.

    Used by the service layer (and non-deprecated facades built on the
    imperative entry points) so internal construction never warns.
    Context-local, so concurrent user code in other tasks/threads still
    warns normally.
    """
    token = _SUPPRESSED.set(True)
    try:
        yield
    finally:
        _SUPPRESSED.reset(token)


def warn_superseded(message: str, *, stacklevel: int = 3) -> None:
    """Emit one pointed ``DeprecationWarning`` with the given message.

    The shared primitive behind every deprecation shim in the library:
    a no-op while :func:`suppress_imperative_warnings` is active, so
    non-deprecated facades built *on* deprecated entry points never
    warn.  The default ``stacklevel`` of 3 attributes the warning to
    the caller of the deprecated entry point (user code), not the
    entry point itself.
    """
    if _SUPPRESSED.get():
        return
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def warn_imperative(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit one ``DeprecationWarning`` pointing from ``old`` to ``new``.

    No-op while :func:`suppress_imperative_warnings` is active.  The
    default ``stacklevel`` of 3 attributes the warning to the caller of
    the deprecated entry point (user code), not the entry point itself.
    """
    warn_superseded(
        f"{old} is part of the deprecated imperative service surface: "
        f"{new} instead (see repro.service.ServiceSpec / StreamService).",
        stacklevel=stacklevel,
    )


def warn_superseded_io(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit one ``DeprecationWarning`` pointing at the connector API.

    Used by the legacy ``datasets.io`` persistence helpers, which are
    reimplemented on the :mod:`repro.io` connectors.
    """
    warn_superseded(
        f"{old} is superseded by the I/O connector API: {new} instead "
        "(see repro.io and ServiceSpec source=/sink=).",
        stacklevel=stacklevel,
    )
