"""ASCII line charts for terminal-only reproduction environments.

The paper's Fig. 4 is a line plot (MRE versus ε, one series per
mechanism); this module renders such plots as monospaced text so the
reproduction can *show* the figure without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(steps - 1, max(0, int(round(position * (steps - 1)))))


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII line chart.

    Each series gets a marker from a fixed palette (legend appended).
    Points are plotted on a ``width x height`` character grid scaled to
    the joint data range; later series overwrite earlier ones where
    they collide.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4 characters")
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:
        y_low, y_high = y_low - 0.5, y_high + 0.5

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend: Dict[str, str] = {}
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend[name] = marker
        for x, y in values:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(
        len(f"{y_high:.3f}"), len(f"{y_low:.3f}"), len(y_label)
    )
    lines.append(f"{y_label.rjust(label_width)} ")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:.3f}"
        elif row_index == height - 1:
            label = f"{y_low:.3f}"
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(f"{' ' * label_width}  {x_axis}")
    lines.append(f"{' ' * label_width}  {x_label}")
    legend_text = "   ".join(
        f"{marker}={name}" for name, marker in legend.items()
    )
    lines.append(f"{' ' * label_width}  legend: {legend_text}")
    return "\n".join(lines)
