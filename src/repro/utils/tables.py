"""Lightweight result tables for experiment reporting.

The experiment harness prints the same rows/series the paper reports.
:class:`ResultTable` is a minimal column-oriented table with aligned text
rendering and CSV export — enough for benchmark output without pulling in
pandas.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


class ResultTable:
    """A small ordered table of experiment results.

    Rows are mappings from column name to value.  Columns are fixed at
    construction; missing values render as empty strings.

    >>> table = ResultTable(["epsilon", "mre"], title="demo")
    >>> table.add_row(epsilon=1.0, mre=0.25)
    >>> "epsilon" in table.render()
    True
    """

    def __init__(self, columns: Sequence[str], *, title: Optional[str] = None):
        if not columns:
            raise ValueError("a ResultTable needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {list(columns)}")
        self.columns: List[str] = list(columns)
        self.title = title
        self._rows: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The accumulated rows (copies; mutation does not affect the table)."""
        return [dict(row) for row in self._rows]

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(
                f"unknown column(s) {sorted(unknown)}; table has {self.columns}"
            )
        self._rows.append({col: values.get(col) for col in self.columns})

    def add_rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many rows from mappings."""
        for row in rows:
            self.add_row(**dict(row))

    def column(self, name: str) -> List[Any]:
        """Return all values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; table has {self.columns}")
        return [row[name] for row in self._rows]

    def sort_by(self, *names: str) -> "ResultTable":
        """Return a new table with rows sorted by the given columns."""
        for name in names:
            if name not in self.columns:
                raise KeyError(f"unknown column {name!r}")
        table = ResultTable(self.columns, title=self.title)
        table._rows = sorted(
            (dict(row) for row in self._rows),
            key=lambda row: tuple(row[name] for name in names),
        )
        return table

    def filter(self, **criteria: Any) -> "ResultTable":
        """Return a new table keeping rows whose columns equal ``criteria``."""
        for name in criteria:
            if name not in self.columns:
                raise KeyError(f"unknown column {name!r}")
        table = ResultTable(self.columns, title=self.title)
        table._rows = [
            dict(row)
            for row in self._rows
            if all(row[k] == v for k, v in criteria.items())
        ]
        return table

    def render(self, *, float_format: str = "{:.4f}") -> str:
        """Render the table as aligned monospaced text."""
        def fmt(value: Any) -> str:
            if value is None:
                return ""
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        cells = [[fmt(row[col]) for col in self.columns] for row in self._rows]
        widths = [
            max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the table as CSV text (header row included)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self._rows:
            writer.writerow([row[col] for col in self.columns])
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        """Write the table to ``path`` as CSV."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())
