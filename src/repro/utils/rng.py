"""Deterministic random-number plumbing.

The library never touches :mod:`numpy.random`'s global state.  Every
stochastic component accepts either an integer seed or an existing
:class:`numpy.random.Generator`; :func:`ensure_rng` normalizes both into a
generator, and :func:`derive_rng` / :func:`spawn_rngs` produce independent
child generators so that adding a new consumer of randomness does not
perturb the draws seen by existing ones.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]
"""Anything accepted where a source of randomness is required."""

_DEFAULT_SEED = 0x5EED


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a generator with a fixed library-wide default seed so
    that callers who do not care about seeding still get reproducible
    behaviour.  An ``int`` is used as a seed.  A generator is passed
    through unchanged.
    """
    if rng is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"expected None, int or numpy.random.Generator, got {type(rng).__name__}"
    )


def fold_token(token: Union[int, str]) -> int:
    """One derivation token as the 63-bit entropy word ``derive_rng`` uses."""
    if isinstance(token, str):
        return _fold_string(token)
    if isinstance(token, (int, np.integer)):
        return int(token) & (2**63 - 1)
    raise TypeError(
        f"rng tokens must be int or str, got {type(token).__name__}"
    )


def derive_rng(rng: RngLike, *tokens: Union[int, str]) -> np.random.Generator:
    """Derive an independent child generator, keyed by ``tokens``.

    The derivation is deterministic: the same parent seed and tokens always
    produce the same child stream.  Tokens let call sites label their
    sub-streams (for example ``derive_rng(seed, "taxi", taxi_id)``) so that
    streams stay stable when unrelated consumers are added or removed.

    When one call site needs children for a whole *range* of trailing
    integer tokens (one per window), use
    :class:`repro.runtime.rng_pool.IndexedRngPool` — it derives the same
    child streams vectorized.
    """
    parent = ensure_rng(rng)
    # Hash the tokens into 64-bit words; fold in entropy drawn from the
    # parent so distinct parents give distinct children.
    words = [int(parent.integers(0, 2**63 - 1))]
    for token in tokens:
        words.append(fold_token(token))
    return np.random.default_rng(np.random.SeedSequence(words))


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` mutually independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seed_seq = np.random.SeedSequence(int(parent.integers(0, 2**63 - 1)))
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


_FOLD_CACHE: dict = {}


def _fold_string(text: str) -> int:
    """Fold a string into a stable 63-bit integer (FNV-1a, memoized)."""
    cached = _FOLD_CACHE.get(text)
    if cached is not None:
        return cached
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    folded = acc & (2**63 - 1)
    _FOLD_CACHE[text] = folded
    return folded


def bernoulli(rng: np.random.Generator, probability: float) -> bool:
    """Draw a single Bernoulli sample with the given success probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    if probability == 0.0:
        return False
    if probability == 1.0:
        return True
    return bool(rng.random() < probability)


def bernoulli_vector(
    rng: np.random.Generator, probabilities: Sequence[float]
) -> np.ndarray:
    """Draw independent Bernoulli samples, one per entry of ``probabilities``."""
    probs = np.asarray(probabilities, dtype=float)
    if probs.size and (probs.min() < 0.0 or probs.max() > 1.0):
        raise ValueError("all probabilities must be in [0, 1]")
    if probs.size == 0:
        return np.zeros(0, dtype=bool)
    return rng.random(probs.shape) < probs


def stable_subsample(
    rng: RngLike, items: Sequence, fraction: float
) -> list:
    """Return a deterministic random subsample of ``items``.

    ``fraction`` of the items (rounded to the nearest integer, at least one
    item when ``fraction > 0`` and ``items`` is non-empty) are selected
    without replacement, preserving the original order.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    items = list(items)
    if fraction == 0.0 or not items:
        return []
    count = max(1, int(round(fraction * len(items))))
    count = min(count, len(items))
    generator = ensure_rng(rng)
    chosen = sorted(generator.choice(len(items), size=count, replace=False))
    return [items[i] for i in chosen]
