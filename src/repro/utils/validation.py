"""Argument-validation helpers.

Small, explicit checks used at public API boundaries.  Each helper raises
:class:`ValidationError` (a :class:`ValueError` subclass) with a message
naming the offending parameter, so user mistakes surface immediately
instead of corrupting privacy accounting downstream.
"""

from __future__ import annotations

import math
from typing import Any, Tuple, Type, Union


class ValidationError(ValueError):
    """Raised when a public API receives an invalid argument."""


def check_type(
    name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]
) -> Any:
    """Check ``value`` is an instance of ``expected``; return it."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = " or ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise ValidationError(
            f"{name} must be {names}, got {type(value).__name__}"
        )
    return value


def _check_real(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"{name} must be a real number, got {type(value).__name__}"
        )
    value = float(value)
    if math.isnan(value):
        raise ValidationError(f"{name} must not be NaN")
    return value


def check_positive(name: str, value: Any, *, allow_inf: bool = False) -> float:
    """Check ``value`` is a strictly positive real number; return it."""
    value = _check_real(name, value)
    if not allow_inf and math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    if value <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(
    name: str, value: Any, *, allow_inf: bool = False
) -> float:
    """Check ``value`` is a non-negative real number; return it."""
    value = _check_real(name, value)
    if not allow_inf and math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    if value < 0.0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: Any) -> float:
    """Check ``value`` lies in the closed interval [0, 1]; return it."""
    value = _check_real(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(name: str, value: Any) -> float:
    """Alias of :func:`check_probability` for fraction-of-total arguments."""
    return check_probability(name, value)


def check_in_range(
    name: str,
    value: Any,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Check ``low <= value <= high`` (or strict when not inclusive)."""
    value = _check_real(name, value)
    if inclusive:
        if not low <= value <= high:
            raise ValidationError(
                f"{name} must be in [{low}, {high}], got {value}"
            )
    else:
        if not low < value < high:
            raise ValidationError(
                f"{name} must be in ({low}, {high}), got {value}"
            )
    return value


def check_positive_int(name: str, value: Any) -> int:
    """Check ``value`` is a strictly positive integer; return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{name} must be an int, got {type(value).__name__}"
        )
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative_int(name: str, value: Any) -> int:
    """Check ``value`` is a non-negative integer; return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{name} must be an int, got {type(value).__name__}"
        )
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value
