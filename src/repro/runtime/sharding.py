"""Shard planning, per-shard execution and result merging.

The service phase is embarrassingly parallel across windows for every
mechanism whose stepper can *seek* — skip a prefix of windows while
still drawing the randomness the batch path would draw for the
remainder (per-type flip PPMs, whole-matrix randomized response, the
identity).  :class:`~repro.runtime.executors.ShardedExecutor` splits
the stream into contiguous shards, runs each shard's windows through a
seeked chunk stepper on a worker pool, and merges the partial results
in shard order.

Bit-identity with :class:`~repro.runtime.executors.BatchExecutor` under
the same seed rests on two invariants:

1. **RNG by absolute window index** — every shard constructs its
   stepper from the *same* parent entropy (seeds re-derive, generators
   are state-cloned), then seeks to the shard's absolute start window,
   so each shard consumes exactly the slice of the child streams the
   batch path would spend on those windows;
2. **order-preserving merge** — per-query answer vectors, indicator
   slices and confusion counts concatenate/sum in shard order, which is
   window order.

Sequential schedulers (BD/BA, landmark) carry data-dependent state from
window to window and cannot seek, but they *can* checkpoint: their
releasers snapshot and restore the full release state (scheduler state,
accounting trace, last release, rng-pool position).  The sharded
executor parallelizes them in two phases — a cheap sequential
scheduler-state prepass (:func:`checkpoint_prepass`) walks the stream
once without materializing outputs, snapshotting at every shard
boundary; then every shard replays its window range in parallel from
the checkpoint at its start (:func:`run_shard_from_checkpoint`),
bit-identical to the batch path because the per-timestamp randomness is
derived by absolute index.
"""

from __future__ import annotations

import copy
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.confusion import ConfusionCounts
from repro.runtime.stages import MetricsSink
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.utils.rng import RngLike

BACKENDS = ("thread", "process")


def validate_backend(backend: str) -> str:
    """Reject unknown worker-pool backends (shared by every consumer)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {list(BACKENDS)}"
        )
    return backend


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of window indices, ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self):
        if self.start < 0:
            raise ValueError(f"shard start must be >= 0, got {self.start}")
        if self.stop < self.start:
            raise ValueError(
                f"shard stop {self.stop} precedes start {self.start}"
            )

    @property
    def n_windows(self) -> int:
        return self.stop - self.start


def plan_shards(
    n_windows: int, n_shards: int, *, min_shard_size: int = 1
) -> List[Shard]:
    """Split ``[0, n_windows)`` into at most ``n_shards`` balanced shards.

    Shards are contiguous, cover every window exactly once, and differ
    in size by at most one window.  The plan never produces empty
    shards: the shard count is capped so that each shard holds at least
    ``min_shard_size`` windows (and never exceeds ``n_windows``).
    """
    if n_windows < 0:
        raise ValueError(f"n_windows must be >= 0, got {n_windows}")
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if min_shard_size <= 0:
        raise ValueError(
            f"min_shard_size must be positive, got {min_shard_size}"
        )
    if n_windows == 0:
        return []
    count = min(n_shards, max(1, n_windows // min_shard_size), n_windows)
    base, extra = divmod(n_windows, count)
    shards: List[Shard] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(start, start + size))
        start += size
    return shards


def clone_rng(rng: RngLike) -> RngLike:
    """An equivalent-but-independent rng for one shard worker.

    Seeds (``int``/``None``) pass through — ``derive_rng`` re-seeds a
    fresh parent from them on every call, so every shard derives the
    same children the batch path derives.  Generators are deep-copied so
    that each shard replays the *same* parent state the batch path
    consumed at stepper construction, without racing the caller's
    generator across workers.
    """
    if isinstance(rng, np.random.Generator):
        return copy.deepcopy(rng)
    return rng


@dataclass
class ShardResult:
    """The partial pipeline outcome of one shard, ready to merge."""

    shard: Shard
    answers: Dict[str, np.ndarray]
    true_answers: Dict[str, np.ndarray]
    counts: ConfusionCounts
    original: Optional[np.ndarray] = None
    released: Optional[np.ndarray] = None


def _shard_result(
    pipeline,
    matrix: np.ndarray,
    shard: Shard,
    released: np.ndarray,
    *,
    materialize: bool,
) -> ShardResult:
    """Match and count one shard's released windows (shared tail)."""
    matcher = pipeline.matcher
    answers = matcher.answer(released)
    true_answers = matcher.answer(matrix)
    # Accumulate through the sink so sharded counting can never diverge
    # from the batch/chunked micro-averaging rule.
    sink = MetricsSink()
    sink.update(true_answers, answers)
    counts = sink.confusion
    return ShardResult(
        shard=shard,
        answers=answers,
        true_answers=true_answers,
        counts=counts,
        original=matrix if materialize else None,
        released=released if materialize else None,
    )


def run_shard(
    pipeline,
    matrix: np.ndarray,
    shard: Shard,
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
    materialize: bool = True,
) -> ShardResult:
    """Execute one shard's windows through a seeked chunk stepper.

    ``matrix`` is the shard's slice of the indicator matrix (rows
    ``shard.start:shard.stop`` of the full stream); ``horizon`` is the
    *full* stream length, which budget-per-horizon mechanisms
    (user-level RR) need regardless of shard boundaries.
    """
    stepper = pipeline.runtime_mechanism.stepper(
        alphabet, rng=rng, horizon=horizon
    )
    stepper.seek(shard.start)
    released = stepper.step_block(matrix)
    return _shard_result(
        pipeline, matrix, shard, released, materialize=materialize
    )


@dataclass
class CheckpointPlan:
    """Outcome of the sequential scheduler-state prepass.

    ``snapshots[i]`` is the full release state *before* shard ``i``'s
    first window; ``decisions[i]`` is the recorded scheduler-decision
    slice for shard ``i``'s window range (``None`` when the mechanism
    has no decision replay and shards re-step instead).  ``trace`` is
    the authoritative accounting trace of the whole run — the merged
    result publishes it to ``mechanism.last_trace`` so partial shard
    traces never race it.
    """

    shards: List[Shard]
    snapshots: List[dict] = field(default_factory=list)
    decisions: List[Optional[tuple]] = field(default_factory=list)
    trace: Optional[object] = None


def checkpoint_prepass(
    pipeline,
    matrix: np.ndarray,
    shards: Sequence[Shard],
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
) -> CheckpointPlan:
    """Phase one of checkpointed sharding: walk, snapshot, record.

    Runs the sequential scheduler over the whole stream *without
    materializing released rows* (``advance_block``), snapshotting the
    release state at every shard boundary and extracting each shard's
    decision slice afterwards.  Cheap relative to a full sequential run:
    no output rows, no query matching, no per-row copies — and the
    replay phase it enables only pays Python-loop work at publishing
    timestamps.
    """
    stepper = pipeline.runtime_mechanism.stepper(
        alphabet, rng=rng, horizon=horizon, publish_trace=False
    )
    plan = CheckpointPlan(shards=list(shards))
    for shard in plan.shards:
        # Trace-free snapshots: replay never reads the trace prefix,
        # and copying it at every boundary would be quadratic in the
        # stream length.  The prepass trace on the plan stays the
        # authoritative accounting record.
        plan.snapshots.append(stepper.snapshot(include_trace=False))
        stepper.advance_block(matrix[shard.start : shard.stop])
    plan.decisions = [
        stepper.decision_slice(shard.start, shard.stop)
        for shard in plan.shards
    ]
    plan.trace = getattr(stepper.releaser, "trace", None)
    return plan


def run_shard_from_checkpoint(
    pipeline,
    matrix: np.ndarray,
    shard: Shard,
    snapshot: dict,
    decisions: Optional[tuple],
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
    materialize: bool = True,
) -> ShardResult:
    """Phase two: replay one shard's windows from its checkpoint.

    A fresh stepper is restored to the prepass state at ``shard.start``
    and either replays the recorded decisions (BD/BA — only publishing
    timestamps cost loop work) or re-steps the range (landmark).  Both
    are bit-identical to an uninterrupted sequential run because every
    timestamp's randomness comes from the same index-derived child
    stream.
    """
    stepper = pipeline.runtime_mechanism.stepper(
        alphabet, rng=rng, horizon=horizon, publish_trace=False
    )
    stepper.restore(snapshot)
    if decisions is not None:
        released = stepper.replay_block(matrix, decisions)
    else:
        released = stepper.step_block(matrix)
    return _shard_result(
        pipeline, matrix, shard, released, materialize=materialize
    )


def merge_results(
    parts: Sequence[ShardResult],
    *,
    alphabet: EventAlphabet,
    query_names: Sequence[str],
    alpha: float = 0.5,
    materialize: bool = True,
):
    """Merge per-shard results into one ``PipelineResult``.

    ``parts`` must already be in shard (window) order; concatenation is
    then exactly the batch layout.
    """
    from repro.runtime.executors import PipelineResult

    parts = sorted(parts, key=lambda part: part.shard.start)

    def join(vectors):
        if not vectors:
            return np.zeros(0, dtype=bool)
        return np.concatenate(vectors)

    answers = {
        name: join([part.answers[name] for part in parts])
        for name in query_names
    }
    true_answers = {
        name: join([part.true_answers[name] for part in parts])
        for name in query_names
    }
    sink = MetricsSink(alpha=alpha)
    for part in parts:
        sink.absorb(part.counts)
    original = released = None
    if materialize:
        width = len(alphabet)

        def join_matrix(blocks):
            if not blocks:
                return np.zeros((0, width), dtype=bool)
            return np.concatenate(blocks)

        original = IndicatorStream(
            alphabet, join_matrix([part.original for part in parts])
        )
        released = IndicatorStream(
            alphabet, join_matrix([part.released for part in parts])
        )
    return PipelineResult(
        answers=answers,
        true_answers=true_answers,
        original=original,
        released=released,
        sink=sink,
    )


def make_pool(backend: str, n_workers: int, *, initializer=None, initargs=()):
    """A worker pool for the chosen backend (caller must shut it down)."""
    validate_backend(backend)
    pool_type = (
        ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    )
    return pool_type(
        max_workers=n_workers, initializer=initializer, initargs=initargs
    )
