"""Shard planning, per-shard execution and result merging.

The service phase is embarrassingly parallel across windows for every
mechanism whose stepper can *seek* — skip a prefix of windows while
still drawing the randomness the batch path would draw for the
remainder (per-type flip PPMs, whole-matrix randomized response, the
identity).  :class:`~repro.runtime.executors.ShardedExecutor` splits
the stream into contiguous shards, runs each shard's windows through a
seeked chunk stepper on a worker pool, and merges the partial results
in shard order.

Bit-identity with :class:`~repro.runtime.executors.BatchExecutor` under
the same seed rests on two invariants:

1. **RNG by absolute window index** — every shard constructs its
   stepper from the *same* parent entropy (seeds re-derive, generators
   are state-cloned), then seeks to the shard's absolute start window,
   so each shard consumes exactly the slice of the child streams the
   batch path would spend on those windows;
2. **order-preserving merge** — per-query answer vectors, indicator
   slices and confusion counts concatenate/sum in shard order, which is
   window order.

Sequential schedulers (BD/BA, landmark) carry data-dependent state from
window to window and cannot seek, but they *can* checkpoint: their
releasers snapshot and restore the full release state (scheduler state,
accounting trace, last release, rng-pool position).  The sharded
executor parallelizes them in two phases — a cheap sequential
scheduler-state prepass (:func:`checkpoint_prepass`) walks the stream
once without materializing outputs, snapshotting at every shard
boundary; then every shard replays its window range in parallel from
the checkpoint at its start (:func:`run_shard_from_checkpoint`),
bit-identical to the batch path because the per-timestamp randomness is
derived by absolute index.

On the process backend both paths default to **zero-copy transport**
(:mod:`repro.runtime.shm`): the indicator matrix lives in one shared
segment, workers receive a :class:`ShardPlanes` bundle of
``(segment, dtype, shape)`` descriptors plus their shard bounds
(:func:`run_shard_zero_copy` /
:func:`run_shard_from_checkpoint_zero_copy`), deposit outputs into
preallocated shared planes and return a tiny :class:`ShardReceipt`;
:func:`merge_receipts` then stitches plane views instead of unpickling
and concatenating per-shard arrays.
"""

from __future__ import annotations

import copy
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.confusion import ConfusionCounts
from repro.runtime.shm import ArrayDescriptor, SegmentPlane, attach
from repro.runtime.stages import MetricsSink
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.utils.rng import RngLike

BACKENDS = ("thread", "process")


def validate_backend(backend: str) -> str:
    """Reject unknown worker-pool backends (shared by every consumer)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {list(BACKENDS)}"
        )
    return backend


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of window indices, ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self):
        if self.start < 0:
            raise ValueError(f"shard start must be >= 0, got {self.start}")
        if self.stop < self.start:
            raise ValueError(
                f"shard stop {self.stop} precedes start {self.start}"
            )

    @property
    def n_windows(self) -> int:
        return self.stop - self.start


def plan_shards(
    n_windows: int, n_shards: int, *, min_shard_size: int = 1
) -> List[Shard]:
    """Split ``[0, n_windows)`` into at most ``n_shards`` balanced shards.

    Shards are contiguous, cover every window exactly once, and differ
    in size by at most one window.  The plan never produces empty
    shards: the shard count is capped so that each shard holds at least
    ``min_shard_size`` windows (and never exceeds ``n_windows``).
    """
    if n_windows < 0:
        raise ValueError(f"n_windows must be >= 0, got {n_windows}")
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if min_shard_size <= 0:
        raise ValueError(
            f"min_shard_size must be positive, got {min_shard_size}"
        )
    if n_windows == 0:
        return []
    count = min(n_shards, max(1, n_windows // min_shard_size), n_windows)
    base, extra = divmod(n_windows, count)
    shards: List[Shard] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(start, start + size))
        start += size
    return shards


def clone_rng(rng: RngLike) -> RngLike:
    """An equivalent-but-independent rng for one shard worker.

    Seeds (``int``/``None``) pass through — ``derive_rng`` re-seeds a
    fresh parent from them on every call, so every shard derives the
    same children the batch path derives.  Generators are deep-copied so
    that each shard replays the *same* parent state the batch path
    consumed at stepper construction, without racing the caller's
    generator across workers.
    """
    if isinstance(rng, np.random.Generator):
        return copy.deepcopy(rng)
    return rng


@dataclass
class ShardResult:
    """The partial pipeline outcome of one shard, ready to merge."""

    shard: Shard
    answers: Dict[str, np.ndarray]
    true_answers: Dict[str, np.ndarray]
    counts: ConfusionCounts
    original: Optional[np.ndarray] = None
    released: Optional[np.ndarray] = None


def _shard_result(
    pipeline,
    matrix: np.ndarray,
    shard: Shard,
    released: np.ndarray,
    *,
    materialize: bool,
) -> ShardResult:
    """Match and count one shard's released windows (shared tail)."""
    matcher = pipeline.matcher
    answers = matcher.answer(released)
    true_answers = matcher.answer(matrix)
    # Accumulate through the sink so sharded counting can never diverge
    # from the batch/chunked micro-averaging rule.
    sink = MetricsSink()
    sink.update(true_answers, answers)
    counts = sink.confusion
    return ShardResult(
        shard=shard,
        answers=answers,
        true_answers=true_answers,
        counts=counts,
        original=matrix if materialize else None,
        released=released if materialize else None,
    )


def _seeked_release(
    pipeline,
    matrix: np.ndarray,
    shard: Shard,
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
) -> np.ndarray:
    """Release one shard's rows through a seeked chunk stepper."""
    stepper = pipeline.runtime_mechanism.stepper(
        alphabet, rng=rng, horizon=horizon
    )
    stepper.seek(shard.start)
    return stepper.step_block(matrix)


def run_shard(
    pipeline,
    matrix: np.ndarray,
    shard: Shard,
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
    materialize: bool = True,
) -> ShardResult:
    """Execute one shard's windows through a seeked chunk stepper.

    ``matrix`` is the shard's slice of the indicator matrix (rows
    ``shard.start:shard.stop`` of the full stream); ``horizon`` is the
    *full* stream length, which budget-per-horizon mechanisms
    (user-level RR) need regardless of shard boundaries.
    """
    released = _seeked_release(
        pipeline, matrix, shard, alphabet=alphabet, horizon=horizon, rng=rng
    )
    return _shard_result(
        pipeline, matrix, shard, released, materialize=materialize
    )


@dataclass
class CheckpointPlan:
    """Outcome of the sequential scheduler-state prepass.

    ``snapshots[i]`` is the full release state *before* shard ``i``'s
    first window; ``decisions[i]`` is the recorded scheduler-decision
    slice for shard ``i``'s window range (``None`` when the mechanism
    has no decision replay and shards re-step instead).  ``trace`` is
    the authoritative accounting trace of the whole run — the merged
    result publishes it to ``mechanism.last_trace`` so partial shard
    traces never race it.
    """

    shards: List[Shard]
    snapshots: List[dict] = field(default_factory=list)
    decisions: List[Optional[tuple]] = field(default_factory=list)
    trace: Optional[object] = None


def checkpoint_prepass(
    pipeline,
    matrix: np.ndarray,
    shards: Sequence[Shard],
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
) -> CheckpointPlan:
    """Phase one of checkpointed sharding: walk, snapshot, record.

    Runs the sequential scheduler over the whole stream *without
    materializing released rows* (``advance_block``), snapshotting the
    release state at every shard boundary and extracting each shard's
    decision slice afterwards.  ``advance_block`` drives the decision
    kernel (:mod:`repro.runtime.decisions`), so the prepass shrinks
    toward the publication steps alone: certified-skip runs collapse
    to constant trace appends with zero generator touches, landmark
    regular rows are hopped outright, and only boundary/publishing
    timestamps pay scalar Python work — on top of no output rows, no
    query matching and no per-row copies.  The replay phase it enables
    likewise only pays Python-loop work at publishing timestamps.
    """
    stepper = pipeline.runtime_mechanism.stepper(
        alphabet, rng=rng, horizon=horizon, publish_trace=False
    )
    plan = CheckpointPlan(shards=list(shards))
    for shard in plan.shards:
        # Trace-free snapshots: replay never reads the trace prefix,
        # and copying it at every boundary would be quadratic in the
        # stream length.  The prepass trace on the plan stays the
        # authoritative accounting record.
        plan.snapshots.append(stepper.snapshot(include_trace=False))
        stepper.advance_block(matrix[shard.start : shard.stop])
    plan.decisions = [
        stepper.decision_slice(shard.start, shard.stop)
        for shard in plan.shards
    ]
    plan.trace = getattr(stepper.releaser, "trace", None)
    return plan


def run_shard_from_checkpoint(
    pipeline,
    matrix: np.ndarray,
    shard: Shard,
    snapshot: dict,
    decisions: Optional[tuple],
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
    materialize: bool = True,
) -> ShardResult:
    """Phase two: replay one shard's windows from its checkpoint.

    A fresh stepper is restored to the prepass state at ``shard.start``
    and either replays the recorded decisions (BD/BA — only publishing
    timestamps cost loop work) or re-steps the range (landmark).  Both
    are bit-identical to an uninterrupted sequential run because every
    timestamp's randomness comes from the same index-derived child
    stream.
    """
    released = _replayed_release(
        pipeline,
        matrix,
        snapshot,
        decisions,
        alphabet=alphabet,
        horizon=horizon,
        rng=rng,
    )
    return _shard_result(
        pipeline, matrix, shard, released, materialize=materialize
    )


def _replayed_release(
    pipeline,
    matrix: np.ndarray,
    snapshot: dict,
    decisions: Optional[tuple],
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
) -> np.ndarray:
    """Release one shard's rows by replaying from a prepass snapshot."""
    stepper = pipeline.runtime_mechanism.stepper(
        alphabet, rng=rng, horizon=horizon, publish_trace=False
    )
    stepper.restore(snapshot)
    if decisions is not None:
        return stepper.replay_block(matrix, decisions)
    return stepper.step_block(matrix)


# ---------------------------------------------------------------------------
# Zero-copy shard transport (process backend)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlanes:
    """Descriptors of one run's shared-memory data plane.

    Everything a process-pool worker needs to reach its input rows and
    to deposit its outputs without a single pickled array:

    - ``matrix`` — the *full* indicator matrix; workers slice their
      shard's ``[start, stop)`` row range out of the attached view;
    - ``answers`` / ``truth`` — ``(n_queries, n_windows)`` boolean
      output planes (rows ordered as ``query_names``), absent when the
      pipeline registers no queries;
    - ``released`` — the ``(n_windows, width)`` released-rows output
      plane, absent when the run does not materialize streams.

    The whole object pickles to a few hundred bytes however many
    windows the stream holds — this is the pool payload that replaces
    per-shard matrix pickling.
    """

    matrix: ArrayDescriptor
    query_names: Tuple[str, ...]
    answers: Optional[ArrayDescriptor] = None
    truth: Optional[ArrayDescriptor] = None
    released: Optional[ArrayDescriptor] = None


@dataclass(frozen=True)
class ShardReceipt:
    """A zero-copy worker's return value: bounds plus tiny aggregates.

    The bulky outputs were already written into the shared planes; only
    the shard bounds and the four confusion counts ride back through
    the pool's result pickle.
    """

    shard: Shard
    counts: ConfusionCounts


@dataclass(frozen=True)
class TransportStats:
    """Bytes actually pickled into the worker pool for one run."""

    backend: str
    zero_copy: bool
    n_windows: int
    n_shards: int
    bytes_pickled: int

    @property
    def bytes_per_window(self) -> float:
        """Pool-transport cost per stream window (the bench metric)."""
        if self.n_windows == 0:
            return 0.0
        return self.bytes_pickled / self.n_windows


def measure_payload(*payloads) -> int:
    """Pickled size of the objects a pool submission would ship."""
    return sum(
        len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        for payload in payloads
    )


def build_shard_planes(
    plane: SegmentPlane,
    matrix: np.ndarray,
    query_names: Sequence[str],
    *,
    materialize: bool,
) -> ShardPlanes:
    """Populate a run's data plane: input matrix in, output planes
    preallocated.

    The caller owns ``plane`` and must close it in a ``try/finally``
    around the pool (see :class:`~repro.runtime.shm.SegmentPlane`).
    """
    n_windows, width = matrix.shape
    names = tuple(query_names)
    return ShardPlanes(
        matrix=plane.share(matrix),
        query_names=names,
        answers=(
            plane.allocate((len(names), n_windows), bool) if names else None
        ),
        truth=(
            plane.allocate((len(names), n_windows), bool) if names else None
        ),
        released=(
            plane.allocate((n_windows, width), bool) if materialize else None
        ),
    )


def _deposit_receipt(
    pipeline,
    planes: ShardPlanes,
    shard: Shard,
    matrix: np.ndarray,
    released: np.ndarray,
) -> ShardReceipt:
    """Write one shard's outputs into the planes; return the receipt."""
    matcher = pipeline.matcher
    answers = matcher.answer(released)
    true_answers = matcher.answer(matrix)
    if planes.released is not None:
        with attach(planes.released) as released_plane:
            released_plane[shard.start : shard.stop] = released
    if planes.answers is not None:
        with attach(planes.answers) as answers_plane:
            for row, name in enumerate(planes.query_names):
                answers_plane[row, shard.start : shard.stop] = answers[name]
    if planes.truth is not None:
        with attach(planes.truth) as truth_plane:
            for row, name in enumerate(planes.query_names):
                truth_plane[row, shard.start : shard.stop] = true_answers[
                    name
                ]
    # Same accumulation rule as _shard_result: through the sink, so
    # zero-copy counting can never diverge from the pickled path.
    sink = MetricsSink()
    sink.update(true_answers, answers)
    return ShardReceipt(shard=shard, counts=sink.confusion)


def _seek_task(
    matrix, pipeline, planes, shard, *, alphabet, horizon, rng
) -> ShardReceipt:
    """Release + deposit in one frame, so matrix views die on return."""
    released = _seeked_release(
        pipeline, matrix, shard, alphabet=alphabet, horizon=horizon, rng=rng
    )
    return _deposit_receipt(pipeline, planes, shard, matrix, released)


def run_shard_zero_copy(
    pipeline,
    planes: ShardPlanes,
    shard: Shard,
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
) -> ShardReceipt:
    """Zero-copy twin of :func:`run_shard`.

    Attaches the shared matrix, releases rows ``[start, stop)`` through
    a seeked stepper, writes the outputs into the shared planes and
    returns only a :class:`ShardReceipt`.  All views of the attached
    segment live in the task helper's frame, which is gone before the
    attachment closes — the worker unmaps cleanly between tasks.
    """
    attachment = attach(planes.matrix)
    with attachment:
        return _seek_task(
            attachment.array[shard.start : shard.stop],
            pipeline,
            planes,
            shard,
            alphabet=alphabet,
            horizon=horizon,
            rng=rng,
        )


def _replay_task(
    matrix,
    pipeline,
    planes,
    shard,
    snapshot,
    decisions,
    *,
    alphabet,
    horizon,
    rng,
) -> ShardReceipt:
    """Checkpoint-replay + deposit in one frame (views die on return)."""
    released = _replayed_release(
        pipeline,
        matrix,
        snapshot,
        decisions,
        alphabet=alphabet,
        horizon=horizon,
        rng=rng,
    )
    return _deposit_receipt(pipeline, planes, shard, matrix, released)


def run_shard_from_checkpoint_zero_copy(
    pipeline,
    planes: ShardPlanes,
    shard: Shard,
    snapshot: dict,
    decisions: Optional[tuple],
    *,
    alphabet: EventAlphabet,
    horizon: int,
    rng: RngLike,
) -> ShardReceipt:
    """Zero-copy twin of :func:`run_shard_from_checkpoint`."""
    attachment = attach(planes.matrix)
    with attachment:
        return _replay_task(
            attachment.array[shard.start : shard.stop],
            pipeline,
            planes,
            shard,
            snapshot,
            decisions,
            alphabet=alphabet,
            horizon=horizon,
            rng=rng,
        )


def merge_receipts(
    receipts: Sequence[ShardReceipt],
    plane: SegmentPlane,
    planes: ShardPlanes,
    *,
    indicators: IndicatorStream,
    alpha: float = 0.5,
    materialize: bool = True,
):
    """Merge a zero-copy run: stitch plane views into a result.

    The per-query vectors and the released matrix already sit
    contiguously in window order inside the output planes — workers
    wrote them there by absolute row index — so merging is one bulk
    copy out of each plane (into arrays that outlive the segments)
    plus the confusion-count sum.  Must be called *before* the owning
    plane is closed.
    """
    from repro.runtime.executors import PipelineResult

    query_names = planes.query_names
    answers: Dict[str, np.ndarray] = {}
    true_answers: Dict[str, np.ndarray] = {}
    if planes.answers is not None:
        answers_plane = plane.view(planes.answers)
        truth_plane = plane.view(planes.truth)
        for row, name in enumerate(query_names):
            answers[name] = answers_plane[row].copy()
            true_answers[name] = truth_plane[row].copy()
    sink = MetricsSink(alpha=alpha)
    total = ConfusionCounts()
    for receipt in sorted(receipts, key=lambda receipt: receipt.shard.start):
        total = total + receipt.counts
    sink.absorb(total)
    original = released = None
    if materialize:
        # The parent already holds the original stream — nothing to
        # reassemble — and IndicatorStream's constructor copies the
        # released plane's rows, so the result outlives the segments.
        original = indicators
        released = IndicatorStream(
            indicators.alphabet, plane.view(planes.released)
        )
    return PipelineResult(
        answers=answers,
        true_answers=true_answers,
        original=original,
        released=released,
        sink=sink,
    )


def merge_results(
    parts: Sequence[ShardResult],
    *,
    alphabet: EventAlphabet,
    query_names: Sequence[str],
    alpha: float = 0.5,
    materialize: bool = True,
):
    """Merge per-shard results into one ``PipelineResult``.

    ``parts`` must already be in shard (window) order; slice-filling
    preallocated outputs then reproduces exactly the batch layout.
    Outputs are allocated once at their final size and filled by shard
    slice — no per-shard list growth, no ``np.concatenate`` doubling
    of peak memory.
    """
    from repro.runtime.executors import PipelineResult

    parts = sorted(parts, key=lambda part: part.shard.start)
    total = sum(part.shard.n_windows for part in parts)
    width = len(alphabet)

    def fill_vectors(select):
        vectors = {name: np.empty(total, dtype=bool) for name in query_names}
        offset = 0
        for part in parts:
            stop = offset + part.shard.n_windows
            source = select(part)
            for name in query_names:
                vectors[name][offset:stop] = source[name]
            offset = stop
        return vectors

    answers = fill_vectors(lambda part: part.answers)
    true_answers = fill_vectors(lambda part: part.true_answers)
    # One confusion accumulation instead of one sink rebind per shard.
    merged_counts = ConfusionCounts()
    for part in parts:
        merged_counts = merged_counts + part.counts
    sink = MetricsSink(alpha=alpha)
    sink.absorb(merged_counts)
    original = released = None
    if materialize:

        def fill_matrix(select):
            matrix = np.empty((total, width), dtype=bool)
            offset = 0
            for part in parts:
                stop = offset + part.shard.n_windows
                matrix[offset:stop] = select(part)
                offset = stop
            return matrix

        original = IndicatorStream(
            alphabet, fill_matrix(lambda part: part.original)
        )
        released = IndicatorStream(
            alphabet, fill_matrix(lambda part: part.released)
        )
    return PipelineResult(
        answers=answers,
        true_answers=true_answers,
        original=original,
        released=released,
        sink=sink,
    )


def make_pool(backend: str, n_workers: int, *, initializer=None, initargs=()):
    """A worker pool for the chosen backend (caller must shut it down)."""
    validate_backend(backend)
    pool_type = (
        ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    )
    return pool_type(
        max_workers=n_workers, initializer=initializer, initargs=initargs
    )
