"""Reference (pre-runtime) implementations of the sequential mechanisms.

These are the seed implementations of the BD/BA and landmark release
loops: one ``derive_rng`` call per window, straight-line Python.  They
are kept for two jobs:

- **bit-identity guardrail** — ``tests/test_runtime_reference.py``
  asserts the pooled fast paths reproduce these loops exactly, for
  every parent-rng kind; any drift in the vectorized derivation would
  fail there first;
- **speedup measurement** — ``benchmarks/test_bench_runtime.py`` runs
  the fig4 workload through these loops as the "legacy engine path"
  arm the runtime is compared against.

Do not use them in production paths; they are deliberately slow.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.mechanisms.laplace import laplace_noise
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike, derive_rng


def reference_w_event_perturb(
    mechanism, stream: IndicatorStream, *, rng: RngLike = None
) -> IndicatorStream:
    """The seed per-window w-event release loop (BD/BA schedulers)."""
    from repro.baselines.w_event import ReleaseTrace

    matrix = stream.matrix_view().astype(float)
    n_windows, n_types = matrix.shape
    trace = ReleaseTrace()
    scheduler_state = mechanism._initial_scheduler_state()
    last_release: Optional[np.ndarray] = None
    released = np.zeros_like(matrix)
    dissimilarity_scale = (
        mechanism.w * mechanism.sensitivity / mechanism.epsilon_dissimilarity
    )
    for t in range(n_windows):
        true_vector = matrix[t]
        rng_t = derive_rng(rng, "w-event", t)
        budget = mechanism._publication_budget(t, trace, scheduler_state)
        publish = False
        if last_release is None:
            publish = budget > 0
        elif budget > 0:
            true_distance = float(np.abs(true_vector - last_release).mean())
            noisy_distance = true_distance + float(
                laplace_noise(rng_t, dissimilarity_scale / n_types)
            )
            publish = noisy_distance > mechanism.sensitivity / budget
        trace.dissimilarity_budgets.append(
            mechanism.epsilon_dissimilarity / mechanism.w
        )
        if publish:
            noise = laplace_noise(
                rng_t, mechanism.sensitivity / budget, size=n_types
            )
            last_release = true_vector + noise
            trace.published.append(True)
            trace.publication_budgets.append(budget)
            mechanism._after_publication(t, budget, trace, scheduler_state)
        else:
            if last_release is None:
                last_release = np.full(n_types, 0.5)
            trace.published.append(False)
            trace.publication_budgets.append(0.0)
        released[t] = last_release
    return stream.with_matrix(released >= 0.5)


def reference_landmark_perturb(
    mechanism,
    stream: IndicatorStream,
    landmarks: Sequence[bool],
    *,
    rng: RngLike = None,
) -> IndicatorStream:
    """The seed per-window landmark-privacy release loop."""
    landmarks = np.asarray(landmarks, dtype=bool)
    matrix = stream.matrix_view().astype(float)
    n_windows, n_types = matrix.shape
    released = np.zeros_like(matrix)
    n_landmarks = int(landmarks.sum())
    landmark_dissimilarity = mechanism.landmark_epsilon / 2.0
    remaining_publication = mechanism.landmark_epsilon / 2.0
    landmarks_left = n_landmarks
    last_release: Optional[np.ndarray] = None
    for t in range(n_windows):
        rng_t = derive_rng(rng, "landmark", t)
        true_vector = matrix[t]
        if landmarks[t]:
            nominal = (
                remaining_publication / landmarks_left
                if landmarks_left > 0
                else 0.0
            )
            publish = last_release is None
            if not publish and nominal > 0 and n_landmarks > 0:
                dissimilarity_scale = (
                    n_landmarks
                    * mechanism.sensitivity
                    / landmark_dissimilarity
                )
                true_distance = float(
                    np.abs(true_vector - last_release).mean()
                )
                noisy_distance = true_distance + float(
                    laplace_noise(rng_t, dissimilarity_scale / n_types)
                )
                publish = noisy_distance > mechanism.sensitivity / nominal
            if publish and nominal > 0:
                noise = laplace_noise(
                    rng_t, mechanism.sensitivity / nominal, size=n_types
                )
                last_release = true_vector + noise
                remaining_publication -= nominal
            elif last_release is None:
                last_release = np.full(n_types, 0.5)
            landmarks_left = max(0, landmarks_left - 1)
            released[t] = last_release
        else:
            noise = laplace_noise(
                rng_t,
                mechanism.sensitivity / mechanism.regular_epsilon,
                size=n_types,
            )
            released[t] = true_vector + noise
    return stream.with_matrix(released >= 0.5)


class ReferenceAnalyticEstimator:
    """The seed implementation of the analytic quality estimator.

    Re-extracts the per-element indicator columns on every candidate
    evaluation, as the seed did; float-identical to the vectorized
    :class:`~repro.core.quality_model.AnalyticQualityEstimator`.
    """

    def __init__(self, history, private_pattern, target_patterns, *, alpha=0.5):
        from repro.core.quality_model import _check_setup

        _check_setup(history, private_pattern, list(target_patterns))
        self.history = history
        self.private_pattern = private_pattern
        self.target_patterns = list(target_patterns)
        self.alpha = alpha
        self._targets = []
        matrix = history.matrix_view()
        for pattern in self.target_patterns:
            distinct = list(dict.fromkeys(pattern.elements))
            columns = history.alphabet.indices(distinct)
            truth = matrix[:, columns].all(axis=1)
            self._targets.append((distinct, columns, truth))
        self._matrix = matrix

    def evaluate(self, allocation):
        from repro.core.quality_model import (
            _flip_probabilities_by_type,
        )
        from repro.metrics.confusion import ConfusionCounts
        from repro.metrics.quality import DataQuality

        flip_by_type = _flip_probabilities_by_type(
            self.private_pattern, allocation
        )
        total = ConfusionCounts()
        n_windows = self.history.n_windows
        for (distinct, columns, truth) in self._targets:
            presence = np.empty((n_windows, len(distinct)), dtype=float)
            for position, element in enumerate(distinct):
                indicator = self._matrix[:, columns[position]].astype(float)
                p = flip_by_type.get(element)
                if p is None:
                    presence[:, position] = indicator
                else:
                    presence[:, position] = indicator * (1.0 - p) + (
                        1.0 - indicator
                    ) * p
            detection = presence.prod(axis=1)
            tp = float(detection[truth].sum())
            fp = float(detection[~truth].sum())
            positives = float(truth.sum())
            negatives = float((~truth).sum())
            total = total + ConfusionCounts(
                tp=tp,
                fp=fp,
                fn=positives - tp,
                tn=negatives - fp,
            )
        return DataQuality.from_confusion(total, alpha=self.alpha)


def reference_perturb(
    mechanism, stream: IndicatorStream, *, rng: RngLike = None
) -> IndicatorStream:
    """Dispatch to the seed release loop matching ``mechanism``.

    Mechanisms whose seed implementation was already vectorized
    (randomized-response families) go through their own ``perturb``.
    """
    from repro.baselines.landmark import LandmarkPrivacy
    from repro.baselines.w_event import WEventMechanism

    if isinstance(mechanism, WEventMechanism):
        return reference_w_event_perturb(mechanism, stream, rng=rng)
    if isinstance(mechanism, LandmarkPrivacy):
        return reference_landmark_perturb(
            mechanism, stream, mechanism._landmarks, rng=rng
        )
    return mechanism.perturb(stream, rng=rng)
