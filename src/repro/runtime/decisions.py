"""The scheduler decision kernel: one **plan → scan → resolve** pipeline.

The sequential release mechanisms (BD/BA in
:mod:`repro.baselines.w_event`, landmark in
:mod:`repro.baselines.landmark`) share one shape of per-timestamp work:
estimate how far the data drifted from the last release, add Laplace
noise, compare against a budget-derived publish threshold, and either
publish (spending budget, drawing a noise vector) or approximate
(re-emit the last release, free of charge).  Historically each releaser
hand-rolled that loop in Python; this module lifts the decision logic
into a shared kernel with three stages:

**plan**
    Each scheduler declares its decision rule *as data* — a
    :class:`DecisionRule` bundling a vectorized publish-budget schedule,
    the zero-budget stretch predicate and the post-publication state
    transition — instead of owning a bespoke loop.

**scan**
    A vectorized U-space pass over a block: the per-timestamp first
    uniforms (:meth:`~repro.runtime.rng_pool.IndexedRngPool.first_uniforms`)
    are pushed through the Laplace inverse CDF
    (:func:`laplace_noise_from_uniforms`) and compared against the
    schedule's publish thresholds with a configurable safety margin
    (:func:`classify_decisions`), classifying every timestamp as
    *certainly-skip*, *certainly-publish-candidate* or *boundary*.

**resolve**
    Contiguous certified-skip runs are bulk-applied — constant trace
    appends, released rows filled from the last release, **zero
    generator touches** — while boundary and publication timestamps
    fall back to the exact scalar arithmetic of the original loop,
    preserving bit-identity by construction: a certified skip is only a
    skip the scalar path would also have taken, and every timestamp
    that might publish is decided by exactly the old code path.

Why the margin is sound: the scan's vectorized ``numpy.log`` may differ
from the scalar path's ``math.log`` in the last ulp, and the vectorized
distance/threshold arithmetic may round differently than the scalar
spelling.  A timestamp is therefore certified only when its decision
score clears the threshold by more than ``margin * (1 + |noise| + θ)``
— astronomically wider than any ulp-level disagreement at the default
``1e-9``, yet vanishingly unlikely to catch a real decision (the score
is a continuous random variable).  Timestamps inside the band resolve
through the scalar arithmetic, so a margin that is *too wide* only
costs speed, never correctness.  ``scan=exact`` (audit mode)
additionally re-verifies every certified skip against the scalar
arithmetic and raises :class:`ScanMarginError` on disagreement.

The pure helpers (:func:`laplace_noise_from_uniforms`,
:func:`decision_thresholds`, :func:`classify_decisions`) are
arrays-in/arrays-out with no object state — this is the documented seam
for a future ``numba``/GPU decision executor with a counter-based RNG:
an accelerator only needs to reproduce these three functions over its
own uniform plane and hand the boundary indices back to the host.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.obs.metrics import default_registry

__all__ = [
    "BOUNDARY",
    "CANDIDATE",
    "CERTAIN_SKIP",
    "DecisionRule",
    "LandmarkKernel",
    "ScanConfig",
    "ScanMarginError",
    "WEventKernel",
    "classify_decisions",
    "decision_thresholds",
    "laplace_noise_from_uniforms",
]

#: Verdict codes of :func:`classify_decisions` (uint8 array values).
CERTAIN_SKIP = 0
CANDIDATE = 1
BOUNDARY = 2

#: Valid ``scan=`` modes, in spec-string spelling.
SCAN_MODES = ("margin", "exact", "off")

#: Power-of-two buckets for the scan-segment-size histogram (rows per
#: vectorized scan, 1 .. the segment cap).
_SEGMENT_BUCKETS = tuple(float(2**i) for i in range(14))


def _kernel_telemetry():
    """The decision kernels' counters, fetched from the *current*
    default registry per block.

    Resolved lazily (not cached on the kernel) so a kernel pickled
    into a cluster worker reports into that worker's per-task registry
    — the increments then ride the ``_METRICS`` frame back to the
    parent.  Three dict lookups per block, amortized over the block's
    rows.
    """
    registry = default_registry()
    return (
        registry.counter(
            "repro_decisions_certified_rows_total",
            "Rows bulk-skipped under a certified scan verdict.",
        ),
        registry.counter(
            "repro_decisions_boundary_rows_total",
            "Rows resolved by the exact scalar step.",
        ),
        registry.counter(
            "repro_decisions_zero_budget_rows_total",
            "Rows bulk-approximated over zero-budget stretches.",
        ),
        registry.histogram(
            "repro_decisions_scan_segment_rows",
            "Rows classified per vectorized scan segment.",
            buckets=_SEGMENT_BUCKETS,
        ),
    )

#: Upper bound on one scan segment's row count.  Segments double from
#: the prefetch granularity while the stream stays skip-only and are
#: invalidated at every publication, so the bound caps the vector work
#: a publication can throw away without limiting how far bulk skips
#: reach on stable stretches (consuming a segment just starts the
#: next one).
_SCAN_SEGMENT_MAX = 8192

#: Exact scalar steps taken after a publication before the next scan
#: segment is built.  Publications invalidate the segment cache, so on
#: publish-dense stretches (short skip runs) eager rescanning pays
#: per-publication vector work for runs too short to matter — the
#: warm-up keeps those stretches at scalar-loop speed and only re-arms
#: the scan once skips persist, which is exactly when certified runs
#: get long enough to win (measured: 16 holds publish-dense BD/BA at
#: scalar parity while still catching every budget-depleted stretch).
_SCAN_WARMUP = 16


class ScanMarginError(RuntimeError):
    """Audit mode found a certified skip the scalar arithmetic rejects.

    Raised only under ``scan=exact``; seeing this means the configured
    safety margin is too narrow for the platform's ``numpy.log`` /
    ``math.log`` disagreement and must be widened.
    """


@dataclass(frozen=True)
class ScanConfig:
    """Tunables of the U-space decision scan.

    Attributes
    ----------
    mode:
        ``"margin"`` (the default) certifies skip runs through the
        margin classification; ``"exact"`` additionally re-verifies
        every certified skip with the exact scalar arithmetic (the
        audit mode — slow, raises :class:`ScanMarginError` on any
        disagreement); ``"off"`` disables the scan entirely and runs
        the per-timestamp scalar loop (the pre-kernel behavior, for
        debugging).
    margin:
        The safety margin of the certification band (see the module
        docstring for why the default is sound).
    prefetch_min:
        Blocks at least this long precompute their first uniforms
        vectorized (the former ``_UNIFORM_PREFETCH_MIN``); shorter
        blocks — single pushes, async micro-batches — draw per-step,
        which is cheaper below this size.  Both paths produce
        bit-identical draws.
    """

    mode: str = "margin"
    margin: float = 1e-9
    prefetch_min: int = 32

    def __post_init__(self):
        if self.mode not in SCAN_MODES:
            raise ValueError(
                f"unknown scan mode {self.mode!r}; valid scan modes: "
                f"{', '.join(SCAN_MODES)}"
            )
        if not self.margin > 0.0:
            raise ValueError(
                f"scan margin must be positive, got {self.margin}"
            )
        if self.prefetch_min < 1:
            raise ValueError(
                f"scan prefetch_min must be >= 1, got {self.prefetch_min}"
            )

    @property
    def enabled(self) -> bool:
        """Whether the scan runs at all (``margin`` or ``exact``)."""
        return self.mode != "off"

    @property
    def audit(self) -> bool:
        """Whether certified skips are re-verified (``exact`` mode)."""
        return self.mode == "exact"

    @classmethod
    def coerce(cls, value: Union[None, str, "ScanConfig"]) -> "ScanConfig":
        """Normalize a constructor argument into a :class:`ScanConfig`.

        ``None`` means the defaults, a string names a mode, and a
        config passes through — so mechanism constructors can take
        ``scan="off"`` as tersely as ``scan=ScanConfig(...)``.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(
            f"scan must be a ScanConfig, a mode string or None, "
            f"got {value!r}"
        )

    @classmethod
    def from_options(
        cls,
        scan: Optional[str] = None,
        margin: Optional[float] = None,
        prefetch: Optional[int] = None,
    ) -> Optional["ScanConfig"]:
        """Build a config from spec-grammar options, ``None`` if unset.

        This is the mechanism factories' entry point for specs like
        ``"bd:scan=off"`` or ``"bd:margin=1e-9,prefetch=64"`` — any
        option given yields a config (unset options keep defaults),
        all-``None`` yields ``None`` so the mechanism falls back to its
        own default.
        """
        if scan is None and margin is None and prefetch is None:
            return None
        defaults = cls()
        return cls(
            mode=scan if scan is not None else defaults.mode,
            margin=float(margin) if margin is not None else defaults.margin,
            prefetch_min=(
                int(prefetch) if prefetch is not None else defaults.prefetch_min
            ),
        )


@dataclass(frozen=True)
class DecisionRule:
    """One scheduler's decision rule, declared as data (the *plan*).

    The callables mirror the scheduler hooks on
    :class:`~repro.baselines.w_event.WEventMechanism`:

    - ``budget_schedule(t0, count, state)`` — the *exact* per-timestamp
      publication budgets for ``[t0, t0 + count)`` under the assumption
      that no publication occurs in the span (bit-equal floats to
      calling the scalar ``_publication_budget`` per step).  Returns
      ``None`` when the scheduler declares no vectorized schedule, in
      which case the kernel falls back to the scalar loop;
    - ``publication_budget(t, trace, state)`` — the scalar budget (may
      mutate the state exactly as the scheduler's per-step call does);
    - ``zero_budget_until(t, state)`` — exclusive end of a
      data-independent zero-budget stretch (BA's nullified periods);
    - ``after_publication(t, budget, trace, state)`` — post-publication
      state transition;
    - ``after_skip_run(t_last, trace, state)`` — state normalization
      after a bulk-applied skip run: the scalar loop calls
      ``publication_budget`` at every timestamp, and schedulers whose
      budget call prunes state (BD's sliding publication window) must
      reproduce the pruned state the scalar loop would hold after its
      last call at ``t_last``.
    """

    budget_schedule: Callable[[int, int, Dict], Optional[np.ndarray]]
    publication_budget: Callable[[int, object, Dict], float]
    zero_budget_until: Callable[[int, Dict], int]
    after_publication: Callable[[int, float, object, Dict], None]
    after_skip_run: Callable[[int, object, Dict], None]


# ---------------------------------------------------------------------------
# The pure scan stage (accelerator seam: arrays in, arrays out)
# ---------------------------------------------------------------------------


def laplace_noise_from_uniforms(
    uniforms: np.ndarray, scale: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized replay of ``Generator.laplace(0, scale)`` first draws.

    ``uniforms`` are the per-index first ``next_double`` values (from
    :meth:`~repro.runtime.rng_pool.IndexedRngPool.first_uniforms`);
    the return is ``(noises, needs_exact)`` where ``noises`` replays
    numpy's ``random_laplace`` branch arithmetic —
    ``-scale*log(2 - 2u)`` for ``u >= 1/2``, ``scale*log(2u)`` for
    ``0 < u < 1/2`` — through ``numpy.log`` (equal to the scalar
    ``math.log`` spelling up to ulps; consumers must protect decisions
    with a margin), and ``needs_exact`` flags ``u <= 0`` rows, where
    numpy retries internally and only the real generator reproduces the
    draw.
    """
    uniforms = np.asarray(uniforms, dtype=float)
    needs_exact = uniforms <= 0.0
    upper = uniforms >= 0.5
    arguments = np.where(
        upper, 2.0 - uniforms - uniforms, uniforms + uniforms
    )
    # Flagged rows get a harmless argument so no log(0) warning fires;
    # their noise value is never read.
    arguments[needs_exact] = 1.0
    noises = np.log(arguments)
    noises = np.where(upper, -scale * noises, scale * noises)
    return noises, needs_exact


def decision_thresholds(
    budgets: np.ndarray, sensitivity: float
) -> np.ndarray:
    """Publish thresholds ``sensitivity / budget`` (``inf`` ⇔ never).

    A timestamp publishes when its noisy distance exceeds the error a
    publication would itself introduce; zero (or negative) budget means
    the threshold is unreachable and the timestamp certainly skips —
    encoded as ``+inf`` so one comparison covers both cases.
    """
    budgets = np.asarray(budgets, dtype=float)
    thresholds = np.full(budgets.shape, np.inf)
    positive = budgets > 0.0
    np.divide(sensitivity, budgets, out=thresholds, where=positive)
    return thresholds


def classify_decisions(
    distances: np.ndarray,
    noises: np.ndarray,
    needs_exact: np.ndarray,
    thresholds: np.ndarray,
    margin: float,
) -> np.ndarray:
    """Margin-certified three-way classification of a block (uint8).

    Returns :data:`CERTAIN_SKIP` where the decision score
    ``distance + noise`` sits below the threshold by more than the
    tolerance band (or the threshold is ``inf`` — zero budget skips
    whatever the randomness), :data:`CANDIDATE` where it clears the
    threshold by more than the band, and :data:`BOUNDARY` for rows
    inside the band or flagged ``needs_exact`` — rows the resolver must
    decide with the exact scalar arithmetic.

    The tolerance scales with the magnitudes entering the comparison
    (``margin * (1 + |noise| + θ)``) so one relative knob covers blocks
    whose scales differ by orders of magnitude.
    """
    thresholds = np.asarray(thresholds, dtype=float)
    infinite = ~np.isfinite(thresholds)
    finite_thresholds = np.where(infinite, 0.0, thresholds)
    tolerance = margin * (1.0 + np.abs(noises) + finite_thresholds)
    scores = distances + noises
    verdicts = np.full(thresholds.shape, BOUNDARY, dtype=np.uint8)
    verdicts[scores > finite_thresholds + tolerance] = CANDIDATE
    verdicts[scores < finite_thresholds - tolerance] = CERTAIN_SKIP
    # Rows whose uniform the vectorized transform cannot replay are
    # never certified either way...
    verdicts[np.asarray(needs_exact, dtype=bool)] = BOUNDARY
    # ...but zero budget skips regardless of the randomness: the scalar
    # loop never even computes the noise there.
    verdicts[infinite] = CERTAIN_SKIP
    return verdicts


# ---------------------------------------------------------------------------
# The w-event resolve stage
# ---------------------------------------------------------------------------


class WEventKernel:
    """Plan → scan → resolve driver for one w-event releaser.

    The *host* is an :class:`~repro.baselines.w_event.OnlineReleaser`:
    it owns the mutable release state (``t``, ``trace``,
    ``last_release``, ``scheduler_state``, the rng pool) while the
    kernel owns the decision pipeline.  ``run_block`` is bit-identical
    to the pre-kernel scalar loop in every mode — the scan only decides
    *which* timestamps may be bulk-skipped, never what any timestamp
    releases.
    """

    def __init__(
        self,
        rule: DecisionRule,
        config: ScanConfig,
        *,
        n_types: int,
        sensitivity: float,
        dissimilarity_scale: float,
        dissimilarity_charge: float,
    ):
        self.rule = rule
        self.config = config
        self.n_types = n_types
        self.sensitivity = sensitivity
        self.scale = dissimilarity_scale
        self.charge = dissimilarity_charge

    # -- resolve -------------------------------------------------------

    def run_block(self, host, matrix: np.ndarray, released) -> None:
        """Release a block (``released=None`` ⇒ prepass, rows skipped).

        Per-timestamp draws come from the host's index-derived child
        streams, so the kernel is free to consume them smartly without
        changing a single output bit: certified-skip runs and
        zero-budget stretches touch no generator at all, and only
        publishing timestamps install a child and draw from it.
        """
        rule = self.rule
        config = self.config
        n = matrix.shape[0]
        if n == 0:
            return
        uniforms = (
            host._children.first_uniforms(host.t, host.t + n)
            if n >= config.prefetch_min
            else None
        )
        scanning = config.enabled and uniforms is not None
        trace = host.trace
        published = trace.published
        publication_budgets = trace.publication_budgets
        dissimilarity_budgets = trace.dissimilarity_budgets
        charge = self.charge
        state = host.scheduler_state
        # Scan segment cache: verdicts for rows [seg_row, seg_stop)
        # computed against the state and last release at seg_row;
        # ``stops`` are the segment-relative offsets of non-certified
        # rows.  Valid until a publication changes the threshold
        # schedule or the reference release.  Segments are *bounded*
        # (starting at the prefetch granularity, doubling while runs
        # stay skip-only) because every publication invalidates the
        # cache — scanning to the end of the block would redo O(n)
        # vector work per publication, quadratic on publish-dense
        # streams, while a bounded segment costs O(chunk) there and
        # still amortizes to one pass over skip-dominated stretches.
        chunk = config.prefetch_min
        seg_row = -1
        seg_stop = 0
        seg_stops: Optional[np.ndarray] = None
        cooldown = 0
        row = 0
        (
            obs_certified,
            obs_boundary,
            obs_zero_budget,
            obs_segments,
        ) = _kernel_telemetry()
        while row < n:
            last_release = host.last_release
            if last_release is not None:
                skip = min(
                    rule.zero_budget_until(host.t, state) - host.t,
                    n - row,
                )
                if skip > 0:
                    # Zero budget, data-independent: approximate in
                    # bulk (no randomness is consumed here).
                    if released is not None:
                        released[row : row + skip] = last_release
                    published.extend_constant(False, skip)
                    publication_budgets.extend_constant(0.0, skip)
                    dissimilarity_budgets.extend_constant(charge, skip)
                    obs_zero_budget.inc(skip)
                    host.t += skip
                    row += skip
                    continue
                if scanning and cooldown == 0:
                    if seg_stops is None or row < seg_row:
                        chunk = config.prefetch_min
                    elif row >= seg_stop:
                        # The previous segment was consumed without a
                        # publication: the stream is in a stable
                        # stretch, so scan farther ahead this time.
                        chunk = min(chunk * 2, _SCAN_SEGMENT_MAX)
                        seg_stops = None
                    if seg_stops is None:
                        seg_row = row
                        seg_stop = min(n, row + chunk)
                        seg_stops = self._scan_segment(
                            host, matrix, uniforms, row, seg_stop
                        )
                        if seg_stops is None:
                            # No vectorized schedule: scalar loop.
                            scanning = False
                        else:
                            obs_segments.observe(seg_stop - row)
                    if seg_stops is not None:
                        run = self._certified_run(
                            seg_stops, seg_row, row, seg_stop
                        )
                        if run > 0:
                            if config.audit:
                                self._audit_run(
                                    host, matrix, uniforms, row, run
                                )
                            if released is not None:
                                released[row : row + run] = last_release
                            published.extend_constant(False, run)
                            publication_budgets.extend_constant(0.0, run)
                            dissimilarity_budgets.extend_constant(
                                charge, run
                            )
                            rule.after_skip_run(
                                host.t + run - 1, trace, state
                            )
                            obs_certified.inc(run)
                            host.t += run
                            row += run
                            continue
            published_now = self._exact_step(
                host, matrix, released, row, uniforms
            )
            obs_boundary.inc()
            if published_now:
                # The publication changed the budget schedule and the
                # reference release; certified verdicts past this row
                # are stale.
                seg_stops = None
                cooldown = _SCAN_WARMUP
            elif cooldown:
                cooldown -= 1
            row += 1

    def _scan_segment(
        self, host, matrix, uniforms, row: int, stop: int
    ) -> Optional[np.ndarray]:
        """Scan rows ``[row, stop)`` against the current state.

        Returns the segment-relative offsets of rows that are *not*
        certified skips (``None`` when the scheduler declares no
        vectorized budget schedule).  Only valid while no publication
        occurs — the resolver drops the cache at each publication.
        """
        count = stop - row
        budgets = self.rule.budget_schedule(
            host.t, count, host.scheduler_state
        )
        if budgets is None:
            return None
        thresholds = decision_thresholds(budgets, self.sensitivity)
        distances = (
            np.add.reduce(
                np.abs(matrix[row:stop] - host.last_release), axis=1
            )
            / self.n_types
        )
        noises, needs_exact = laplace_noise_from_uniforms(
            uniforms[row:stop], self.scale
        )
        verdicts = classify_decisions(
            distances, noises, needs_exact, thresholds, self.config.margin
        )
        return np.nonzero(verdicts != CERTAIN_SKIP)[0]

    @staticmethod
    def _certified_run(
        seg_stops: np.ndarray, seg_row: int, row: int, seg_stop: int
    ) -> int:
        """Length of the certified-skip run starting at ``row``."""
        offset = row - seg_row
        position = np.searchsorted(seg_stops, offset)
        if position == seg_stops.shape[0]:
            return seg_stop - row
        return int(seg_stops[position]) - offset

    def _audit_run(self, host, matrix, uniforms, row: int, run: int) -> None:
        """Re-verify a certified run with the exact scalar arithmetic.

        Walks every certified row, recomputing the publish decision
        exactly as :meth:`_exact_step` would (``math.log`` branches,
        scalar reduction order), and raises :class:`ScanMarginError`
        when any row the scan certified as a skip would in fact
        publish.  The budget calls reproduce the state mutations the
        scalar loop performs, so auditing never perturbs the run.
        """
        rule = self.rule
        state = host.scheduler_state
        trace = host.trace
        last_release = host.last_release
        log = math.log
        for offset in range(run):
            t = host.t + offset
            budget = rule.publication_budget(t, trace, state)
            if budget <= 0:
                continue
            uniform = uniforms[row + offset]
            if uniform <= 0.0:
                raise ScanMarginError(
                    f"timestamp {t} was certified as a skip but its "
                    f"uniform ({uniform}) needs the exact generator path"
                )
            if uniform >= 0.5:
                noise = 0.0 - self.scale * log(2.0 - uniform - uniform)
            else:
                noise = 0.0 + self.scale * log(uniform + uniform)
            distance = float(
                np.add.reduce(np.abs(matrix[row + offset] - last_release))
                / self.n_types
            )
            if distance + noise > self.sensitivity / budget:
                raise ScanMarginError(
                    f"timestamp {t} was certified as a skip but the exact "
                    f"arithmetic publishes (score "
                    f"{distance + noise!r} > threshold "
                    f"{self.sensitivity / budget!r}); widen the scan margin"
                )

    def _exact_step(
        self, host, matrix, released, row: int, uniforms
    ) -> bool:
        """One timestamp through the exact scalar arithmetic.

        This is the pre-kernel release loop's body, verbatim: the
        boundary/publication fallback of the scan path and the whole
        loop under ``scan=off``.  Returns whether the step published.
        """
        rule = self.rule
        trace = host.trace
        state = host.scheduler_state
        last_release = host.last_release
        scale = self.scale
        budget = rule.publication_budget(host.t, trace, state)
        publish = False
        rng_t = None
        if last_release is None:
            publish = budget > 0
        elif budget > 0:
            # Private dissimilarity: mean absolute deviation from the
            # last release, plus Laplace noise (Kellaris' `dis`).  The
            # reduce spelling is bit-identical to .mean() and skips its
            # dispatch overhead.
            if uniforms is None:
                rng_t = host._children.generator(host.t)
                noise = float(rng_t.laplace(0.0, scale))
            else:
                uniform = uniforms[row]
                if uniform >= 0.5:
                    # numpy random_laplace, loc=0: branch and
                    # arithmetic order replayed exactly.
                    noise = 0.0 - scale * math.log(2.0 - uniform - uniform)
                elif uniform > 0.0:
                    noise = 0.0 + scale * math.log(uniform + uniform)
                else:
                    # U == 0 retries inside numpy; take the real
                    # generator for this (astronomically rare) step.
                    rng_t = host._children.generator(host.t)
                    noise = float(rng_t.laplace(0.0, scale))
            true_distance = float(
                np.add.reduce(np.abs(matrix[row] - last_release))
                / self.n_types
            )
            publish = true_distance + noise > self.sensitivity / budget
        trace.dissimilarity_budgets.append(self.charge)
        if publish:
            if rng_t is None:
                rng_t = host._children.generator(host.t)
                if last_release is not None:
                    # The stepped stream spent one word on the
                    # dissimilarity draw; reposition past it.
                    rng_t.laplace(0.0, scale)
            noise_vector = rng_t.laplace(
                0.0, self.sensitivity / budget, size=self.n_types
            )
            host.last_release = matrix[row] + noise_vector
            trace.published.append(True)
            trace.publication_budgets.append(budget)
            rule.after_publication(host.t, budget, trace, state)
        else:
            if last_release is None:
                # Nothing released yet and no budget: emit pure noise
                # around 1/2 so the output is data-independent.
                host.last_release = np.full(self.n_types, 0.5)
            trace.published.append(False)
            trace.publication_budgets.append(0.0)
        if released is not None:
            released[row] = host.last_release
        host.t += 1
        return publish

    # -- decision replay ----------------------------------------------

    def replay_block(
        self, host, matrix: np.ndarray, decisions: Tuple
    ) -> np.ndarray:
        """Reproduce a stepped block from recorded scheduler decisions.

        ``decisions`` is a ``(published, budgets)`` pair covering
        exactly the rows of ``matrix``.  Bit-identity with stepping
        holds because the per-timestamp randomness is index-derived: a
        publishing timestamp draws its dissimilarity word (when one
        preceded it) and its Laplace noise from the same child
        generator the stepped run used, and non-publishing timestamps
        repeat the previous release.  Only the publishing timestamps
        cost Python-loop work, which is what makes sharded replay fast
        on the sparse publication schedules BD/BA produce.
        """
        n = matrix.shape[0]
        published, budgets = decisions
        if len(published) != n or len(budgets) != n:
            raise ValueError(
                f"decisions cover {len(published)} timestamps but the "
                f"block has {n} rows"
            )
        rule = self.rule
        released = np.empty_like(matrix)
        publish_rows = [row for row in range(n) if published[row]]
        values = []
        current = host.last_release
        for row in publish_rows:
            rng_t = host._children.generator(host.t + row)
            if not (row == 0 and current is None):
                # The stepped run drew the noisy dissimilarity estimate
                # before publishing whenever a previous release
                # existed; consume the same word so the noise stream
                # aligns.
                rng_t.laplace(0.0, self.scale)
            noise = rng_t.laplace(
                0.0,
                self.sensitivity / budgets[row],
                size=self.n_types,
            )
            value = matrix[row] + noise
            values.append(value)
            released[row] = value
        # Forward-fill approximating timestamps from the publication
        # at-or-before them, vectorized (no per-row Python work).
        published_flags = np.asarray(published, dtype=bool)
        ordinals = np.cumsum(published_flags) - 1
        approx = ~published_flags
        before_first = approx & (ordinals < 0)
        after = approx & (ordinals >= 0)
        if np.any(after):
            stacked = np.stack(values)
            released[after] = stacked[ordinals[after]]
        if np.any(before_first):
            if current is None:
                current = np.full(self.n_types, 0.5)
            released[before_first] = current
        # Bring state, trace and accounting to where stepping would be.
        host.trace.published.extend(bool(flag) for flag in published)
        host.trace.publication_budgets.extend(
            float(budget) for budget in budgets
        )
        host.trace.dissimilarity_budgets.extend_constant(self.charge, n)
        for row in publish_rows:
            rule.after_publication(
                host.t + row,
                float(budgets[row]),
                host.trace,
                host.scheduler_state,
            )
        if n:
            if publish_rows and publish_rows[-1] == n - 1:
                host.last_release = values[-1].copy()
            else:
                host.last_release = np.array(released[n - 1], copy=True)
        host.t += n
        return released


# ---------------------------------------------------------------------------
# The landmark resolve stage
# ---------------------------------------------------------------------------


class LandmarkKernel:
    """Plan → scan → resolve driver for one landmark releaser.

    Landmark privacy has two row kinds with very different decision
    shapes, and the kernel exploits both:

    - **regular rows** never touch the release state (their noise is
      per-timestamp, parallel-composed); during a prepass
      (``released=None``) the kernel hops over them entirely — zero
      draws, zero Python work — which is what shrinks the checkpoint
      prepass toward the landmark publication steps alone;
    - **landmark rows** carry the adaptive budget thread
      (``remaining_publication`` / ``landmarks_left``); their skip
      decisions scan exactly like the w-event schedulers': nominal
      budgets for the segment are exact closed-form floats
      (``remaining / left`` with ``left`` counting down per landmark),
      so certified-skip landmarks are bulk-applied with no generator
      touches and only boundary/publishing landmarks fall back to the
      scalar :meth:`~repro.baselines.landmark.LandmarkReleaser._advance`.
    """

    def __init__(self, config: ScanConfig):
        self.config = config

    def run_block(self, host, matrix: np.ndarray, released) -> None:
        config = self.config
        n = matrix.shape[0]
        if n == 0:
            return
        if not config.enabled:
            # scan=off: the pre-kernel per-row loop, verbatim.
            for row in range(n):
                value = host._advance(matrix[row])
                if released is not None:
                    released[row] = value
            return
        mechanism = host.mechanism
        mask = host._landmarks
        t0 = host.t
        sensitivity = mechanism.sensitivity
        n_types = host.n_types
        regular_scale = sensitivity / mechanism.regular_epsilon
        # The dissimilarity draw's scale, spelled exactly as _advance
        # spells it (total landmark scale, then the per-type division
        # at the laplace call).
        dissimilarity_scale = (
            host._n_landmarks * sensitivity / host._landmark_dissimilarity
            if host._landmark_dissimilarity > 0
            else 0.0
        )
        uniform_scale = dissimilarity_scale / n_types
        uniforms = (
            host._children.first_uniforms(t0, t0 + n)
            if n >= config.prefetch_min
            else None
        )
        # Landmark rows of this block, as block-relative offsets.  Rows
        # past the mask's end fall off the slice; the loop raises the
        # scalar path's own error when it reaches them.
        block_mask = mask[t0 : t0 + n]
        limit = block_mask.shape[0]
        landmark_rows = np.nonzero(block_mask)[0]
        # Scan segment cache over landmark ordinals: built at a
        # landmark ordinal against the budget thread at that point,
        # valid until a publication changes it.  Bounded and doubling
        # for the same reason as the w-event kernel's segments: every
        # publication throws the cache away, so unbounded segments go
        # quadratic on publish-dense landmark stretches.
        chunk = config.prefetch_min
        seg_ordinal = -1
        seg_end = 0
        seg_stops: Optional[np.ndarray] = None
        ordinal = 0  # landmark rows consumed so far
        row = 0
        (
            obs_certified,
            obs_boundary,
            _obs_zero_budget,
            obs_segments,
        ) = _kernel_telemetry()
        while row < n:
            if row >= limit:
                # Replicate _advance's bounds error (state already
                # advanced through the in-mask prefix, as stepping
                # would have).
                raise ValueError(
                    f"landmark mask covers {mask.shape[0]} windows; "
                    f"cannot step past it (t={host.t})"
                )
            if not block_mask[row]:
                # Regular rows: individual budget, no state coupling.
                if released is None:
                    # Prepass: the draws are discarded and the state
                    # untouched — hop to the next landmark row.
                    position = np.searchsorted(landmark_rows, row)
                    hop = (
                        int(landmark_rows[position]) - row
                        if position < landmark_rows.shape[0]
                        else min(n, limit) - row
                    )
                    host.t += hop
                    row += hop
                    continue
                rng_t = host._children.generator(host.t)
                released[row] = matrix[row] + rng_t.laplace(
                    0.0, regular_scale, size=n_types
                )
                host.t += 1
                row += 1
                continue
            # Landmark row.
            scannable = (
                uniforms is not None
                and host.last_release is not None
                and host._n_landmarks > 0
            )
            if scannable:
                if seg_stops is None or ordinal < seg_ordinal:
                    chunk = config.prefetch_min
                elif ordinal >= seg_end:
                    # Segment consumed without a publication: scan
                    # farther ahead this time.
                    chunk = min(chunk * 2, _SCAN_SEGMENT_MAX)
                    seg_stops = None
                if seg_stops is None:
                    seg_ordinal = ordinal
                    seg_end = min(landmark_rows.shape[0], ordinal + chunk)
                    obs_segments.observe(seg_end - ordinal)
                    seg_stops = self._scan_landmarks(
                        host,
                        matrix,
                        uniforms,
                        landmark_rows[ordinal:seg_end],
                        sensitivity,
                        uniform_scale,
                    )
                run = WEventKernel._certified_run(
                    seg_stops,
                    seg_ordinal,
                    ordinal,
                    seg_end,
                )
                if run > 0:
                    stop_row = (
                        int(landmark_rows[ordinal + run])
                        if ordinal + run < landmark_rows.shape[0]
                        else min(n, limit)
                    )
                    if config.audit:
                        self._audit_landmarks(
                            host,
                            matrix,
                            uniforms,
                            landmark_rows[ordinal : ordinal + run],
                            sensitivity,
                            uniform_scale,
                        )
                    # Bulk-apply the certified-skip landmarks (zero
                    # draws) and release the interleaved regular rows.
                    span_rows = landmark_rows[ordinal : ordinal + run]
                    if released is not None:
                        released[span_rows] = host.last_release
                        for regular in range(row, stop_row):
                            if block_mask[regular]:
                                continue
                            rng_t = host._children.generator(t0 + regular)
                            released[regular] = matrix[regular] + (
                                rng_t.laplace(
                                    0.0, regular_scale, size=n_types
                                )
                            )
                    # The per-step clamp max(0, left - 1) composes to
                    # one clamped subtraction over the run.
                    host._landmarks_left = max(
                        0, host._landmarks_left - run
                    )
                    obs_certified.inc(run)
                    host.t = t0 + stop_row
                    row = stop_row
                    ordinal += run
                    continue
            remaining_before = host._remaining_publication
            value = host._advance(matrix[row])
            obs_boundary.inc()
            if released is not None:
                released[row] = value
            if host._remaining_publication != remaining_before:
                # A publication moved the budget thread; certified
                # verdicts past this landmark are stale.
                seg_stops = None
            ordinal += 1
            row += 1

    def _landmark_nominals(self, host, count: int) -> np.ndarray:
        """Exact nominal budgets for the next ``count`` landmark rows.

        Assumes no publication in the span: ``left`` counts down by one
        per landmark while ``remaining`` stays fixed, exactly the
        scalar ``remaining / left if left > 0 else 0.0`` per step.
        """
        remaining = host._remaining_publication
        left = host._landmarks_left - np.arange(count)
        nominals = np.zeros(count)
        positive = left > 0
        np.divide(remaining, left, out=nominals, where=positive)
        # A fully spent thread yields nominal <= 0 → unreachable
        # threshold downstream; negative nominals (impossible by
        # construction, guarded anyway) are zeroed too.
        nominals[nominals < 0.0] = 0.0
        return nominals

    def _scan_landmarks(
        self,
        host,
        matrix,
        uniforms,
        rows: np.ndarray,
        sensitivity: float,
        uniform_scale: float,
    ) -> np.ndarray:
        """Classify the remaining landmark rows; offsets of non-skips."""
        nominals = self._landmark_nominals(host, rows.shape[0])
        thresholds = decision_thresholds(nominals, sensitivity)
        distances = (
            np.add.reduce(
                np.abs(matrix[rows] - host.last_release), axis=1
            )
            / host.n_types
        )
        noises, needs_exact = laplace_noise_from_uniforms(
            uniforms[rows], uniform_scale
        )
        verdicts = classify_decisions(
            distances, noises, needs_exact, thresholds, self.config.margin
        )
        return np.nonzero(verdicts != CERTAIN_SKIP)[0]

    def _audit_landmarks(
        self,
        host,
        matrix,
        uniforms,
        rows: np.ndarray,
        sensitivity: float,
        uniform_scale: float,
    ) -> None:
        """Re-verify certified landmark skips with scalar arithmetic."""
        remaining = host._remaining_publication
        left = host._landmarks_left
        log = math.log
        for offset, row in enumerate(rows):
            nominal = (
                remaining / (left - offset) if left - offset > 0 else 0.0
            )
            if nominal <= 0:
                continue
            uniform = uniforms[row]
            if uniform <= 0.0:
                raise ScanMarginError(
                    f"landmark timestamp {host.t + int(row)} was certified "
                    f"as a skip but its uniform ({uniform}) needs the "
                    f"exact generator path"
                )
            if uniform >= 0.5:
                noise = -uniform_scale * log(2.0 - uniform - uniform)
            else:
                noise = uniform_scale * log(uniform + uniform)
            distance = float(
                np.add.reduce(np.abs(matrix[row] - host.last_release))
                / host.n_types
            )
            if distance + noise > sensitivity / nominal:
                raise ScanMarginError(
                    f"landmark timestamp {host.t + int(row)} was certified "
                    f"as a skip but the exact arithmetic publishes; widen "
                    f"the scan margin"
                )
