"""Execution strategies for the streaming pipeline.

Both executors take the same prepared pipeline and produce the same
:class:`PipelineResult` — the difference is purely operational:

- :class:`BatchExecutor` materializes the indicator matrix end-to-end
  and perturbs it in one vectorized pass (fastest; needs the whole
  stream);
- :class:`ChunkedExecutor` walks the stream in bounded chunks through a
  mechanism stepper, for the infinite-stream deployment shape.  Under
  the same seed its outputs are bit-identical to the batch executor for
  every streamable mechanism (pinned by
  ``tests/property/test_property_runtime.py``);
- :class:`ShardedExecutor` partitions the windows into contiguous
  shards and runs each through a seeked chunk stepper on a worker pool
  (threads or processes).  For seekable mechanisms its outputs are
  bit-identical to the batch executor under the same seed, because
  every shard draws its randomness by absolute window index (see
  :mod:`repro.runtime.sharding`).  On the process backend shards
  travel zero-copy: the indicator matrix lives in a shared-memory
  segment and only ``(segment, dtype, shape)`` descriptors cross the
  pool (see :mod:`repro.runtime.shm`).
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.obs.tracing import trace_span
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike
from repro.runtime.stages import MetricsSink


@dataclass
class PipelineResult:
    """Outcome of one pipeline execution.

    ``original``/``released`` are ``None`` when a chunked run is asked
    not to materialize the streams (bounded-memory mode); the per-query
    answers and the metrics sink are always populated.
    """

    answers: Dict[str, np.ndarray]
    true_answers: Dict[str, np.ndarray]
    original: Optional[IndicatorStream] = None
    released: Optional[IndicatorStream] = None
    sink: MetricsSink = field(default_factory=MetricsSink)

    @property
    def n_windows(self) -> int:
        if self.original is not None:
            return self.original.n_windows
        for vector in self.true_answers.values():
            return int(vector.shape[0])
        return 0

    def quality(self, alpha: Optional[float] = None):
        """Micro-averaged released-versus-truth quality ``Q``."""
        return self.sink.quality(alpha)

    def mre(self, q_ordinary: float = 1.0, alpha: Optional[float] = None):
        """``MRE_Q`` of this run against the ordinary quality."""
        return self.sink.mre(q_ordinary, alpha)


class BatchExecutor:
    """Vectorized whole-stream execution."""

    def run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        with trace_span("executor.batch", windows=len(indicators)):
            released = pipeline.runtime_mechanism.perturb_batch(
                indicators, rng=rng
            )
            answers = pipeline.matcher.answer(released.matrix_view())
            true_answers = pipeline.matcher.answer(
                indicators.matrix_view()
            )
            sink = MetricsSink(alpha=pipeline.alpha)
            sink.update(true_answers, answers)
        return PipelineResult(
            answers=answers,
            true_answers=true_answers,
            original=indicators,
            released=released,
            sink=sink,
        )


class ChunkedExecutor:
    """Bounded-memory execution in window chunks.

    Parameters
    ----------
    chunk_size:
        Windows processed per step.
    materialize:
        Keep the original/released indicator streams on the result.
        ``False`` keeps memory proportional to ``chunk_size`` (the
        per-query answer vectors still accumulate — they are one bool
        per window per query).
    """

    def __init__(self, chunk_size: int = 256, *, materialize: bool = True):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self.materialize = materialize

    def run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        matrix = indicators.matrix_view()
        return self._run_chunks(
            pipeline,
            (
                matrix[start : start + self.chunk_size]
                for start in range(0, matrix.shape[0], self.chunk_size)
            ),
            horizon=matrix.shape[0],
            alphabet=indicators.alphabet,
            rng=rng,
        )

    def run_type_sets(
        self,
        pipeline,
        type_sets,
        *,
        rng: RngLike = None,
        horizon: Optional[int] = None,
    ) -> PipelineResult:
        """Execute over an iterable of per-window event-type sets.

        The extraction stage runs per chunk, so an unbounded source
        never materializes beyond ``chunk_size`` windows (with
        ``materialize=False``).
        """
        extractor = pipeline.extractor

        def chunks():
            buffer = []
            for window in type_sets:
                buffer.append(window)
                if len(buffer) == self.chunk_size:
                    yield extractor.extract_matrix(buffer)
                    buffer.clear()
            if buffer:
                yield extractor.extract_matrix(buffer)

        return self._run_chunks(
            pipeline,
            chunks(),
            horizon=horizon,
            alphabet=pipeline.alphabet,
            rng=rng,
        )

    def _run_chunks(
        self, pipeline, chunks, *, horizon, alphabet, rng
    ) -> PipelineResult:
        stepper = pipeline.runtime_mechanism.stepper(
            alphabet, rng=rng, horizon=horizon
        )
        matcher = pipeline.matcher
        sink = MetricsSink(alpha=pipeline.alpha)
        answer_parts: Dict[str, list] = {
            name: [] for name in matcher.query_names
        }
        truth_parts: Dict[str, list] = {
            name: [] for name in matcher.query_names
        }
        original_parts = []
        released_parts = []
        for chunk in chunks:
            released = stepper.step_block(chunk)
            chunk_answers = matcher.answer(released)
            chunk_truth = matcher.answer(chunk)
            sink.update(chunk_truth, chunk_answers)
            for name in matcher.query_names:
                answer_parts[name].append(chunk_answers[name])
                truth_parts[name].append(chunk_truth[name])
            if self.materialize:
                original_parts.append(chunk)
                released_parts.append(released)

        def join(parts):
            if not parts:
                return np.zeros(0, dtype=bool)
            return np.concatenate(parts)

        answers = {name: join(parts) for name, parts in answer_parts.items()}
        true_answers = {
            name: join(parts) for name, parts in truth_parts.items()
        }
        original = released_stream = None
        if self.materialize:
            width = len(alphabet)
            original = IndicatorStream(
                alphabet,
                np.concatenate(original_parts)
                if original_parts
                else np.zeros((0, width), dtype=bool),
            )
            released_stream = IndicatorStream(
                alphabet,
                np.concatenate(released_parts)
                if released_parts
                else np.zeros((0, width), dtype=bool),
            )
        return PipelineResult(
            answers=answers,
            true_answers=true_answers,
            original=original,
            released=released_stream,
            sink=sink,
        )


class ShardedExecutor:
    """Parallel execution over contiguous window shards.

    Splits the stream into (at most) ``n_shards`` balanced contiguous
    shards and executes each through the mechanism's chunk stepper on a
    worker pool, seeking every shard's stepper to its absolute start
    window first.  Because seeking reproduces exactly the randomness a
    sequential run would have consumed, the merged result is
    *bit-identical* to :class:`BatchExecutor` under the same seed —
    whatever the backend or worker count (pinned by
    ``tests/test_runtime_sharding.py`` and
    ``benchmarks/test_bench_sharding.py``).

    Mechanisms whose steppers can seek — the pattern-level flip PPMs,
    whole-matrix randomized response and the identity — shard directly.
    Sequential schedulers (BD/BA, landmark) carry data-dependent state
    across windows and cannot seek, but their releasers *checkpoint*:
    a sequential scheduler-state prepass walks the stream once without
    materializing outputs, snapshotting at every shard boundary, and
    the shards then replay their window ranges in parallel from the
    nearest checkpoint — still bit-identical to :class:`BatchExecutor`
    under the same seed (see
    :func:`repro.runtime.sharding.checkpoint_prepass`).  Mechanisms
    supporting only batch perturbation raise ``TypeError``.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to ``os.cpu_count()``.
    backend:
        ``"thread"`` (default; the hot stages release the GIL inside
        numpy) or ``"process"``.
    n_shards:
        Shard count; defaults to ``n_workers``.
    min_shard_size:
        Lower bound on windows per shard — tiny streams collapse to
        fewer shards rather than paying pool overhead per window.
    materialize:
        Keep the original/released indicator streams on the result
        (matching :class:`BatchExecutor`); ``False`` returns only the
        per-query answers and metrics.
    zero_copy:
        Ship shards to process-pool workers through shared-memory
        segments (descriptors only cross the pool) instead of pickling
        matrix slices; outputs come back through preallocated shared
        planes.  Defaults to ``None`` — on for the process backend,
        irrelevant for threads (which share the address space already
        and always bypass the segment plane).  ``False`` forces the
        legacy pickled transport, kept for debugging
        (``"sharded:process:8:copy"`` in executor specs).
    measure_transport:
        Record a :class:`~repro.runtime.sharding.TransportStats` on
        :attr:`last_transport` after each run — the bytes actually
        pickled into the pool.  Off by default (measuring the pickled
        size of a copy-mode payload costs an extra serialization pass).
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        backend: str = "thread",
        n_shards: Optional[int] = None,
        min_shard_size: int = 1,
        materialize: bool = True,
        zero_copy: Optional[bool] = None,
        measure_transport: bool = False,
    ):
        from repro.runtime.sharding import validate_backend

        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        validate_backend(backend)
        if n_shards is not None and n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_workers = n_workers
        self.backend = backend
        self.n_shards = n_shards if n_shards is not None else n_workers
        self.min_shard_size = min_shard_size
        self.materialize = materialize
        self.zero_copy = zero_copy
        self.measure_transport = measure_transport
        #: TransportStats of the most recent pooled run (None until a
        #: run actually crossed a pool with measure_transport=True).
        self.last_transport = None

    @property
    def uses_zero_copy(self) -> bool:
        """Whether pooled runs will ship shards via shared memory."""
        if self.backend != "process":
            return False
        return True if self.zero_copy is None else bool(self.zero_copy)

    def run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        with trace_span(
            "executor.sharded",
            backend=self.backend,
            windows=len(indicators),
        ):
            return self._run(pipeline, indicators, rng=rng)

    def _run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        from repro.runtime.sharding import (
            clone_rng,
            make_pool,
            merge_results,
            plan_shards,
            run_shard,
        )

        runtime = pipeline.runtime_mechanism
        if not runtime.shardable:
            if getattr(runtime, "checkpointable", False):
                return self._run_checkpointed(pipeline, indicators, rng=rng)
            raise TypeError(
                f"mechanism {runtime.name!r} supports only batch "
                "perturbation and cannot be sharded; use BatchExecutor"
            )
        if isinstance(rng, np.random.Generator):
            # Shards replay the generator's *current* state (first use is
            # bit-identical to a batch run from that state); advance the
            # caller's generator one derivation word — as derive_rng
            # would — so consecutive runs off one shared generator draw
            # fresh randomness instead of repeating the previous run's.
            shard_source = clone_rng(rng)
            rng.integers(0, 2**63 - 1)
        else:
            shard_source = rng
        matrix = indicators.matrix_view()
        horizon = matrix.shape[0]
        shards = plan_shards(
            horizon, self.n_shards, min_shard_size=self.min_shard_size
        )
        if len(shards) <= 1:
            # Zero or one shard: run in-process, no pool overhead.
            parts = [
                run_shard(
                    pipeline,
                    matrix[shard.start : shard.stop],
                    shard,
                    alphabet=indicators.alphabet,
                    horizon=horizon,
                    rng=clone_rng(shard_source),
                    materialize=self.materialize,
                )
                for shard in shards
            ]
        elif self.uses_zero_copy:
            return self._run_zero_copy(
                pipeline, indicators, matrix, shards, horizon, shard_source
            )
        else:
            submissions = [
                (
                    (pipeline, matrix[shard.start : shard.stop], shard),
                    dict(
                        alphabet=indicators.alphabet,
                        horizon=horizon,
                        rng=clone_rng(shard_source),
                        materialize=self.materialize,
                    ),
                )
                for shard in shards
            ]
            self._record_transport(False, horizon, submissions)
            pool = make_pool(self.backend, self.n_workers)
            try:
                futures = [
                    pool.submit(run_shard, *args, **kwargs)
                    for args, kwargs in submissions
                ]
                parts = [future.result() for future in futures]
            finally:
                pool.shutdown(wait=True)
        return merge_results(
            parts,
            alphabet=indicators.alphabet,
            query_names=pipeline.matcher.query_names,
            alpha=pipeline.alpha,
            materialize=self.materialize,
        )

    def _record_transport(self, zero_copy, horizon, submissions):
        """Record the pool's pickled payload size (opt-in; see
        ``measure_transport``)."""
        from repro.runtime.sharding import TransportStats, measure_payload

        if not self.measure_transport:
            return
        bytes_pickled = (
            measure_payload(*submissions)
            if self.backend == "process"
            else 0
        )
        self.last_transport = TransportStats(
            backend=self.backend,
            zero_copy=zero_copy,
            n_windows=horizon,
            n_shards=len(submissions),
            bytes_pickled=bytes_pickled,
        )

    def _run_zero_copy(
        self, pipeline, indicators, matrix, shards, horizon, shard_source
    ) -> PipelineResult:
        """Pooled seekable execution over the shared-memory plane.

        The indicator matrix is written into one shared segment, the
        output planes are preallocated, and only descriptors cross the
        pool; the plane is closed and unlinked in a ``try/finally``
        whatever the workers do.
        """
        from repro.runtime.sharding import (
            build_shard_planes,
            clone_rng,
            make_pool,
            merge_receipts,
            run_shard_zero_copy,
        )
        from repro.runtime.shm import SegmentPlane

        plane = SegmentPlane()
        try:
            planes = build_shard_planes(
                plane,
                matrix,
                pipeline.matcher.query_names,
                materialize=self.materialize,
            )
            submissions = [
                (
                    (pipeline, planes, shard),
                    dict(
                        alphabet=indicators.alphabet,
                        horizon=horizon,
                        rng=clone_rng(shard_source),
                    ),
                )
                for shard in shards
            ]
            self._record_transport(True, horizon, submissions)
            pool = make_pool(self.backend, self.n_workers)
            try:
                futures = [
                    pool.submit(run_shard_zero_copy, *args, **kwargs)
                    for args, kwargs in submissions
                ]
                receipts = [future.result() for future in futures]
            finally:
                pool.shutdown(wait=True)
            return merge_receipts(
                receipts,
                plane,
                planes,
                indicators=indicators,
                alpha=pipeline.alpha,
                materialize=self.materialize,
            )
        finally:
            plane.close()

    def _run_checkpointed(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        """Two-phase execution for checkpointable sequential schedulers.

        Phase one runs the scheduler sequentially over the whole stream
        without materializing outputs, checkpointing at every shard
        boundary; phase two replays each shard's window range on the
        worker pool from the checkpoint at its start.  Randomness is
        derived by absolute window index, so the merged result — and the
        mechanism's ``last_trace`` — is bit-identical to
        :class:`BatchExecutor` under the same seed.
        """
        from repro.runtime.sharding import (
            checkpoint_prepass,
            clone_rng,
            make_pool,
            merge_results,
            plan_shards,
            run_shard_from_checkpoint,
        )
        from repro.runtime.sharding import _shard_result

        runtime = pipeline.runtime_mechanism
        if isinstance(rng, np.random.Generator):
            # Same policy as the seekable path: replay the generator's
            # current state everywhere, advance the caller's generator
            # one derivation word so repeated runs draw fresh noise.
            shard_source = clone_rng(rng)
            rng.integers(0, 2**63 - 1)
        else:
            shard_source = rng
        matrix = indicators.matrix_view()
        horizon = matrix.shape[0]
        shards = plan_shards(
            horizon, self.n_shards, min_shard_size=self.min_shard_size
        )
        if len(shards) <= 1:
            # Zero or one shard: a plain sequential in-process run (the
            # prepass would just duplicate it).
            stepper = runtime.stepper(
                indicators.alphabet,
                rng=clone_rng(shard_source),
                horizon=horizon,
            )
            released = stepper.step_block(matrix)
            parts = [
                _shard_result(
                    pipeline,
                    matrix[shard.start : shard.stop],
                    shard,
                    released[shard.start : shard.stop],
                    materialize=self.materialize,
                )
                for shard in shards
            ]
        else:
            plan = checkpoint_prepass(
                pipeline,
                matrix,
                shards,
                alphabet=indicators.alphabet,
                horizon=horizon,
                rng=clone_rng(shard_source),
            )
            if self.uses_zero_copy:
                result = self._run_checkpointed_zero_copy(
                    pipeline, indicators, matrix, plan, horizon, shard_source
                )
                self._publish_trace(runtime, plan)
                return result
            submissions = [
                (
                    (
                        pipeline,
                        matrix[shard.start : shard.stop],
                        shard,
                        snapshot,
                        decisions,
                    ),
                    dict(
                        alphabet=indicators.alphabet,
                        horizon=horizon,
                        rng=clone_rng(shard_source),
                        materialize=self.materialize,
                    ),
                )
                for shard, snapshot, decisions in zip(
                    plan.shards, plan.snapshots, plan.decisions
                )
            ]
            self._record_transport(False, horizon, submissions)
            pool = make_pool(self.backend, self.n_workers)
            try:
                futures = [
                    pool.submit(run_shard_from_checkpoint, *args, **kwargs)
                    for args, kwargs in submissions
                ]
                parts = [future.result() for future in futures]
            finally:
                pool.shutdown(wait=True)
            self._publish_trace(runtime, plan)
        return merge_results(
            parts,
            alphabet=indicators.alphabet,
            query_names=pipeline.matcher.query_names,
            alpha=pipeline.alpha,
            materialize=self.materialize,
        )

    @staticmethod
    def _publish_trace(runtime, plan) -> None:
        # The prepass trace is the authoritative accounting record of
        # the run — identical to the batch path's — and is published
        # once, after every shard finished, so partial shard traces
        # never race it.
        if plan.trace is not None and hasattr(
            runtime.mechanism, "last_trace"
        ):
            runtime.mechanism.last_trace = plan.trace

    def _run_checkpointed_zero_copy(
        self, pipeline, indicators, matrix, plan, horizon, shard_source
    ) -> PipelineResult:
        """Pooled checkpoint replay over the shared-memory plane.

        Snapshots and decision slices still travel as pickles (they are
        small, data-dependent scheduler state); the matrix and every
        bulky output go through the segment plane exactly as in the
        seekable path.
        """
        from repro.runtime.sharding import (
            build_shard_planes,
            clone_rng,
            make_pool,
            merge_receipts,
            run_shard_from_checkpoint_zero_copy,
        )
        from repro.runtime.shm import SegmentPlane

        plane = SegmentPlane()
        try:
            planes = build_shard_planes(
                plane,
                matrix,
                pipeline.matcher.query_names,
                materialize=self.materialize,
            )
            submissions = [
                (
                    (pipeline, planes, shard, snapshot, decisions),
                    dict(
                        alphabet=indicators.alphabet,
                        horizon=horizon,
                        rng=clone_rng(shard_source),
                    ),
                )
                for shard, snapshot, decisions in zip(
                    plan.shards, plan.snapshots, plan.decisions
                )
            ]
            self._record_transport(True, horizon, submissions)
            pool = make_pool(self.backend, self.n_workers)
            try:
                futures = [
                    pool.submit(
                        run_shard_from_checkpoint_zero_copy, *args, **kwargs
                    )
                    for args, kwargs in submissions
                ]
                receipts = [future.result() for future in futures]
            finally:
                pool.shutdown(wait=True)
            return merge_receipts(
                receipts,
                plane,
                planes,
                indicators=indicators,
                alpha=pipeline.alpha,
                materialize=self.materialize,
            )
        finally:
            plane.close()
