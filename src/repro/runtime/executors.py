"""Execution strategies for the streaming pipeline.

Both executors take the same prepared pipeline and produce the same
:class:`PipelineResult` — the difference is purely operational:

- :class:`BatchExecutor` materializes the indicator matrix end-to-end
  and perturbs it in one vectorized pass (fastest; needs the whole
  stream);
- :class:`ChunkedExecutor` walks the stream in bounded chunks through a
  mechanism stepper, for the infinite-stream deployment shape.  Under
  the same seed its outputs are bit-identical to the batch executor for
  every streamable mechanism (pinned by
  ``tests/property/test_property_runtime.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike
from repro.runtime.stages import MetricsSink


@dataclass
class PipelineResult:
    """Outcome of one pipeline execution.

    ``original``/``released`` are ``None`` when a chunked run is asked
    not to materialize the streams (bounded-memory mode); the per-query
    answers and the metrics sink are always populated.
    """

    answers: Dict[str, np.ndarray]
    true_answers: Dict[str, np.ndarray]
    original: Optional[IndicatorStream] = None
    released: Optional[IndicatorStream] = None
    sink: MetricsSink = field(default_factory=MetricsSink)

    @property
    def n_windows(self) -> int:
        if self.original is not None:
            return self.original.n_windows
        for vector in self.true_answers.values():
            return int(vector.shape[0])
        return 0

    def quality(self, alpha: Optional[float] = None):
        """Micro-averaged released-versus-truth quality ``Q``."""
        return self.sink.quality(alpha)

    def mre(self, q_ordinary: float = 1.0, alpha: Optional[float] = None):
        """``MRE_Q`` of this run against the ordinary quality."""
        return self.sink.mre(q_ordinary, alpha)


class BatchExecutor:
    """Vectorized whole-stream execution."""

    def run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        released = pipeline.runtime_mechanism.perturb_batch(
            indicators, rng=rng
        )
        answers = pipeline.matcher.answer(released.matrix_view())
        true_answers = pipeline.matcher.answer(indicators.matrix_view())
        sink = MetricsSink(alpha=pipeline.alpha)
        sink.update(true_answers, answers)
        return PipelineResult(
            answers=answers,
            true_answers=true_answers,
            original=indicators,
            released=released,
            sink=sink,
        )


class ChunkedExecutor:
    """Bounded-memory execution in window chunks.

    Parameters
    ----------
    chunk_size:
        Windows processed per step.
    materialize:
        Keep the original/released indicator streams on the result.
        ``False`` keeps memory proportional to ``chunk_size`` (the
        per-query answer vectors still accumulate — they are one bool
        per window per query).
    """

    def __init__(self, chunk_size: int = 256, *, materialize: bool = True):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self.materialize = materialize

    def run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        matrix = indicators.matrix_view()
        return self._run_chunks(
            pipeline,
            (
                matrix[start : start + self.chunk_size]
                for start in range(0, matrix.shape[0], self.chunk_size)
            ),
            horizon=matrix.shape[0],
            alphabet=indicators.alphabet,
            rng=rng,
        )

    def run_type_sets(
        self,
        pipeline,
        type_sets,
        *,
        rng: RngLike = None,
        horizon: Optional[int] = None,
    ) -> PipelineResult:
        """Execute over an iterable of per-window event-type sets.

        The extraction stage runs per chunk, so an unbounded source
        never materializes beyond ``chunk_size`` windows (with
        ``materialize=False``).
        """
        extractor = pipeline.extractor

        def chunks():
            buffer = []
            for window in type_sets:
                buffer.append(window)
                if len(buffer) == self.chunk_size:
                    yield extractor.extract_matrix(buffer)
                    buffer.clear()
            if buffer:
                yield extractor.extract_matrix(buffer)

        return self._run_chunks(
            pipeline,
            chunks(),
            horizon=horizon,
            alphabet=pipeline.alphabet,
            rng=rng,
        )

    def _run_chunks(
        self, pipeline, chunks, *, horizon, alphabet, rng
    ) -> PipelineResult:
        stepper = pipeline.runtime_mechanism.stepper(
            alphabet, rng=rng, horizon=horizon
        )
        matcher = pipeline.matcher
        sink = MetricsSink(alpha=pipeline.alpha)
        answer_parts: Dict[str, list] = {
            name: [] for name in matcher.query_names
        }
        truth_parts: Dict[str, list] = {
            name: [] for name in matcher.query_names
        }
        original_parts = []
        released_parts = []
        for chunk in chunks:
            released = stepper.step_block(chunk)
            chunk_answers = matcher.answer(released)
            chunk_truth = matcher.answer(chunk)
            sink.update(chunk_truth, chunk_answers)
            for name in matcher.query_names:
                answer_parts[name].append(chunk_answers[name])
                truth_parts[name].append(chunk_truth[name])
            if self.materialize:
                original_parts.append(chunk)
                released_parts.append(released)

        def join(parts):
            if not parts:
                return np.zeros(0, dtype=bool)
            return np.concatenate(parts)

        answers = {name: join(parts) for name, parts in answer_parts.items()}
        true_answers = {
            name: join(parts) for name, parts in truth_parts.items()
        }
        original = released_stream = None
        if self.materialize:
            width = len(alphabet)
            original = IndicatorStream(
                alphabet,
                np.concatenate(original_parts)
                if original_parts
                else np.zeros((0, width), dtype=bool),
            )
            released_stream = IndicatorStream(
                alphabet,
                np.concatenate(released_parts)
                if released_parts
                else np.zeros((0, width), dtype=bool),
            )
        return PipelineResult(
            answers=answers,
            true_answers=true_answers,
            original=original,
            released=released_stream,
            sink=sink,
        )
