"""Cluster execution: a framed worker fleet behind one merge point.

:class:`ClusterExecutor` runs shard work on a fleet of spawned worker
processes speaking a small length-prefixed frame protocol over
:mod:`multiprocessing.connection` pipes — the shape a TCP deployment
would keep, with only the connection factory swapped.  Every message
is one frame::

    !4sBI header  =  magic b"RPC1" | kind | payload length
    payload       =  pickled body (msgpack-shaped dicts and dataclasses)

Work ships as :class:`~repro.runtime.shm.ArrayDescriptor`-style
descriptors plus a transport URL (the PR-6 wire format):

- ``transport="shm"`` (local fleet) — the parent publishes the run's
  :class:`~repro.runtime.sharding.ShardPlanes` once per worker
  (``shm://<segment>``); workers attach the shared-memory plane
  directly and a task frame carries only shard bounds and an rng.
- ``transport="framed"`` (remote-style fallback) — workers never touch
  the parent's memory; each task frame carries the shard's matrix
  slice as framed bytes and the shard's outputs ride back the same
  way.

Both transports funnel :class:`~repro.runtime.sharding.ShardReceipt`s
through the existing :func:`~repro.runtime.sharding.merge_receipts`
single merge point (the parent deposits framed results into the plane
itself), so a cluster run is bit-identical to
:class:`~repro.runtime.executors.BatchExecutor` for seekable
mechanisms and to the checkpoint-prepass path for sequential
schedulers (BD/BA/landmark) under the same seed.

Fault tolerance: every worker heartbeats on a daemon thread; the
parent requeues a worker's in-flight shard when its pipe drops, its
process dies, or its heartbeat goes stale, then respawns a
replacement — a killed worker never loses a shard, and reruns are
bit-identical because each task's rng clone is fixed at plan time and
plane deposits are idempotent by absolute window slice.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import threading
import time
import traceback

from collections import deque
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _wait_connections
from typing import Dict, List, Optional

import numpy as np

from repro.obs.metrics import (
    Counter,
    MetricsRegistry,
    default_registry,
    use_registry,
)
from repro.obs.tracing import current_recorder, trace_span
from repro.runtime.executors import PipelineResult
from repro.streams.indicator import IndicatorStream
from repro.utils.rng import RngLike

__all__ = ["ClusterExecutor", "TRANSPORTS"]

#: Shard transports a cluster spec may pick: ``shm`` attaches local
#: workers to the shared-memory plane, ``framed`` ships shard slices
#: as framed bytes (the remote-style fallback).
TRANSPORTS = ("shm", "framed")


def validate_transport(transport: str) -> str:
    """Reject unknown cluster transports (mirrors validate_backend)."""
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; available: "
            f"{list(TRANSPORTS)}"
        )
    return transport


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------

_MAGIC = b"RPC1"
_HEADER = struct.Struct("!4sBI")

#: Frame kinds (one byte on the wire).
_HELLO, _JOB, _TASK, _RESULT, _ERROR, _HEARTBEAT, _SHUTDOWN = range(7)
#: Telemetry frame: right before each _RESULT the worker ships the
#: task's metrics-registry snapshot and wall time; the parent merges it
#: into the process default registry (first frame per task id wins, so
#: a requeued shard's duplicate never double-counts).
_METRICS = 7


class ProtocolError(RuntimeError):
    """A frame failed magic/length validation."""


def _pack_frame(kind: int, payload=None) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, kind, len(body)) + body


def _unpack_frame(blob: bytes):
    if len(blob) < _HEADER.size:
        raise ProtocolError(f"short frame: {len(blob)} bytes")
    magic, kind, length = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    body = blob[_HEADER.size :]
    if len(body) != length:
        raise ProtocolError(
            f"frame length mismatch: header {length}, body {len(body)}"
        )
    return kind, pickle.loads(body)


def _send_frame(connection, kind: int, payload=None) -> None:
    connection.send_bytes(_pack_frame(kind, payload))


def _recv_frame(connection):
    return _unpack_frame(connection.recv_bytes())


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Test hook: called with the task message before executing each shard
#: (fork-inherited), so fault tests can kill or freeze a worker
#: mid-shard deterministically.  Never set in production.
_TASK_FAULT_HOOK = None


def _execute_task(job: dict, message: dict):
    """Run one shard under the job's transport; return its result."""
    from repro.runtime.sharding import (
        run_shard,
        run_shard_from_checkpoint,
        run_shard_from_checkpoint_zero_copy,
        run_shard_zero_copy,
    )

    pipeline = job["pipeline"]
    shard = message["shard"]
    kwargs = dict(
        alphabet=job["alphabet"],
        horizon=job["horizon"],
        rng=message["rng"],
    )
    if job["transport"] == "shm":
        planes = job["planes"]
        if job["checkpointed"]:
            return run_shard_from_checkpoint_zero_copy(
                pipeline,
                planes,
                shard,
                message["snapshot"],
                message["decisions"],
                **kwargs,
            )
        return run_shard_zero_copy(pipeline, planes, shard, **kwargs)
    matrix = message["matrix"]
    if job["checkpointed"]:
        part = run_shard_from_checkpoint(
            pipeline,
            matrix,
            shard,
            message["snapshot"],
            message["decisions"],
            materialize=job["materialize"],
            **kwargs,
        )
    else:
        part = run_shard(
            pipeline, matrix, shard, materialize=job["materialize"], **kwargs
        )
    # The original rows are the input slice the parent already holds;
    # never frame them back.
    return replace(part, original=None)


def _worker_main(connection, heartbeat_interval: float) -> None:
    """One fleet worker: heartbeat thread + frame-dispatch loop."""
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(kind: int, payload=None) -> None:
        with send_lock:
            _send_frame(connection, kind, payload)

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                send(_HEARTBEAT)
            except OSError:
                return

    job: Optional[dict] = None
    try:
        send(_HELLO, {"pid": os.getpid()})
        heartbeat = threading.Thread(target=beat, daemon=True)
        heartbeat.start()
        while True:
            kind, payload = _recv_frame(connection)
            if kind == _SHUTDOWN:
                return
            if kind == _JOB:
                job = payload
                continue
            if kind != _TASK:
                raise ProtocolError(f"unexpected frame kind {kind}")
            try:
                if _TASK_FAULT_HOOK is not None:
                    _TASK_FAULT_HOOK(payload)
                # Each task runs against its own fresh registry so the
                # snapshot shipped back is exactly this task's delta —
                # the parent can merge every task once without
                # double-counting fork-inherited state.
                task_registry = MetricsRegistry()
                task_started = time.monotonic()
                with use_registry(task_registry):
                    result = _execute_task(job, payload)
                task_seconds = time.monotonic() - task_started
                # Metrics go first: the pipe is FIFO, so by the time
                # the parent sees the result that may complete the
                # whole run (and stop draining frames), this task's
                # telemetry has already been merged.
                send(
                    _METRICS,
                    {
                        "task": payload["task"],
                        "seconds": task_seconds,
                        "metrics": task_registry.snapshot(),
                    },
                )
                send(_RESULT, {"task": payload["task"], "result": result})
            except Exception:
                send(
                    _ERROR,
                    {
                        "task": payload["task"],
                        "shard": payload["shard"],
                        "traceback": traceback.format_exc(),
                    },
                )
    except (EOFError, OSError):
        # Parent went away (run finished or crashed): just exit.
        return
    finally:
        stop.set()
        try:
            connection.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side handle on one fleet member."""

    process: object
    connection: object
    last_seen: float
    ready: bool = False
    dead: bool = False
    task: Optional[dict] = None
    #: When the in-flight task was dispatched (perf_counter clock);
    #: the parent-side per-shard span runs dispatch → result.
    task_sent: float = 0.0

    def send(self, kind: int, payload=None) -> None:
        _send_frame(self.connection, kind, payload)


class ClusterExecutor:
    """Cluster worker-fleet execution over the framed shard protocol.

    Drop-in executor (``run(pipeline, indicators, rng=...)``)
    spawning ``n_workers`` subprocesses that speak the module's frame
    protocol.  Shard planning, rng derivation and merging are shared
    with :class:`~repro.runtime.executors.ShardedExecutor`, so results
    are bit-identical to :class:`BatchExecutor` (seekable mechanisms)
    and to the checkpoint-prepass path (sequential schedulers) under
    the same seed — including runs where a worker is killed mid-shard
    and its shard is requeued.

    Parameters
    ----------
    n_workers:
        Fleet size; defaults to ``os.cpu_count()``.
    transport:
        ``"shm"`` (default) attaches workers to the shared-memory data
        plane; ``"framed"`` ships shard slices as framed bytes, the
        remote-style fallback for workers without access to the
        parent's ``/dev/shm``.
    n_shards:
        Shard count; defaults to ``n_workers``.
    min_shard_size:
        Lower bound on windows per shard (as in ShardedExecutor).
    materialize:
        Keep the original/released streams on the result.
    heartbeat_interval:
        Seconds between worker heartbeats (also the parent's poll
        tick).
    worker_timeout:
        Heartbeat staleness after which a worker is declared dead, its
        in-flight shard requeued and a replacement spawned.
    max_restarts:
        Worker deaths tolerated per run before giving up; defaults to
        ``max(4, 2 * n_workers)``.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        transport: str = "shm",
        n_shards: Optional[int] = None,
        min_shard_size: int = 1,
        materialize: bool = True,
        heartbeat_interval: float = 0.25,
        worker_timeout: float = 10.0,
        max_restarts: Optional[int] = None,
    ):
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        validate_transport(transport)
        if n_shards is not None and n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got "
                f"{heartbeat_interval}"
            )
        if worker_timeout <= heartbeat_interval:
            raise ValueError(
                f"worker_timeout ({worker_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval})"
            )
        self.n_workers = n_workers
        self.transport = transport
        self.n_shards = n_shards if n_shards is not None else n_workers
        self.min_shard_size = min_shard_size
        self.materialize = materialize
        self.heartbeat_interval = heartbeat_interval
        self.worker_timeout = worker_timeout
        self.max_restarts = (
            max_restarts if max_restarts is not None else max(4, 2 * n_workers)
        )
        # Per-run restart count lives in an obs counter; last_restarts
        # stays as the delegating view the fault tests/benches read.
        # Created lazily at dispatch: spec-built executors must stay
        # structurally identical, and a Counter carries a lock that
        # never compares equal.
        self._restarts_counter: Optional[Counter] = None
        self._merged_metrics: set = set()

    @property
    def last_restarts(self) -> int:
        """Worker deaths survived by the most recent run (requeued and
        respawned); 0 on a clean fleet.  A view over the run's obs
        restart counter."""
        if self._restarts_counter is None:
            return 0
        return int(self._restarts_counter.value)

    # -- run dispatch (mirrors ShardedExecutor) ------------------------

    @staticmethod
    def _shard_rng_source(rng: RngLike):
        from repro.runtime.sharding import clone_rng

        if isinstance(rng, np.random.Generator):
            # Same policy as ShardedExecutor: shards replay the
            # generator's current state; the caller's generator
            # advances one derivation word.
            source = clone_rng(rng)
            rng.integers(0, 2**63 - 1)
            return source
        return rng

    def run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        with trace_span(
            "executor.cluster",
            transport=self.transport,
            windows=len(indicators),
        ):
            return self._run(pipeline, indicators, rng=rng)

    def _run(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        from repro.runtime.sharding import (
            clone_rng,
            merge_results,
            plan_shards,
            run_shard,
        )

        runtime = pipeline.runtime_mechanism
        if not runtime.shardable:
            if getattr(runtime, "checkpointable", False):
                return self._run_checkpointed(pipeline, indicators, rng=rng)
            raise TypeError(
                f"mechanism {runtime.name!r} supports only batch "
                "perturbation and cannot be sharded; use BatchExecutor"
            )
        shard_source = self._shard_rng_source(rng)
        matrix = indicators.matrix_view()
        horizon = matrix.shape[0]
        shards = plan_shards(
            horizon, self.n_shards, min_shard_size=self.min_shard_size
        )
        if len(shards) <= 1:
            # Zero or one shard: run in-process, no fleet overhead.
            parts = [
                run_shard(
                    pipeline,
                    matrix[shard.start : shard.stop],
                    shard,
                    alphabet=indicators.alphabet,
                    horizon=horizon,
                    rng=clone_rng(shard_source),
                    materialize=self.materialize,
                )
                for shard in shards
            ]
            return merge_results(
                parts,
                alphabet=indicators.alphabet,
                query_names=pipeline.matcher.query_names,
                alpha=pipeline.alpha,
                materialize=self.materialize,
            )
        tasks = [
            {"shard": shard, "rng": clone_rng(shard_source)}
            for shard in shards
        ]
        return self._run_fleet(
            pipeline, indicators, matrix, horizon, tasks, checkpointed=False
        )

    def _run_checkpointed(
        self,
        pipeline,
        indicators: IndicatorStream,
        *,
        rng: RngLike = None,
    ) -> PipelineResult:
        from repro.runtime.sharding import (
            checkpoint_prepass,
            clone_rng,
            merge_results,
            plan_shards,
        )
        from repro.runtime.sharding import _shard_result

        runtime = pipeline.runtime_mechanism
        shard_source = self._shard_rng_source(rng)
        matrix = indicators.matrix_view()
        horizon = matrix.shape[0]
        shards = plan_shards(
            horizon, self.n_shards, min_shard_size=self.min_shard_size
        )
        if len(shards) <= 1:
            stepper = runtime.stepper(
                indicators.alphabet,
                rng=clone_rng(shard_source),
                horizon=horizon,
            )
            released = stepper.step_block(matrix)
            parts = [
                _shard_result(
                    pipeline,
                    matrix[shard.start : shard.stop],
                    shard,
                    released[shard.start : shard.stop],
                    materialize=self.materialize,
                )
                for shard in shards
            ]
            return merge_results(
                parts,
                alphabet=indicators.alphabet,
                query_names=pipeline.matcher.query_names,
                alpha=pipeline.alpha,
                materialize=self.materialize,
            )
        plan = checkpoint_prepass(
            pipeline,
            matrix,
            shards,
            alphabet=indicators.alphabet,
            horizon=horizon,
            rng=clone_rng(shard_source),
        )
        tasks = [
            {
                "shard": shard,
                "rng": clone_rng(shard_source),
                "snapshot": snapshot,
                "decisions": decisions,
            }
            for shard, snapshot, decisions in zip(
                plan.shards, plan.snapshots, plan.decisions
            )
        ]
        result = self._run_fleet(
            pipeline, indicators, matrix, horizon, tasks, checkpointed=True
        )
        self._publish_trace(runtime, plan)
        return result

    @staticmethod
    def _publish_trace(runtime, plan) -> None:
        # As in ShardedExecutor: the prepass trace is the authoritative
        # accounting record, published once after every shard finished.
        if plan.trace is not None and hasattr(
            runtime.mechanism, "last_trace"
        ):
            runtime.mechanism.last_trace = plan.trace

    # -- fleet orchestration -------------------------------------------

    def _run_fleet(
        self,
        pipeline,
        indicators: IndicatorStream,
        matrix: np.ndarray,
        horizon: int,
        tasks: List[dict],
        *,
        checkpointed: bool,
    ) -> PipelineResult:
        from repro.runtime.sharding import build_shard_planes, merge_receipts
        from repro.runtime.shm import SegmentPlane

        plane = SegmentPlane()
        try:
            planes = build_shard_planes(
                plane,
                matrix,
                pipeline.matcher.query_names,
                materialize=self.materialize,
            )
            url = (
                f"shm://{planes.matrix.segment}"
                if self.transport == "shm"
                else "framed://pipe"
            )
            job = {
                "transport": self.transport,
                "url": url,
                "pipeline": pipeline,
                "alphabet": indicators.alphabet,
                "horizon": horizon,
                "checkpointed": checkpointed,
                "materialize": self.materialize,
                # Remote-style workers never see the descriptors.
                "planes": planes if self.transport == "shm" else None,
            }
            messages = []
            for index, task in enumerate(tasks):
                message = {
                    "task": index,
                    "shard": task["shard"],
                    "rng": task["rng"],
                }
                if checkpointed:
                    message["snapshot"] = task["snapshot"]
                    message["decisions"] = task["decisions"]
                if self.transport == "framed":
                    shard = task["shard"]
                    message["matrix"] = np.ascontiguousarray(
                        matrix[shard.start : shard.stop]
                    )
                messages.append(message)
            receipts = self._dispatch(job, messages, plane, planes)
            return merge_receipts(
                receipts,
                plane,
                planes,
                indicators=indicators,
                alpha=pipeline.alpha,
                materialize=self.materialize,
            )
        finally:
            plane.close()

    def _deposit_part(self, plane, planes, part):
        """Write a framed worker's outputs into the plane; receipt back.

        The framed transport's counterpart of the shm workers' direct
        deposit — idempotent by absolute window slice, so a requeued
        shard rerun deposits the same bytes.
        """
        from repro.runtime.sharding import ShardReceipt

        start, stop = part.shard.start, part.shard.stop
        if planes.released is not None:
            plane.view(planes.released)[start:stop] = part.released
        if planes.answers is not None:
            answers = plane.view(planes.answers)
            for row, name in enumerate(planes.query_names):
                answers[row, start:stop] = part.answers[name]
        if planes.truth is not None:
            truth = plane.view(planes.truth)
            for row, name in enumerate(planes.query_names):
                truth[row, start:stop] = part.true_answers[name]
        return ShardReceipt(shard=part.shard, counts=part.counts)

    def _spawn(self, context, job: dict) -> _Worker:
        parent_connection, child_connection = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main,
            args=(child_connection, self.heartbeat_interval),
            daemon=True,
        )
        process.start()
        child_connection.close()
        worker = _Worker(
            process=process,
            connection=parent_connection,
            last_seen=time.monotonic(),
        )
        worker.send(_JOB, job)
        return worker

    @staticmethod
    def _reap(worker: _Worker) -> None:
        """Force one worker down (it may be frozen: SIGKILL, not TERM)."""
        try:
            worker.connection.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)

    def _shutdown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            try:
                worker.send(_SHUTDOWN)
            except OSError:
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            self._reap(worker)

    def _dispatch(
        self, job: dict, messages: List[dict], plane, planes
    ) -> List:
        """Feed the fleet until every task has a receipt.

        The requeue invariant: a task leaves ``pending`` only while
        exactly one live worker carries it, and returns to the front of
        ``pending`` the moment that worker is declared dead (pipe
        EOF/error, process exit, or stale heartbeat) — so a killed
        worker never loses a shard, and a late duplicate result is
        ignored by task id.
        """
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        fleet_size = max(1, min(self.n_workers, len(messages)))
        completed: Dict[int, object] = {}
        pending = deque(messages)
        restarts = 0
        self._restarts_counter = Counter("cluster_restarts")
        self._merged_metrics = set()
        registry = default_registry()
        obs_requeues = registry.counter(
            "repro_cluster_requeues_total",
            "Shards requeued after their worker was declared dead.",
        )
        obs_restarts = registry.counter(
            "repro_cluster_worker_restarts_total",
            "Cluster workers reaped and respawned.",
        )
        obs_misses = registry.counter(
            "repro_cluster_heartbeat_misses_total",
            "Workers declared dead on heartbeat staleness alone.",
        )
        workers = [self._spawn(context, job) for _ in range(fleet_size)]
        try:
            while len(completed) < len(messages):
                ready = _wait_connections(
                    [worker.connection for worker in workers],
                    timeout=self.heartbeat_interval,
                )
                now = time.monotonic()
                for worker in workers:
                    if worker.connection not in ready:
                        continue
                    try:
                        while worker.connection.poll():
                            kind, payload = _recv_frame(worker.connection)
                            self._handle_frame(
                                worker, kind, payload, completed, plane,
                                planes,
                            )
                        worker.last_seen = now
                    except (EOFError, OSError, ProtocolError):
                        worker.dead = True
                # Liveness sweep: drop dead/stale workers, requeue
                # their in-flight shard, spawn replacements.
                for worker in list(workers):
                    stale = (
                        now - worker.last_seen > self.worker_timeout
                    )
                    if not (
                        worker.dead
                        or stale
                        or not worker.process.is_alive()
                    ):
                        continue
                    workers.remove(worker)
                    self._reap(worker)
                    if stale:
                        obs_misses.inc()
                    if (
                        worker.task is not None
                        and worker.task["task"] not in completed
                    ):
                        pending.appendleft(worker.task)
                        obs_requeues.inc()
                    restarts += 1
                    self._restarts_counter.inc()
                    obs_restarts.inc()
                    if restarts > self.max_restarts:
                        raise RuntimeError(
                            f"cluster fleet lost {restarts} workers "
                            f"(max_restarts={self.max_restarts}); "
                            "giving up"
                        )
                    if len(completed) < len(messages):
                        workers.append(self._spawn(context, job))
                # Dispatch: one in-flight task per ready worker.
                for worker in workers:
                    if not pending:
                        break
                    if worker.ready and worker.task is None:
                        message = pending.popleft()
                        try:
                            worker.send(_TASK, message)
                            worker.task = message
                            worker.task_sent = time.perf_counter()
                        except OSError:
                            pending.appendleft(message)
                            worker.dead = True
            return [
                completed[index] for index in sorted(completed)
            ]
        finally:
            self._shutdown(workers)

    def _handle_frame(
        self, worker: _Worker, kind: int, payload, completed, plane, planes
    ) -> None:
        if kind == _HELLO:
            worker.ready = True
            return
        if kind == _HEARTBEAT:
            return
        if kind == _RESULT:
            task_id = payload["task"]
            had_task = worker.task is not None
            worker.task = None
            if task_id in completed:
                return  # late duplicate after a requeue race
            recorder = current_recorder()
            if recorder is not None and had_task:
                recorder.record_span(
                    "cluster.shard",
                    worker.task_sent,
                    time.perf_counter(),
                    task=task_id,
                )
            default_registry().counter(
                "repro_cluster_tasks_total",
                "Shard tasks completed by cluster worker fleets.",
            ).inc()
            result = payload["result"]
            if self.transport == "framed":
                result = self._deposit_part(plane, planes, result)
            completed[task_id] = result
            return
        if kind == _METRICS:
            task_id = payload["task"]
            if task_id not in self._merged_metrics:
                self._merged_metrics.add(task_id)
                registry = default_registry()
                registry.merge_snapshot(payload["metrics"])
                registry.histogram(
                    "repro_cluster_task_seconds",
                    "Per-task worker wall time (worker-side clock).",
                ).observe(payload["seconds"])
            return
        if kind == _ERROR:
            raise RuntimeError(
                f"cluster worker failed on shard {payload['shard']}:\n"
                f"{payload['traceback']}"
            )
        raise ProtocolError(f"unexpected frame kind {kind} from worker")
