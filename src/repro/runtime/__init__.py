"""The unified streaming runtime.

One vectorized pipeline — ``Source → Windower → IndicatorExtractor →
Mechanism → Matcher → MetricsSink`` — shared by the CEP engine facade,
the baseline mechanisms and the experiment harness, with two
interchangeable execution strategies:

- :class:`~repro.runtime.executors.BatchExecutor` materializes the
  whole indicator matrix and runs every stage vectorized (no per-event
  Python loops in windowing, extraction or perturbation);
- :class:`~repro.runtime.executors.ChunkedExecutor` processes windows
  in bounded chunks for the infinite-stream scenario, producing
  bit-identical results for every streamable mechanism;
- :class:`~repro.runtime.executors.ShardedExecutor` fans contiguous
  window shards out over a thread or process pool, seeking each
  shard's stepper to its absolute start window — bit-identical to the
  batch executor for every seekable mechanism;
- :class:`~repro.runtime.cluster.ClusterExecutor` ships the same
  shards to a spawned worker fleet over a framed message protocol
  (shared-memory descriptors locally, framed bytes otherwise) with
  heartbeats, timeouts and requeue-on-worker-death — still
  bit-identical to the batch executor.

See ARCHITECTURE.md for how the layers map onto the runtime.
"""

from repro.runtime.adapters import (
    FlipStepper,
    RuntimeMechanism,
    runtime_mechanism,
)
from repro.runtime.cluster import ClusterExecutor
from repro.runtime.decisions import (
    DecisionRule,
    LandmarkKernel,
    ScanConfig,
    ScanMarginError,
    WEventKernel,
    classify_decisions,
    decision_thresholds,
    laplace_noise_from_uniforms,
)
from repro.runtime.executors import (
    BatchExecutor,
    ChunkedExecutor,
    PipelineResult,
    ShardedExecutor,
)
from repro.runtime.pipeline import StreamPipeline
from repro.runtime.rng_pool import IndexedRngPool
from repro.runtime.sharding import (
    Shard,
    TransportStats,
    merge_results,
    plan_shards,
)
from repro.runtime.shm import ArrayDescriptor, SegmentPlane
from repro.runtime.stages import (
    IndicatorExtractor,
    MetricsSink,
    QueryMatcher,
    WindowStage,
)

__all__ = [
    "ArrayDescriptor",
    "BatchExecutor",
    "ChunkedExecutor",
    "ClusterExecutor",
    "DecisionRule",
    "FlipStepper",
    "IndexedRngPool",
    "IndicatorExtractor",
    "LandmarkKernel",
    "MetricsSink",
    "PipelineResult",
    "QueryMatcher",
    "RuntimeMechanism",
    "ScanConfig",
    "ScanMarginError",
    "SegmentPlane",
    "Shard",
    "ShardedExecutor",
    "StreamPipeline",
    "TransportStats",
    "WEventKernel",
    "WindowStage",
    "classify_decisions",
    "decision_thresholds",
    "laplace_noise_from_uniforms",
    "merge_results",
    "plan_shards",
    "runtime_mechanism",
]
