"""Pipeline composition: build once, run over any source.

:class:`StreamPipeline` wires the stages together for one service
configuration (alphabet, windowing, mechanism, queries) and runs them
under either executor.  The CEP engine, the online session and the
experiment harness all build their pipelines here, so windowing,
extraction and matching logic exists exactly once.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.obs.tracing import trace_span
from repro.runtime.adapters import runtime_mechanism
from repro.runtime.executors import BatchExecutor, PipelineResult
from repro.runtime.stages import (
    IndicatorExtractor,
    QueryMatcher,
    WindowStage,
)
from repro.streams.indicator import EventAlphabet, IndicatorStream
from repro.streams.stream import EventStream
from repro.utils.rng import RngLike


class StreamPipeline:
    """One service-phase pipeline, reusable across runs and mechanisms.

    Parameters
    ----------
    alphabet:
        The indicator alphabet (fixes matrix columns).
    queries:
        Continuous queries answered per window; each must expose a
        sequential pattern (element list).
    mechanism:
        Anything with ``perturb(IndicatorStream, rng=...)``, or ``None``
        for no protection.
    windower:
        Optional window assigner; required to run from raw events.
    strict:
        Whether extraction rejects event types outside the alphabet.
    alpha:
        Precision weight of the quality metric the sink reports.
    """

    def __init__(
        self,
        alphabet: EventAlphabet,
        *,
        queries: Sequence = (),
        mechanism=None,
        windower=None,
        strict: bool = False,
        alpha: float = 0.5,
    ):
        self.alphabet = alphabet
        self.alpha = alpha
        self.extractor = IndicatorExtractor(alphabet, strict=strict)
        self.matcher = QueryMatcher(alphabet, queries)
        self.window_stage = (
            WindowStage(windower) if windower is not None else None
        )
        self.runtime_mechanism = runtime_mechanism(mechanism)

    @property
    def mechanism(self):
        return self.runtime_mechanism.mechanism

    def with_mechanism(self, mechanism) -> "StreamPipeline":
        """A pipeline sharing every stage but the mechanism.

        Windowing, extraction and matcher state are reused — this is how
        the experiment harness evaluates many mechanism configurations
        without recomputing shared work.
        """
        clone = object.__new__(StreamPipeline)
        clone.alphabet = self.alphabet
        clone.alpha = self.alpha
        clone.extractor = self.extractor
        clone.matcher = self.matcher
        clone.window_stage = self.window_stage
        clone.runtime_mechanism = runtime_mechanism(mechanism)
        return clone

    # -- sources -------------------------------------------------------

    def indicators_from(self, source) -> IndicatorStream:
        """Normalize any supported source into an indicator stream."""
        if isinstance(source, IndicatorStream):
            return source
        if isinstance(source, EventStream):
            if self.window_stage is None:
                raise ValueError(
                    "this pipeline has no windower; pass windowed input or "
                    "construct with windower="
                )
            return self.extractor.extract(
                self.window_stage.type_sets(source)
            )
        # A sequence of windows or per-window type collections.
        source = list(source)
        if source and hasattr(source[0], "event_types"):
            source = [window.event_types() for window in source]
        return self.extractor.extract(source)

    # -- execution -----------------------------------------------------

    def run(
        self,
        source,
        *,
        rng: RngLike = None,
        executor=None,
    ) -> PipelineResult:
        """Execute the pipeline over ``source``.

        ``source`` may be an :class:`IndicatorStream`, an
        :class:`EventStream` (with a windower configured), a sequence of
        :class:`~repro.streams.windows.Window` objects, or per-window
        type collections.  ``executor`` defaults to the vectorized
        batch strategy.
        """
        executor = executor or BatchExecutor()
        if isinstance(source, IndicatorStream) or not hasattr(
            executor, "run_type_sets"
        ):
            with trace_span(
                "pipeline.run", executor=type(executor).__name__
            ):
                return executor.run(
                    self, self.indicators_from(source), rng=rng
                )
        # Chunked executor over a non-materialized source: feed the
        # type-sets through chunked extraction.
        type_sets: Iterable
        horizon: Optional[int]
        if isinstance(source, EventStream):
            if self.window_stage is None:
                raise ValueError(
                    "this pipeline has no windower; pass windowed input or "
                    "construct with windower="
                )
            type_sets = self.window_stage.type_sets(source)
            horizon = len(type_sets)
        else:
            source = list(source)
            if source and hasattr(source[0], "event_types"):
                source = [window.event_types() for window in source]
            type_sets = source
            horizon = len(source)
        with trace_span("pipeline.run", executor=type(executor).__name__):
            return executor.run_type_sets(
                self, type_sets, rng=rng, horizon=horizon
            )
