"""Vectorized derivation of per-index child generators.

The sequential mechanisms (BD/BA, landmark) and the chunked executor
derive one child generator per window:
``derive_rng(rng, *tokens, index)`` for ``index = 0, 1, 2, ...``.  Done
naively that derivation dominates their runtime — every call pays for a
``numpy.random.SeedSequence`` construction and a fresh ``Generator``
(~25 µs each, across 10⁵ windows per Fig. 4 sweep).

:class:`IndexedRngPool` produces *bit-identical* child streams at a
fraction of the cost by

1. drawing the per-index parent entropy words in one vectorized
   ``integers`` call (PCG64 produces the same stream whether bounded
   integers are drawn one at a time or as a block);
2. re-implementing ``SeedSequence``'s entropy-mixing hash over uint32
   *arrays*, computing the PCG64 seed material for every index at once;
3. replaying PCG64's seeding arithmetic (128-bit LCG initialisation)
   and installing the resulting state on a single reused bit generator
   instead of constructing a new ``Generator`` per index.

Equality with ``derive_rng`` is pinned by tests
(``tests/test_runtime_rng_pool.py``) across token shapes and index
ranges; any numpy change to ``SeedSequence`` hashing would surface
there.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import RngLike, ensure_rng, fold_token

# SeedSequence hashing constants (numpy/random/bit_generator.pyx).
_POOL_SIZE = 4
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_XSHIFT = np.uint32(16)
_MASK32 = 0xFFFFFFFF

# PCG64 seeding constants (pcg_setseq_128_srandom_r).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1
_PCG_MULT_HI = np.uint64(_PCG_MULT >> 64)
_PCG_MULT_LO = np.uint64(_PCG_MULT & 0xFFFFFFFFFFFFFFFF)

#: next_double's mantissa scaling (53-bit uniform in [0, 1)).
_DOUBLE_SCALE = 1.0 / 9007199254740992.0

_WORD_BOUND = 2**63 - 1  # derive_rng's parent-entropy draw bound


def _int_words32(value: int) -> List[int]:
    """An integer's uint32 words, as SeedSequence coerces entropy."""
    if value < 0:
        raise ValueError(f"entropy words must be non-negative, got {value}")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _MASK32)
        value >>= 32
    return words


def _hashmix(values: np.ndarray, const: int) -> Tuple[np.ndarray, int]:
    """One SeedSequence ``hashmix`` round over a column of values."""
    values = values ^ np.uint32(const)
    const = (const * _MULT_A) & _MASK32
    values = values * np.uint32(const)
    values = values ^ (values >> _XSHIFT)
    return values, const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """SeedSequence's ``mix`` of a pool word with a hashed word.

    Note the *subtraction* — numpy's variant of the seed_seq_fe mixer
    combines the multiplied halves with ``-``, not xor.
    """
    result = x * np.uint32(_MIX_MULT_L) - y * np.uint32(_MIX_MULT_R)
    result = result ^ (result >> _XSHIFT)
    return result


def seed_material_from_entropy(entropy: np.ndarray) -> np.ndarray:
    """``SeedSequence(row).generate_state(4, uint64)`` for every row.

    ``entropy`` is an ``(n, length)`` uint32 array whose rows are the
    coerced entropy words of each child.  Returns an ``(n, 4)`` uint64
    array of PCG64 seed words.  All rows must share one entropy length —
    the hash-constant schedule depends on it.
    """
    entropy = np.ascontiguousarray(entropy, dtype=np.uint32)
    n_rows, length = entropy.shape
    const = _INIT_A
    pool: List[np.ndarray] = []
    for position in range(_POOL_SIZE):
        if position < length:
            column = entropy[:, position]
        else:
            column = np.zeros(n_rows, dtype=np.uint32)
        hashed, const = _hashmix(column, const)
        pool.append(hashed)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                hashed, const = _hashmix(pool[i_src], const)
                pool[i_dst] = _mix(pool[i_dst], hashed)
    for i_src in range(_POOL_SIZE, length):
        for i_dst in range(_POOL_SIZE):
            hashed, const = _hashmix(entropy[:, i_src], const)
            pool[i_dst] = _mix(pool[i_dst], hashed)

    const = _INIT_B
    state32: List[np.ndarray] = []
    for position in range(2 * _POOL_SIZE):
        data = pool[position % _POOL_SIZE] ^ np.uint32(const)
        const = (const * _MULT_B) & _MASK32
        data = data * np.uint32(const)
        data = data ^ (data >> _XSHIFT)
        state32.append(data)
    words64 = np.empty((n_rows, _POOL_SIZE), dtype=np.uint64)
    for pair in range(_POOL_SIZE):
        low = state32[2 * pair].astype(np.uint64)
        high = state32[2 * pair + 1].astype(np.uint64)
        words64[:, pair] = low | (high << np.uint64(32))
    return words64


def _mul128(
    a_hi: np.ndarray, a_lo: np.ndarray, b_hi: np.uint64, b_lo: np.uint64
) -> Tuple[np.ndarray, np.ndarray]:
    """``(a * b) mod 2**128`` over (hi, lo) uint64 limb arrays.

    The 64×64→128 low product is assembled from 32-bit half-limbs;
    numpy's uint64 arithmetic wraps, which is exactly mod-2**64.
    """
    mask32 = np.uint64(0xFFFFFFFF)
    a0 = a_lo & mask32
    a1 = a_lo >> np.uint64(32)
    b0 = b_lo & mask32
    b1 = b_lo >> np.uint64(32)
    carry = a1 * b0 + ((a0 * b0) >> np.uint64(32))
    mid = (carry & mask32) + a0 * b1
    hi64 = a1 * b1 + (carry >> np.uint64(32)) + (mid >> np.uint64(32))
    lo = a_lo * b_lo
    hi = hi64 + a_lo * b_hi + a_hi * b_lo
    return hi, lo


def _add128(
    a_hi: np.ndarray, a_lo: np.ndarray, b_hi: np.ndarray, b_lo: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(a + b) mod 2**128`` over (hi, lo) uint64 limb arrays."""
    lo = a_lo + b_lo
    carry = (lo < a_lo).astype(np.uint64)
    return a_hi + b_hi + carry, lo


def pcg64_limbs_from_seed_material(
    words64: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized PCG64 seeding over ``(n, 4)`` uint64 seed words.

    Replays ``pcg_setseq_128_srandom`` — ``inc = (initseq << 1) | 1``,
    then one LCG step folding in ``initstate`` — over uint64 limb
    arrays, returning ``(state_hi, state_lo, inc_hi, inc_lo)``:
    the same (state, inc) pairs :func:`pcg64_state_from_words` computes
    one at a time (pinned by ``tests/test_runtime_rng_pool.py``).
    """
    words64 = np.ascontiguousarray(words64, dtype=np.uint64)
    initstate_hi = words64[:, 0]
    initstate_lo = words64[:, 1]
    initseq_hi = words64[:, 2]
    initseq_lo = words64[:, 3]
    one = np.uint64(1)
    s63 = np.uint64(63)
    inc_hi = (initseq_hi << one) | (initseq_lo >> s63)
    inc_lo = (initseq_lo << one) | one
    # state = (inc + initstate) * MULT + inc.
    hi, lo = _add128(inc_hi, inc_lo, initstate_hi, initstate_lo)
    hi, lo = _mul128(hi, lo, _PCG_MULT_HI, _PCG_MULT_LO)
    hi, lo = _add128(hi, lo, inc_hi, inc_lo)
    return hi, lo, inc_hi, inc_lo


def first_uniforms_from_limbs(
    state_hi: np.ndarray,
    state_lo: np.ndarray,
    inc_hi: np.ndarray,
    inc_lo: np.ndarray,
) -> np.ndarray:
    """Each child's first ``next_double`` draw, vectorized.

    Replays one PCG64 step (``state = state * MULT + inc``), the XSL-RR
    output function and numpy's ``next_double`` scaling over uint64
    limb arrays — bit-identical to installing each child and calling
    ``.random()`` once (pinned by ``tests/test_runtime_rng_pool.py``).
    The sequential schedulers use this to precompute their
    per-timestamp dissimilarity uniforms without paying a per-step
    generator install.
    """
    s63 = np.uint64(63)
    hi, lo = _mul128(state_hi, state_lo, _PCG_MULT_HI, _PCG_MULT_LO)
    hi, lo = _add128(hi, lo, inc_hi, inc_lo)
    # XSL-RR: rotr64(hi ^ lo, hi >> 58).
    value = hi ^ lo
    rot = hi >> np.uint64(58)
    out = (value >> rot) | (value << ((np.uint64(64) - rot) & s63))
    return (out >> np.uint64(11)) * _DOUBLE_SCALE


def pcg64_state_from_words(words: Sequence[int]) -> Tuple[int, int]:
    """PCG64's (state, inc) after seeding from 4 uint64 seed words.

    Replays ``pcg_setseq_128_srandom``: ``inc = (initseq << 1) | 1``,
    then two LCG steps folding in ``initstate``.
    """
    initstate = (int(words[0]) << 64) | int(words[1])
    initseq = (int(words[2]) << 64) | int(words[3])
    inc = ((initseq << 1) | 1) & _MASK128
    state = ((inc + initstate) * _PCG_MULT + inc) & _MASK128
    return state, inc


def first_uniform_scalar(state: int, inc: int) -> float:
    """``next_double`` of one (state, inc) pair, via Python ints.

    The readable scalar reference for
    :func:`first_uniforms_from_limbs` — one PCG64 step, the XSL-RR
    output, ``next_double`` scaling — against which the vectorized
    limb arithmetic is pinned in ``tests/test_runtime_rng_pool.py``.
    """
    state = (state * _PCG_MULT + inc) & _MASK128
    value = ((state >> 64) ^ state) & 0xFFFFFFFFFFFFFFFF
    rot = state >> 122
    out = ((value >> rot) | (value << ((64 - rot) & 63))) & (
        0xFFFFFFFFFFFFFFFF
    )
    return (out >> 11) * _DOUBLE_SCALE


class IndexedRngPool:
    """Children of ``derive_rng(rng, *tokens, index)`` for ``index = 0..``.

    Parameters
    ----------
    rng:
        The parent seed/generator, exactly as ``derive_rng`` takes it.
    tokens:
        The fixed token prefix; the running index is appended as the
        final token.
    count:
        When the number of children is known up front, pass it: the
        parent entropy is drawn in one block of exactly ``count`` words,
        leaving the parent generator in the same state as ``count``
        sequential ``derive_rng`` calls would.  Without it, entropy is
        prefetched in blocks of ``block`` (the children are still
        bit-identical, but the parent runs ahead of the index actually
        consumed — callers that hand the pool a *shared* generator and
        keep drawing from it should pass ``count``).
    block:
        Prefetch block size for the unknown-length mode.

    ``generator(index)`` returns a shared :class:`numpy.random.Generator`
    whose state is the derived child's initial state.  The object is
    reused: draw from it before requesting the next index, and do not
    hold references across calls.
    """

    def __init__(
        self,
        rng: RngLike,
        *tokens: Union[int, str],
        count: int = None,
        block: int = 512,
    ):
        if count is not None and count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        if isinstance(rng, np.random.Generator):
            # A shared generator advances one word per derivation.  The
            # parent's pre-draw state is stashed so a snapshot can later
            # rebuild the identical pool (see :meth:`snapshot`), and the
            # post-extend state is tracked so interleaved foreign draws
            # from a *shared* parent are detected rather than silently
            # breaking replay-from-initial-state.
            self._parent = rng
            self._parent_initial_state = rng.bit_generator.state
            self._parent_resume_state = self._parent_initial_state
            self._parent_interleaved = False
            self._fixed_word: Optional[int] = None
        else:
            # derive_rng re-seeds a fresh parent from an int/None seed on
            # every call, so each index sees the same first entropy word.
            self._parent = None
            self._parent_initial_state = None
            self._parent_resume_state = None
            self._parent_interleaved = False
            self._fixed_word = int(
                ensure_rng(rng).integers(0, _WORD_BOUND)
            )
        self._token_ints = [fold_token(token) for token in tokens]
        self._token_words = [
            word for value in self._token_ints for word in _int_words32(value)
        ]
        self._block = block
        #: Derived child states as four uint64 limb arrays — (state,
        #: inc) split into (hi, lo) halves.  Vectorized storage keeps
        #: derivation free of per-index Python work and lets
        #: :meth:`first_uniforms` replay outputs in one pass; capacity
        #: doubles on growth, ``_n`` children are valid.
        self._n = 0
        self._limbs = [np.zeros(0, dtype=np.uint64) for _ in range(4)]
        self._bit_generator = np.random.PCG64()
        self._generator = np.random.Generator(self._bit_generator)
        if count:
            self._extend(count)

    def __len__(self) -> int:
        return self._n

    def generator(self, index: int) -> np.random.Generator:
        """The child generator for ``index`` (a reused, re-seeded object)."""
        if index < 0:
            raise IndexError(f"index must be non-negative, got {index}")
        while index >= self._n:
            self._extend(self._block)
        state_hi, state_lo, inc_hi, inc_lo = self._limbs
        self._bit_generator.state = {
            "bit_generator": "PCG64",
            "state": {
                "state": (int(state_hi[index]) << 64)
                | int(state_lo[index]),
                "inc": (int(inc_hi[index]) << 64) | int(inc_lo[index]),
            },
            "has_uint32": 0,
            "uinteger": 0,
        }
        return self._generator

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable description of this pool's derivations.

        The pool's children are normally fully determined by the
        derivation source — the fixed entropy word (seed parents) or
        the parent generator's pre-draw state (generator parents) —
        plus the token prefix, so the snapshot records only those and
        the number of children derived so far, and :meth:`restore`
        re-derives the identical child streams on any pool with the
        same tokens.  One exception: when a *shared* parent generator
        was drawn from by another consumer between the pool's lazy
        extends, replaying from the pre-draw state would weave those
        foreign draws into the entropy words.  The pool detects that
        (the parent no longer sits at its post-extend state when an
        extend begins) and the snapshot then carries the derived state
        limbs verbatim plus the parent's current state, staying exact
        at the price of compactness.
        """
        state = {
            "tokens": list(self._token_ints),
            "n_derived": self._n,
        }
        if self._parent is None:
            state["fixed_word"] = self._fixed_word
        elif not self._parent_interleaved:
            state["parent_initial_state"] = dict(self._parent_initial_state)
        else:
            state["limbs"] = [
                np.array(limb[: self._n], copy=True)
                for limb in self._limbs
            ]
            state["parent_resume_state"] = self._parent.bit_generator.state
        return state

    def restore(self, snapshot: dict) -> None:
        """Re-derive the snapshotted pool's children on this pool.

        After restoring, ``generator(index)`` returns exactly the child
        the snapshotted pool would return for every index — already
        derived or not — and future extends draw the same parent words
        an uninterrupted pool would have drawn.
        """
        tokens = list(snapshot["tokens"])
        if tokens != self._token_ints:
            raise ValueError(
                f"snapshot was taken under rng tokens {tokens}, this pool "
                f"derives under {self._token_ints}"
            )
        n_derived = int(snapshot["n_derived"])
        if "fixed_word" in snapshot:
            fixed_word = int(snapshot["fixed_word"])
            if self._parent is None and self._fixed_word == fixed_word:
                # Same derivation source: every index already coincides.
                return
            self._parent = None
            self._parent_initial_state = None
            self._parent_resume_state = None
            self._parent_interleaved = False
            self._fixed_word = fixed_word
            self._reset_storage()
            return
        if "limbs" in snapshot:
            # Interleaved shared-parent snapshot: adopt the derived
            # states verbatim and resume the parent where it stood.
            # The restored pool stays in limb-carrying snapshot mode —
            # its early indices are no longer derivable from any single
            # parent state.
            self._install_parent(dict(snapshot["parent_resume_state"]))
            self._parent_interleaved = True
            limbs = snapshot["limbs"]
            self._reset_storage()
            self._grow(n_derived)
            for position in range(4):
                self._limbs[position][:n_derived] = np.asarray(
                    limbs[position], dtype=np.uint64
                )
            self._n = n_derived
            return
        parent_state = dict(snapshot["parent_initial_state"])
        if (
            self._parent is not None
            and not self._parent_interleaved
            and self._parent_initial_state == parent_state
        ):
            return
        self._install_parent(parent_state)
        self._parent_initial_state = parent_state
        self._reset_storage()
        if n_derived:
            self._extend(n_derived)

    def _install_parent(self, parent_state: dict) -> None:
        bit_generator = np.random.PCG64()
        bit_generator.state = parent_state
        self._parent = np.random.Generator(bit_generator)
        self._parent_initial_state = parent_state
        self._parent_resume_state = parent_state
        self._parent_interleaved = False
        self._fixed_word = None

    def _reset_storage(self) -> None:
        self._n = 0
        self._limbs = [np.zeros(0, dtype=np.uint64) for _ in range(4)]

    # -- derivation ----------------------------------------------------

    def _split_rows(self, words: np.ndarray, indices: np.ndarray):
        """Wide/narrow row split plus the wide rows' entropy array.

        The vectorized hash needs one shared entropy length.  Parent
        words below 2**32 coerce to a single uint32 word (probability
        ~2**-31 per child) and indices can in principle exceed 2**32;
        those rare rows take the scalar SeedSequence path instead.
        """
        narrow = (words < 2**32) | (indices >= 2**32)
        wide = ~narrow
        length = 2 + len(self._token_words) + 1
        entropy = np.empty((int(wide.sum()), length), dtype=np.uint32)
        wide_words = words[wide].astype(np.uint64)
        entropy[:, 0] = (wide_words & _MASK32).astype(np.uint32)
        entropy[:, 1] = (wide_words >> np.uint64(32)).astype(np.uint32)
        for position, token_word in enumerate(self._token_words):
            entropy[:, 2 + position] = np.uint32(token_word)
        entropy[:, -1] = indices[wide].astype(np.uint32)
        return wide, narrow, entropy

    def _grow(self, n_total: int) -> None:
        """Ensure limb-array capacity for ``n_total`` children."""
        capacity = self._limbs[0].shape[0]
        if n_total <= capacity:
            return
        new_capacity = max(2 * capacity, n_total)
        for position in range(4):
            grown = np.zeros(new_capacity, dtype=np.uint64)
            grown[: self._n] = self._limbs[position][: self._n]
            self._limbs[position] = grown

    def _extend(self, n_new: int) -> None:
        start = self._n
        if self._parent is not None:
            if (
                not self._parent_interleaved
                and self._parent.bit_generator.state
                != self._parent_resume_state
            ):
                # Another consumer drew from the shared parent between
                # extends; replay-from-initial-state can no longer
                # reproduce the entropy words, so snapshots must carry
                # the derived limbs from here on.
                self._parent_interleaved = True
            words = self._parent.integers(0, _WORD_BOUND, size=n_new)
            self._parent_resume_state = self._parent.bit_generator.state
        else:
            words = np.full(n_new, self._fixed_word, dtype=np.int64)
        indices = np.arange(start, start + n_new, dtype=np.int64)
        wide, narrow, entropy = self._split_rows(words, indices)
        self._grow(start + n_new)
        window = slice(start, start + n_new)
        if entropy.shape[0]:
            material = seed_material_from_entropy(entropy)
            limbs = pcg64_limbs_from_seed_material(material)
            for position in range(4):
                self._limbs[position][window][wide] = limbs[position]
        mask64 = 0xFFFFFFFFFFFFFFFF
        for offset in np.nonzero(narrow)[0]:
            sequence = np.random.SeedSequence(
                [int(words[offset]), *self._token_ints, int(indices[offset])]
            )
            state, inc = pcg64_state_from_words(
                sequence.generate_state(4, np.uint64)
            )
            row = start + int(offset)
            self._limbs[0][row] = state >> 64
            self._limbs[1][row] = state & mask64
            self._limbs[2][row] = inc >> 64
            self._limbs[3][row] = inc & mask64
        self._n = start + n_new

    def first_uniforms(self, start: int, stop: int) -> np.ndarray:
        """Each child's first ``next_double``, for indices [start, stop).

        Bit-identical to ``generator(index).random()`` per index, but
        computed in one vectorized pass over the stored state limbs —
        no per-index generator installs.  The sequential schedulers
        (BD/BA, landmark) precompute their per-timestamp dissimilarity
        uniforms through this, which is what makes their release loops
        cheap enough to be worth sharding.
        """
        if start < 0 or stop < start:
            raise ValueError(f"invalid uniform range [{start}, {stop})")
        while stop > self._n:
            self._extend(max(self._block, stop - self._n))
        if stop == start:
            return np.zeros(0)
        window = slice(start, stop)
        return first_uniforms_from_limbs(
            *(self._limbs[position][window] for position in range(4))
        )
