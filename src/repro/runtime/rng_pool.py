"""Vectorized derivation of per-index child generators.

The sequential mechanisms (BD/BA, landmark) and the chunked executor
derive one child generator per window:
``derive_rng(rng, *tokens, index)`` for ``index = 0, 1, 2, ...``.  Done
naively that derivation dominates their runtime — every call pays for a
``numpy.random.SeedSequence`` construction and a fresh ``Generator``
(~25 µs each, across 10⁵ windows per Fig. 4 sweep).

:class:`IndexedRngPool` produces *bit-identical* child streams at a
fraction of the cost by

1. drawing the per-index parent entropy words in one vectorized
   ``integers`` call (PCG64 produces the same stream whether bounded
   integers are drawn one at a time or as a block);
2. re-implementing ``SeedSequence``'s entropy-mixing hash over uint32
   *arrays*, computing the PCG64 seed material for every index at once;
3. replaying PCG64's seeding arithmetic (128-bit LCG initialisation)
   and installing the resulting state on a single reused bit generator
   instead of constructing a new ``Generator`` per index.

Equality with ``derive_rng`` is pinned by tests
(``tests/test_runtime_rng_pool.py``) across token shapes and index
ranges; any numpy change to ``SeedSequence`` hashing would surface
there.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import RngLike, ensure_rng, fold_token

# SeedSequence hashing constants (numpy/random/bit_generator.pyx).
_POOL_SIZE = 4
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_XSHIFT = np.uint32(16)
_MASK32 = 0xFFFFFFFF

# PCG64 seeding constants (pcg_setseq_128_srandom_r).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1

_WORD_BOUND = 2**63 - 1  # derive_rng's parent-entropy draw bound


def _int_words32(value: int) -> List[int]:
    """An integer's uint32 words, as SeedSequence coerces entropy."""
    if value < 0:
        raise ValueError(f"entropy words must be non-negative, got {value}")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _MASK32)
        value >>= 32
    return words


def _hashmix(values: np.ndarray, const: int) -> Tuple[np.ndarray, int]:
    """One SeedSequence ``hashmix`` round over a column of values."""
    values = values ^ np.uint32(const)
    const = (const * _MULT_A) & _MASK32
    values = values * np.uint32(const)
    values = values ^ (values >> _XSHIFT)
    return values, const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """SeedSequence's ``mix`` of a pool word with a hashed word.

    Note the *subtraction* — numpy's variant of the seed_seq_fe mixer
    combines the multiplied halves with ``-``, not xor.
    """
    result = x * np.uint32(_MIX_MULT_L) - y * np.uint32(_MIX_MULT_R)
    result = result ^ (result >> _XSHIFT)
    return result


def seed_material_from_entropy(entropy: np.ndarray) -> np.ndarray:
    """``SeedSequence(row).generate_state(4, uint64)`` for every row.

    ``entropy`` is an ``(n, length)`` uint32 array whose rows are the
    coerced entropy words of each child.  Returns an ``(n, 4)`` uint64
    array of PCG64 seed words.  All rows must share one entropy length —
    the hash-constant schedule depends on it.
    """
    entropy = np.ascontiguousarray(entropy, dtype=np.uint32)
    n_rows, length = entropy.shape
    const = _INIT_A
    pool: List[np.ndarray] = []
    for position in range(_POOL_SIZE):
        if position < length:
            column = entropy[:, position]
        else:
            column = np.zeros(n_rows, dtype=np.uint32)
        hashed, const = _hashmix(column, const)
        pool.append(hashed)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                hashed, const = _hashmix(pool[i_src], const)
                pool[i_dst] = _mix(pool[i_dst], hashed)
    for i_src in range(_POOL_SIZE, length):
        for i_dst in range(_POOL_SIZE):
            hashed, const = _hashmix(entropy[:, i_src], const)
            pool[i_dst] = _mix(pool[i_dst], hashed)

    const = _INIT_B
    state32: List[np.ndarray] = []
    for position in range(2 * _POOL_SIZE):
        data = pool[position % _POOL_SIZE] ^ np.uint32(const)
        const = (const * _MULT_B) & _MASK32
        data = data * np.uint32(const)
        data = data ^ (data >> _XSHIFT)
        state32.append(data)
    words64 = np.empty((n_rows, _POOL_SIZE), dtype=np.uint64)
    for pair in range(_POOL_SIZE):
        low = state32[2 * pair].astype(np.uint64)
        high = state32[2 * pair + 1].astype(np.uint64)
        words64[:, pair] = low | (high << np.uint64(32))
    return words64


def pcg64_state_from_words(words: Sequence[int]) -> Tuple[int, int]:
    """PCG64's (state, inc) after seeding from 4 uint64 seed words.

    Replays ``pcg_setseq_128_srandom``: ``inc = (initseq << 1) | 1``,
    then two LCG steps folding in ``initstate``.
    """
    initstate = (int(words[0]) << 64) | int(words[1])
    initseq = (int(words[2]) << 64) | int(words[3])
    inc = ((initseq << 1) | 1) & _MASK128
    state = ((inc + initstate) * _PCG_MULT + inc) & _MASK128
    return state, inc


class IndexedRngPool:
    """Children of ``derive_rng(rng, *tokens, index)`` for ``index = 0..``.

    Parameters
    ----------
    rng:
        The parent seed/generator, exactly as ``derive_rng`` takes it.
    tokens:
        The fixed token prefix; the running index is appended as the
        final token.
    count:
        When the number of children is known up front, pass it: the
        parent entropy is drawn in one block of exactly ``count`` words,
        leaving the parent generator in the same state as ``count``
        sequential ``derive_rng`` calls would.  Without it, entropy is
        prefetched in blocks of ``block`` (the children are still
        bit-identical, but the parent runs ahead of the index actually
        consumed — callers that hand the pool a *shared* generator and
        keep drawing from it should pass ``count``).
    block:
        Prefetch block size for the unknown-length mode.

    ``generator(index)`` returns a shared :class:`numpy.random.Generator`
    whose state is the derived child's initial state.  The object is
    reused: draw from it before requesting the next index, and do not
    hold references across calls.
    """

    def __init__(
        self,
        rng: RngLike,
        *tokens: Union[int, str],
        count: int = None,
        block: int = 512,
    ):
        if count is not None and count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        if isinstance(rng, np.random.Generator):
            # A shared generator advances one word per derivation.
            self._parent = rng
            self._fixed_word: Optional[int] = None
        else:
            # derive_rng re-seeds a fresh parent from an int/None seed on
            # every call, so each index sees the same first entropy word.
            self._parent = None
            self._fixed_word = int(
                ensure_rng(rng).integers(0, _WORD_BOUND)
            )
        self._token_ints = [fold_token(token) for token in tokens]
        self._token_words = [
            word for value in self._token_ints for word in _int_words32(value)
        ]
        self._block = block
        self._states: List[Tuple[int, int]] = []
        self._bit_generator = np.random.PCG64()
        self._generator = np.random.Generator(self._bit_generator)
        if count:
            self._extend(count)

    def __len__(self) -> int:
        return len(self._states)

    def generator(self, index: int) -> np.random.Generator:
        """The child generator for ``index`` (a reused, re-seeded object)."""
        if index < 0:
            raise IndexError(f"index must be non-negative, got {index}")
        while index >= len(self._states):
            self._extend(self._block)
        state, inc = self._states[index]
        self._bit_generator.state = {
            "bit_generator": "PCG64",
            "state": {"state": state, "inc": inc},
            "has_uint32": 0,
            "uinteger": 0,
        }
        return self._generator

    # -- derivation ----------------------------------------------------

    def _extend(self, n_new: int) -> None:
        start = len(self._states)
        if self._parent is not None:
            words = self._parent.integers(0, _WORD_BOUND, size=n_new)
        else:
            words = np.full(n_new, self._fixed_word, dtype=np.int64)
        indices = np.arange(start, start + n_new, dtype=np.int64)
        # The vectorized hash needs one shared entropy length.  Parent
        # words below 2**32 coerce to a single uint32 word (probability
        # ~2**-31 per child) and indices can in principle exceed 2**32;
        # those rare rows take the scalar SeedSequence path instead.
        narrow = (words < 2**32) | (indices >= 2**32)
        wide = ~narrow
        length = 2 + len(self._token_words) + 1
        entropy = np.empty((int(wide.sum()), length), dtype=np.uint32)
        wide_words = words[wide].astype(np.uint64)
        entropy[:, 0] = (wide_words & _MASK32).astype(np.uint32)
        entropy[:, 1] = (wide_words >> np.uint64(32)).astype(np.uint32)
        for position, token_word in enumerate(self._token_words):
            entropy[:, 2 + position] = np.uint32(token_word)
        entropy[:, -1] = indices[wide].astype(np.uint32)

        states: List[Tuple[int, int]] = [None] * n_new
        if entropy.shape[0]:
            material = seed_material_from_entropy(entropy)
            for row, offset in enumerate(np.nonzero(wide)[0]):
                states[int(offset)] = pcg64_state_from_words(material[row])
        for offset in np.nonzero(narrow)[0]:
            sequence = np.random.SeedSequence(
                [int(words[offset]), *self._token_ints, int(indices[offset])]
            )
            states[int(offset)] = pcg64_state_from_words(
                sequence.generate_state(4, np.uint64)
            )
        self._states.extend(states)
