"""Shared-memory segments for zero-copy shard transport.

Process-backend sharding used to pickle every shard's slice of the
indicator matrix into the pool and pickle the released rows back out —
for service-scale streams that transport dominated the parallel wall
time (``BENCH_sharding.json`` recorded ``sharded/process`` *slower*
than batch).  This module is the data plane that removes the copies:

- the parent places each large array in one named
  :mod:`multiprocessing.shared_memory` segment
  (:meth:`SegmentPlane.share` / :meth:`SegmentPlane.allocate`) and
  ships only an :class:`ArrayDescriptor` — ``(segment name, dtype,
  shape)`` — through the pool;
- workers :func:`attach` to the named segment and rebuild the array as
  ``np.ndarray(shape, dtype, buffer=shm.buf)`` — a view of the same
  physical pages, no copy — then slice their contiguous window range
  out of it;
- results are written into preallocated *output* segments, so merging
  becomes view stitching in the parent instead of unpickling and
  concatenating per-shard arrays.

Lifecycle ownership is strictly parent-side: the :class:`SegmentPlane`
that created the segments closes **and unlinks** every one of them in a
``try/finally`` around the pool, whether the run succeeds, a worker
raises mid-shard, or the pool is torn down early.  Workers only attach
and detach; they never unlink and never touch the resource-tracker
bookkeeping (see the note in :class:`attach` for why that division is
load-bearing under the fork start method).

Every segment name carries :data:`SEGMENT_PREFIX`, so test suites and
CI can scan ``/dev/shm`` for leaks (:func:`leaked_segments`).
"""

from __future__ import annotations

import os
import secrets

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ArrayDescriptor",
    "SegmentPlane",
    "attach",
    "leaked_segments",
]

#: Prefix of every segment this module creates — the handle leak scans
#: (tests, CI) key on.
SEGMENT_PREFIX = "repro_shm_"

#: Default directory POSIX shared memory appears under (Linux).
SHM_DIR = "/dev/shm"


def _segment_name() -> str:
    """A collision-resistant segment name carrying the scan prefix."""
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(6)}"


@dataclass(frozen=True)
class ArrayDescriptor:
    """A picklable handle to one ndarray in a shared-memory segment.

    This — not the array — is what crosses the process boundary:
    ``(segment name, dtype string, shape)`` pickles to tens of bytes
    regardless of how many windows the array holds.  Shard workers pair
    it with their :class:`~repro.runtime.sharding.Shard`'s
    ``[start, stop)`` bounds to view exactly their contiguous slice.
    A distributed backend would ship the same triple plus a transport
    URL, which is why the cluster executor sketched in ROADMAP.md can
    reuse this type as its wire format.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Payload size of the described array in bytes."""
        count = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        return count * np.dtype(self.dtype).itemsize


class SegmentPlane:
    """Parent-side owner of a run's shared-memory segments.

    Creates segments, hands out descriptors and parent views, and —
    crucially — guarantees cleanup: :meth:`close` closes and unlinks
    every segment it created and is safe to call from a ``finally``
    on any path (idempotent, tolerant of already-unlinked segments and
    of stray views kept alive by an in-flight exception traceback).
    """

    def __init__(self):
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def __enter__(self) -> "SegmentPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Names of the segments currently owned (open) by this plane."""
        return tuple(self._segments)

    def allocate(self, shape, dtype) -> ArrayDescriptor:
        """Create an uninitialized shared array; return its descriptor."""
        descriptor = ArrayDescriptor(
            _segment_name(),
            np.dtype(dtype).str,
            tuple(int(extent) for extent in shape),
        )
        segment = shared_memory.SharedMemory(
            name=descriptor.segment,
            create=True,
            # Zero-byte segments are invalid; keep degenerate shapes
            # (no queries, zero-width alphabets) mappable anyway.
            size=max(1, descriptor.nbytes),
        )
        self._segments[descriptor.segment] = segment
        return descriptor

    def share(self, array: np.ndarray) -> ArrayDescriptor:
        """Copy ``array`` into a fresh segment; return its descriptor.

        The one deliberate copy of the zero-copy design: the indicator
        matrix is written into shared pages once, instead of being
        pickled once *per shard* into the pool.
        """
        array = np.ascontiguousarray(array)
        descriptor = self.allocate(array.shape, array.dtype)
        self.view(descriptor)[...] = array
        return descriptor

    def view(self, descriptor: ArrayDescriptor) -> np.ndarray:
        """A parent-side ndarray view of one of this plane's segments.

        Valid only until :meth:`close`; callers must copy anything that
        outlives the plane (``IndicatorStream`` construction copies).
        """
        segment = self._segments[descriptor.segment]
        return np.ndarray(
            descriptor.shape,
            dtype=np.dtype(descriptor.dtype),
            buffer=segment.buf,
        )

    def close(self) -> None:
        """Close and unlink every segment this plane created.

        Unlinking removes the name from ``/dev/shm`` immediately — the
        no-leak guarantee — even when a view pinned by an exception
        traceback keeps the local mapping alive a little longer (the
        kernel frees the pages once the last mapping drops).
        """
        for name, segment in list(self._segments.items()):
            try:
                segment.close()
            except BufferError:
                # A live view (typically an exception frame's local)
                # still exports the buffer; the mapping is reclaimed
                # with the process, and unlink below removes the name.
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            del self._segments[name]


class attach:
    """Worker-side context manager attaching one descriptor's array.

    >>> with attach(descriptor) as matrix:
    ...     rows = matrix[shard.start : shard.stop]   # no copy

    The attachment only maps and unmaps: the *creating* process owns
    the segment's lifetime (it unlinks), and the worker closes its
    mapping on exit, so a worker holds no shared-memory handles between
    tasks.
    """

    def __init__(self, descriptor: ArrayDescriptor):
        self._descriptor = descriptor
        self._segment: Optional[shared_memory.SharedMemory] = None
        self.array: Optional[np.ndarray] = None

    def __enter__(self) -> np.ndarray:
        descriptor = self._descriptor
        self._segment = shared_memory.SharedMemory(name=descriptor.segment)
        # NOTE on the resource_tracker: attaching registers the segment
        # a second time.  With the fork start method (Linux, and what
        # make_pool's ProcessPoolExecutor uses here) the tracker
        # process is *shared* with the parent, its cache is a set, and
        # the duplicate registration is a no-op the parent's unlink
        # balances exactly once — so workers must NOT unregister, or
        # they would strip the parent's own registration and the
        # tracker would log KeyErrors at cleanup.  Spawn-based
        # platforms get at worst a stale-name warning from the worker's
        # private tracker after the parent has already unlinked.
        self.array = np.ndarray(
            descriptor.shape,
            dtype=np.dtype(descriptor.dtype),
            buffer=self._segment.buf,
        )
        return self.array

    def __exit__(self, *exc_info) -> None:
        self.array = None
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:  # pragma: no cover - exception frames
                pass
            self._segment = None


def leaked_segments(directory: str = SHM_DIR) -> Tuple[str, ...]:
    """Shared-memory segments with our prefix still present on disk.

    An empty tuple is the invariant every executor run (and the whole
    test suite) must restore; CI fails the bench job otherwise via
    ``benchmarks/check_shm_leaks.py``.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return ()
    return tuple(
        sorted(name for name in names if name.startswith(SEGMENT_PREFIX))
    )
